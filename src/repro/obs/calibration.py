"""Cost-model calibration: does simulated cost still track wall time?

The benchmarks report the *simulated* clock (DESIGN.md), which only
reproduces the paper's shape as long as the cost model keeps charging
work in rough proportion to what the implementation actually does.  A
new code path that does real work the model never charges (or charges
work it no longer does) silently skews every simulated number while the
shape gate (:mod:`tools.bench_compare`) may still pass.

This module joins, per Table-5 cell (approach x phase), the simulated
seconds against the measured wall seconds and computes each cell's
wall/sim **ratio**.  Absolute ratios are meaningless (Python wall time
measures the interpreter, and CI machines vary wildly), so the check is
*internal consistency*: every cell's ratio against the run's own median
ratio.  A cell whose ratio is orders of magnitude off the median is
doing wall-clock work the model does not see, or vice versa.  The
default spread limit is deliberately generous (the committed baseline's
cells span a ~25x ratio range — sequential scans are model-cheap,
insert phases interpreter-heavy); the gate exists to catch the model
going *completely* out of whack, not to measure CI noise.

When phase rows carry profiles (``Table5Config(profile=True)``), the
report also joins per-component simulated cost vs. span wall time —
informational, not gated, since only span-covered components have wall
attribution.

Wired as the second gate of ``tools/bench_compare.py --calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ObservabilityError

PHASES = ("insert", "seq_scan", "random_reads")

#: Default allowed spread of a cell's wall/sim ratio against the run's
#: median ratio, in either direction.  The committed baseline's largest
#: observed deviation is ~10x; 50x still catches an uncharged code path
#: (typically 100x+) while riding out interpreter and CI variance.
DEFAULT_SPREAD_LIMIT = 50.0


@dataclass
class CalibrationCell:
    """One Table-5 cell's simulated-vs-wall join."""

    approach: str
    phase: str
    simulated_seconds: float
    wall_seconds: float
    #: wall / simulated (how many real seconds per simulated second)
    ratio: float
    #: ratio / the run's median ratio (filled by :func:`calibration_cells`)
    spread: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "approach": self.approach,
            "phase": self.phase,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "ratio": self.ratio,
            "spread": self.spread,
        }


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def calibration_cells(payload: List[Dict]) -> List[CalibrationCell]:
    """Extract the per-cell joins from a parsed BENCH_table5.json list
    and normalize each ratio against the run's median."""
    cells: List[CalibrationCell] = []
    for entry in payload:
        try:
            approach = entry["approach"]
            for phase in PHASES:
                row = entry[phase]
                simulated = float(row["simulated_seconds"])
                wall = float(row["wall_seconds"])
                if simulated <= 0.0 or wall <= 0.0:
                    raise ObservabilityError(
                        f"{approach}/{phase}: non-positive clock "
                        f"(simulated={simulated}, wall={wall}); every "
                        "Table-5 phase must advance both clocks"
                    )
                cells.append(
                    CalibrationCell(approach, phase, simulated, wall, wall / simulated)
                )
        except (KeyError, TypeError) as error:
            raise ObservabilityError(
                f"malformed Table-5 row ({error})"
            ) from error
    if not cells:
        raise ObservabilityError("no Table-5 cells to calibrate")
    median = _median([cell.ratio for cell in cells])
    for cell in cells:
        cell.spread = cell.ratio / median
    return cells


def check_calibration(
    cells: List[CalibrationCell], limit: float = DEFAULT_SPREAD_LIMIT
) -> List[str]:
    """Cells whose wall/sim ratio deviates from the median by more than
    ``limit`` in either direction (empty = calibrated)."""
    if limit <= 1.0:
        raise ObservabilityError(f"spread limit must exceed 1, got {limit}")
    out: List[str] = []
    for cell in cells:
        if cell.spread > limit or cell.spread < 1.0 / limit:
            out.append(
                f"{cell.approach} / {cell.phase}: wall/sim ratio "
                f"{cell.ratio:.4f} is {cell.spread:.1f}x the run median "
                f"(limit {limit:g}x either way) — the cost model does not "
                "see this cell's work"
            )
    return out


def component_cells(payload: List[Dict]) -> List[Dict[str, object]]:
    """Per-component simulated-vs-wall joins from profiled phase rows
    (rows without a ``profile`` attachment contribute nothing)."""
    out: List[Dict[str, object]] = []
    for entry in payload:
        for phase in PHASES:
            profile = entry.get(phase, {}).get("profile")
            if not profile:
                continue
            for row in profile.get("components", ()):
                if row.get("wall_seconds") is None:
                    continue
                out.append(
                    {
                        "approach": entry["approach"],
                        "phase": phase,
                        "component": row["component"],
                        "simulated_seconds": row["simulated_seconds"],
                        "wall_seconds": row["wall_seconds"],
                    }
                )
    return out


def calibration_report(
    payload: List[Dict], limit: float = DEFAULT_SPREAD_LIMIT
) -> Dict[str, object]:
    """JSON-ready report: every cell, the median ratio, violations, and
    (when profiled) the per-component joins."""
    from repro.obs.schema import SCHEMA_VERSION

    cells = calibration_cells(payload)
    return {
        "schema_version": SCHEMA_VERSION,
        "median_ratio": _median([cell.ratio for cell in cells]),
        "spread_limit": limit,
        "cells": [cell.to_dict() for cell in cells],
        "violations": check_calibration(cells, limit),
        "components": component_cells(payload),
    }


def render_calibration(
    payload: List[Dict], limit: float = DEFAULT_SPREAD_LIMIT
) -> str:
    """Human-readable calibration table."""
    from repro.bench.reporting import format_table

    cells = calibration_cells(payload)
    table = format_table(
        ["Approach", "Phase", "Sim (s)", "Wall (s)", "Wall/Sim", "x median"],
        [
            (
                cell.approach,
                cell.phase,
                cell.simulated_seconds,
                cell.wall_seconds,
                cell.ratio,
                cell.spread,
            )
            for cell in cells
        ],
        title="Cost-model calibration (wall vs simulated, per Table-5 cell)",
    )
    violations = check_calibration(cells, limit)
    if violations:
        lines = [table, "violations:"]
        lines.extend(f"  {message}" for message in violations)
        return "\n".join(lines)
    return table + f"calibrated: all ratios within {limit:g}x of the median\n"
