"""Observability: metrics registry, tracing spans, and exporters.

See DESIGN.md ("Observability") for the architecture.  Quick tour:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms
  with labeled children, plus the shared no-op twins;
* :mod:`repro.obs.tracing` — nested context-manager spans recording
  wall-clock *and* simulated disk seconds into a bounded ring buffer;
* :mod:`repro.obs.telemetry` — the facade the store holds
  (:func:`create_telemetry` picks live vs. no-op from configuration);
* :mod:`repro.obs.bridge` — projects the always-on dataclass stats
  into a registry and snapshots it for the bench harness;
* :mod:`repro.obs.exporters` — Prometheus text, JSON-lines events,
  a ``top``-style view, and the classic summary renderer;
* :mod:`repro.obs.clock` — the only legal wall-clock source
  (enforced by :func:`~repro.obs.clock.check_clock_discipline`).
"""

from repro.obs.bridge import (
    MetricsSnapshot,
    metrics_snapshot,
    snapshot_families,
    stats_registry,
    store_families,
    store_registry,
)
from repro.obs.clock import check_clock_discipline, perf_seconds
from repro.obs.exporters import (
    events_jsonl,
    prometheus_text,
    render_classic_summary,
    render_top,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    NOOP_METRIC,
    NOOP_REGISTRY,
    NoopRegistry,
    SIMULATED_COST_BUCKETS,
    Sample,
    TOKEN_COUNT_BUCKETS,
    format_value,
    sample_key,
)
from repro.obs.telemetry import (
    NOOP_TELEMETRY,
    NoopTelemetry,
    Telemetry,
    create_telemetry,
)
from repro.obs.tracing import (
    DEFAULT_RING_CAPACITY,
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_RING_CAPACITY",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NOOP_METRIC",
    "NOOP_REGISTRY",
    "NOOP_SPAN",
    "NOOP_TELEMETRY",
    "NOOP_TRACER",
    "NoopRegistry",
    "NoopTelemetry",
    "NoopTracer",
    "SIMULATED_COST_BUCKETS",
    "Sample",
    "Span",
    "SpanEvent",
    "TOKEN_COUNT_BUCKETS",
    "Telemetry",
    "Tracer",
    "check_clock_discipline",
    "create_telemetry",
    "events_jsonl",
    "format_value",
    "metrics_snapshot",
    "perf_seconds",
    "prometheus_text",
    "render_classic_summary",
    "render_top",
    "sample_key",
    "snapshot_families",
    "stats_registry",
    "store_families",
    "store_registry",
]
