"""Observability: metrics registry, tracing spans, and exporters.

See DESIGN.md ("Observability") for the architecture.  Quick tour:

* :mod:`repro.obs.metrics` — thread-safe counters/gauges/histograms
  with labeled children, plus the shared no-op twins;
* :mod:`repro.obs.tracing` — nested context-manager spans recording
  wall-clock *and* simulated disk seconds into a bounded ring buffer;
* :mod:`repro.obs.telemetry` — the facade the store holds
  (:func:`create_telemetry` picks live vs. no-op from configuration);
* :mod:`repro.obs.bridge` — projects the always-on dataclass stats
  into a registry and snapshots it for the bench harness;
* :mod:`repro.obs.exporters` — Prometheus text, JSON-lines events,
  a ``top``-style view, and the classic summary renderer;
* :mod:`repro.obs.events` — the structured event log components emit
  into (op-id and span-correlated, bounded, JSONL-exportable);
* :mod:`repro.obs.heatmap` — per-block access counters and the
  hot-block / hot-range / partial-index-efficacy reports;
* :mod:`repro.obs.explain` — per-operation EXPLAIN reports assembled
  from the event log, spans and component counters;
* :mod:`repro.obs.history` — the workload-history timeline: periodic
  counter-delta snapshots, bounded retention, JSONL persistence;
* :mod:`repro.obs.fingerprint` — workload fingerprints over history
  windows and the deterministic drift score between them;
* :mod:`repro.obs.advisor` — the rule-based tuning advisor: evidence-
  backed recommendations with what-if simulated-cost estimates;
* :mod:`repro.obs.schema` — the ``schema_version`` stamp every exported
  JSON artifact carries, and its reader-side check;
* :mod:`repro.obs.clock` — the only legal wall-clock source
  (enforced by :func:`~repro.obs.clock.check_clock_discipline`).
"""

from repro.obs.advisor import (
    AdvisorReport,
    Evidence,
    Recommendation,
    WhatIf,
    advise,
    apply_recommendations,
)
from repro.obs.bridge import (
    MetricsSnapshot,
    metrics_snapshot,
    snapshot_families,
    stats_registry,
    store_families,
    store_registry,
)
from repro.obs.clock import check_clock_discipline, perf_seconds
from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    Event,
    EventLog,
    NOOP_EVENT_LOG,
    NoopEventLog,
    create_event_log,
    events_log_jsonl,
)
from repro.obs.explain import (
    EXPLAINABLE_OPS,
    ExplainRecorder,
    ExplainReport,
    explain_operation,
    run_operation,
)
from repro.obs.exporters import (
    events_jsonl,
    prometheus_text,
    render_classic_summary,
    render_top,
)
from repro.obs.fingerprint import (
    WorkloadFingerprint,
    drift_score,
    drift_series,
    fingerprint_window,
)
from repro.obs.heatmap import (
    BlockHeat,
    BlockHeatmap,
    NOOP_HEATMAP,
    NoopHeatmap,
    create_heatmap,
    heatmap_json,
    heatmap_report,
    render_heatmap,
)
from repro.obs.history import (
    HistorySnapshot,
    NOOP_HISTORY,
    NoopHistory,
    WorkloadHistory,
    create_history,
    load_snapshots,
    read_history,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    NOOP_METRIC,
    NOOP_REGISTRY,
    NoopRegistry,
    SIMULATED_COST_BUCKETS,
    Sample,
    TOKEN_COUNT_BUCKETS,
    format_value,
    sample_key,
)
from repro.obs.schema import SCHEMA_VERSION, check_schema_version, stamp
from repro.obs.telemetry import (
    NOOP_TELEMETRY,
    NoopTelemetry,
    Telemetry,
    create_telemetry,
)
from repro.obs.tracing import (
    DEFAULT_RING_CAPACITY,
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanEvent,
    Tracer,
)

__all__ = [
    "AdvisorReport",
    "BlockHeat",
    "BlockHeatmap",
    "Counter",
    "DEFAULT_EVENT_CAPACITY",
    "DEFAULT_RING_CAPACITY",
    "EXPLAINABLE_OPS",
    "Event",
    "EventLog",
    "Evidence",
    "ExplainRecorder",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "HistorySnapshot",
    "LATENCY_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NOOP_EVENT_LOG",
    "NOOP_HEATMAP",
    "NOOP_HISTORY",
    "NOOP_METRIC",
    "NOOP_REGISTRY",
    "NOOP_SPAN",
    "NOOP_TELEMETRY",
    "NOOP_TRACER",
    "NoopEventLog",
    "NoopHeatmap",
    "NoopHistory",
    "NoopRegistry",
    "NoopTelemetry",
    "NoopTracer",
    "Recommendation",
    "SCHEMA_VERSION",
    "SIMULATED_COST_BUCKETS",
    "Sample",
    "Span",
    "SpanEvent",
    "TOKEN_COUNT_BUCKETS",
    "Telemetry",
    "Tracer",
    "WhatIf",
    "WorkloadFingerprint",
    "WorkloadHistory",
    "advise",
    "apply_recommendations",
    "check_clock_discipline",
    "check_schema_version",
    "create_event_log",
    "create_heatmap",
    "create_history",
    "create_telemetry",
    "drift_score",
    "drift_series",
    "events_jsonl",
    "events_log_jsonl",
    "explain_operation",
    "fingerprint_window",
    "format_value",
    "heatmap_json",
    "heatmap_report",
    "load_snapshots",
    "metrics_snapshot",
    "perf_seconds",
    "prometheus_text",
    "read_history",
    "render_classic_summary",
    "render_heatmap",
    "render_top",
    "run_operation",
    "sample_key",
    "snapshot_families",
    "stamp",
    "stats_registry",
    "store_families",
    "store_registry",
]
