"""Exporters: Prometheus text format, JSON-lines events, and a human view.

Three consumers, three formats:

* :func:`prometheus_text` — the standard ``# HELP``/``# TYPE`` text
  exposition, suitable for scraping or for golden-file tests;
* :func:`events_jsonl` — one JSON object per completed span, oldest
  first, for offline trace analysis;
* :func:`render_top` — a ``top``-style table of the busiest span names
  by cumulative wall time, plus the non-span counters and gauges;
* :func:`render_classic_summary` — reproduces the historical
  ``StoreStatistics.summary()`` wording from a projected registry, so
  examples and scripts that parse that text keep working.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.metrics import (
    MetricFamily,
    MetricsRegistry,
    Sample,
    format_value,
    sample_key,
)
from repro.obs.tracing import SpanEvent


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        rendered = ",".join(
            f'{name}="{_escape_label_value(value)}"' for name, value in sample.labels
        )
        return f"{sample.name}{{{rendered}}} {format_value(sample.value)}"
    return f"{sample.name} {format_value(sample.value)}"


def prometheus_text(families: Iterable[MetricFamily]) -> str:
    """Prometheus text exposition format (one trailing newline)."""
    lines: List[str] = []
    for family in families:
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            lines.append(_render_sample(sample))
    return "\n".join(lines) + "\n" if lines else ""


def events_jsonl(events: Iterable[SpanEvent]) -> str:
    """One JSON object per span event, newline-delimited."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True, default=str) for event in events
    ]
    return "\n".join(lines) + "\n" if lines else ""


# ------------------------------------------------------------------ top view --

def _format_rows(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()
    lines = [render(headers), render(["-" * width for width in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def render_top(families: Iterable[MetricFamily], limit: int = 15) -> str:
    """A ``top``-style summary: span names ranked by cumulative wall
    time, followed by the remaining counters and gauges."""
    families = list(families)
    spans: Dict[str, Dict[str, float]] = {}
    scalars: List[Tuple[str, float]] = []
    for family in families:
        if family.name == "repro_spans_total":
            for sample in family.samples:
                name = dict(sample.labels).get("span", "?")
                spans.setdefault(name, {})["count"] = sample.value
        elif family.name in ("repro_span_seconds", "repro_span_simulated_seconds"):
            field = "wall" if family.name == "repro_span_seconds" else "sim"
            for sample in family.samples:
                if not sample.name.endswith("_sum"):
                    continue
                name = dict(sample.labels).get("span", "?")
                spans.setdefault(name, {})[field] = sample.value
        elif family.kind in ("counter", "gauge"):
            for sample in family.samples:
                scalars.append((sample_key(sample), sample.value))

    lines: List[str] = []
    if spans:
        ranked = sorted(
            spans.items(), key=lambda item: item[1].get("wall", 0.0), reverse=True
        )[:limit]
        rows = []
        for name, data in ranked:
            count = data.get("count", 0.0)
            wall = data.get("wall", 0.0)
            sim = data.get("sim", 0.0)
            per_call = wall / count if count else 0.0
            rows.append(
                (
                    name,
                    format_value(count),
                    f"{wall * 1000:.3f}",
                    f"{per_call * 1e6:.1f}",
                    f"{sim * 1000:.3f}",
                )
            )
        lines.append("spans (by cumulative wall time)")
        lines.append(
            _format_rows(
                ("span", "count", "wall ms", "us/call", "sim ms"), rows
            )
        )
    if scalars:
        if lines:
            lines.append("")
        lines.append("counters and gauges")
        rows = [(key, format_value(value)) for key, value in scalars[: limit * 4]]
        lines.append(_format_rows(("metric", "value"), rows))
    if not lines:
        return "no telemetry recorded\n"
    return "\n".join(lines) + "\n"


# ------------------------------------------------------- classic summary view --

def _sample_value(registry: MetricsRegistry, key: str) -> float:
    return registry.snapshot().get(key, 0.0)


def render_classic_summary(registry: MetricsRegistry) -> str:
    """The historical ``StoreStatistics.summary()`` text, rebuilt from a
    projected registry (see :mod:`repro.obs.bridge`).  Output format is
    stable: scripts and examples parse these exact lines."""
    values = registry.snapshot()

    def get(key: str) -> float:
        return values.get(key, 0.0)

    updates = int(
        get('repro_store_operations_total{op="load"}')
        + get('repro_store_operations_total{op="insert"}')
        + get('repro_store_operations_total{op="delete"}')
        + get('repro_store_operations_total{op="replace"}')
    )
    read_ops = int(
        get('repro_store_operations_total{op="read"}')
        + get('repro_store_operations_total{op="node_read"}')
    )
    lines = [
        "operations: {updates} updates, {reads} reads "
        "({created} ranges created, {split} split)".format(
            updates=updates,
            reads=read_ops,
            created=int(get('repro_store_ranges_total{event="created"}')),
            split=int(get('repro_store_ranges_total{event="split"}')),
        ),
        "locator: {partial} via partial index, {full} via full index, "
        "{scan} via range scan ({tokens} tokens scanned)".format(
            partial=int(get('repro_locator_resolutions_total{path="partial"}')),
            full=int(get('repro_locator_resolutions_total{path="full"}')),
            scan=int(get('repro_locator_resolutions_total{path="scan"}')),
            tokens=int(get("repro_locator_tokens_scanned_total")),
        ),
        "disk: {reads} reads ({seq} seq), {writes} writes, "
        "{sim:.2f} ms simulated".format(
            reads=int(get('repro_disk_io_total{op="read",pattern="random"}')
                      + get('repro_disk_io_total{op="read",pattern="sequential"}')),
            seq=int(get('repro_disk_io_total{op="read",pattern="sequential"}')),
            writes=int(get('repro_disk_io_total{op="write",pattern="random"}')
                       + get('repro_disk_io_total{op="write",pattern="sequential"}')),
            sim=get("repro_disk_simulated_seconds_total") * 1000.0,
        ),
    ]
    accesses = get('repro_buffer_accesses_total{result="hit"}') + get(
        'repro_buffer_accesses_total{result="miss"}'
    )
    hits = get('repro_buffer_accesses_total{result="hit"}')
    hit_rate = hits / accesses if accesses else 0.0
    lines.append(
        "buffer pool: {rate:.1%} hit rate ({hits}/{accesses})".format(
            rate=hit_rate, hits=int(hits), accesses=int(accesses)
        )
    )
    if any(key.startswith("repro_partial_index_") for key in values):
        probes = (
            get('repro_partial_index_probes_total{result="hit"}')
            + get('repro_partial_index_probes_total{result="miss"}')
            + get('repro_partial_index_probes_total{result="stale"}')
        )
        partial_hits = get('repro_partial_index_probes_total{result="hit"}')
        partial_rate = partial_hits / probes if probes else 0.0
        lines.append(
            "partial index: {rate:.1%} hit rate, {inserts} inserts, "
            "{evictions} evictions, {stale} stale".format(
                rate=partial_rate,
                inserts=int(get("repro_partial_index_inserts_total")),
                evictions=int(get("repro_partial_index_evictions_total")),
                stale=int(get('repro_partial_index_probes_total{result="stale"}')),
            )
        )
    return "\n".join(lines)
