"""Deterministic cost profiles: where each operation's cost went.

EXPLAIN (:mod:`repro.obs.explain`) answers *which access path* one
operation took; this module answers *what fraction of the cost* each
component consumed, along the store's two clocks at once:

* the **simulated axis** — disk seconds plus the per-token and
  per-index-entry CPU charges (:meth:`XMLStore.simulated_seconds`).
  Fully deterministic: the same workload produces byte-identical
  profiles, which is what makes flamegraphs diffable across commits;
* the **wall axis** — real seconds from the observability clock, the
  ground truth the calibration gate (:mod:`repro.obs.calibration`)
  compares the model against.

A :class:`ProfileRecorder` brackets a window of work exactly like an
``ExplainRecorder``: it snapshots the always-on counters before, runs
the work, and folds the tracing spans finished inside the window into a
:class:`CostProfile` — a merged call tree (siblings with the same span
name coalesce, flamegraph-style) plus a per-component cost table derived
from the *same* counter deltas and cost constants the store's clock
uses, so the component totals reconcile exactly (±0) with the metrics
registry.  The recorder adds no probes of its own: everything comes from
instrumentation PR 1 and PR 2 already put on the hot path, and with
profiling disabled nothing here runs at all.

Exports (collapsed stacks, speedscope JSON, a pstats-style top table)
live in :mod:`repro.obs.profile_export`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.clock import perf_seconds
from repro.obs.tracing import SpanEvent

#: span-name prefixes attributed to a component on the wall axis
_SPAN_COMPONENTS = {
    "locator": "token-replay",
    "wal": "wal",
    "xpath": "xpath",
}


def component_of_span(name: str) -> str:
    """The component a span name belongs to ("wal.append" -> "wal");
    unprefixed Table-1 operation spans belong to the store itself."""
    head = name.split(".", 1)[0]
    return _SPAN_COMPONENTS.get(head, "store")


@dataclass
class CallNode:
    """One frame of the merged call tree: all spans with the same name
    under the same (merged) parent, with totals along both axes."""

    name: str
    count: int = 0
    wall_seconds: float = 0.0
    simulated_seconds: float = 0.0
    children: "Dict[str, CallNode]" = field(default_factory=dict)

    def child(self, name: str) -> "CallNode":
        node = self.children.get(name)
        if node is None:
            node = CallNode(name)
            self.children[name] = node
        return node

    @property
    def self_wall_seconds(self) -> float:
        """Wall time not covered by child spans (clamped at zero: float
        subtraction of nested windows can go an ulp negative)."""
        inner = sum(c.wall_seconds for c in self.children.values())
        return max(0.0, self.wall_seconds - inner)

    @property
    def self_simulated_seconds(self) -> float:
        inner = sum(c.simulated_seconds for c in self.children.values())
        return max(0.0, self.simulated_seconds - inner)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "self_wall_seconds": self.self_wall_seconds,
            "self_simulated_seconds": self.self_simulated_seconds,
            "children": [c.to_dict() for c in self.children.values()],
        }


def fold_spans(spans: Sequence[SpanEvent]) -> CallNode:
    """Merge span events into a call tree keyed by name paths.

    Each span is inserted at the path of names from its outermost
    recorded ancestor down to itself (the parent chain is rebuilt from
    the ``parent`` sequence numbers; a parent outside the window — or
    evicted from the ring — makes its subtree root-level).  Insertion
    order follows span start order (``seq``), so sibling ordering, and
    therefore every export, is deterministic.
    """
    by_seq = {event.seq: event for event in spans}
    root = CallNode("")

    def path(event: SpanEvent) -> List[str]:
        names: List[str] = []
        cursor: Optional[SpanEvent] = event
        while cursor is not None:
            names.append(cursor.name)
            cursor = (
                by_seq.get(cursor.parent) if cursor.parent is not None else None
            )
        names.reverse()
        return names

    for event in sorted(spans, key=lambda e: e.seq):
        node = root
        for name in path(event):
            node = node.child(name)
        node.count += 1
        node.wall_seconds += event.wall_seconds
        node.simulated_seconds += event.simulated_seconds
    return root


def span_totals(spans: Sequence[SpanEvent]) -> Dict[str, Dict[str, float]]:
    """Per-span-name totals, accumulated in ring (finish) order.

    Finish order is the order the tracer fed the very same values into
    the ``repro_span_*`` histograms, so these float sums are *bitwise*
    equal to the registry's ``_sum`` samples — the reconciliation the
    acceptance test pins at ±0.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for event in spans:  # ring order, do not sort
        entry = totals.setdefault(
            event.name,
            {"count": 0, "wall_seconds": 0.0, "simulated_seconds": 0.0},
        )
        entry["count"] += 1
        entry["wall_seconds"] += event.wall_seconds
        entry["simulated_seconds"] += event.simulated_seconds
    return totals


@dataclass
class ComponentCost:
    """One component's share of the window, on both axes.

    ``simulated_seconds`` is computed as counter-delta x the store's own
    cost constant (the exact multiplication the simulated clock
    performs), so it reconciles with the registry without tolerance.
    ``wall_seconds`` is the wall total of the component's spans, or None
    when no span covers the component (the sampler fills that gap).
    """

    component: str
    simulated_seconds: float
    wall_seconds: Optional[float]
    counts: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "component": self.component,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "counts": self.counts,
        }


@dataclass
class CostProfile:
    """A window of work, attributed: call tree + component cost table."""

    operation: str
    wall_seconds: float
    #: store-clock delta over the window (the authoritative total; the
    #: component rows decompose it, up to float re-association)
    simulated_seconds: float
    root: CallNode
    span_totals: Dict[str, Dict[str, float]]
    components: List[ComponentCost]
    #: spans evicted from the tracer ring during the window; when > 0 the
    #: tree under-reports and every renderer says so (no silent caps)
    spans_dropped: int = 0
    #: the operation's rendered output (set by :func:`profile_operation`)
    result: Optional[str] = None

    def component(self, name: str) -> Optional[ComponentCost]:
        for row in self.components:
            if row.component == name:
                return row
        return None

    def to_dict(self, include_tree: bool = True) -> Dict[str, object]:
        from repro.obs.schema import SCHEMA_VERSION

        out: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "operation": self.operation,
            "wall_seconds": self.wall_seconds,
            "simulated_seconds": self.simulated_seconds,
            "span_totals": self.span_totals,
            "components": [row.to_dict() for row in self.components],
            "spans_dropped": self.spans_dropped,
        }
        if include_tree:
            out["tree"] = [c.to_dict() for c in self.root.children.values()]
        return out


class ProfileRecorder:
    """Context manager assembling a :class:`CostProfile` around a window
    of store work.  The profile is available as ``.profile`` after exit.

    Requires the store's telemetry to be live (``profiling_enabled`` or
    ``telemetry_enabled``); against a no-op tracer the tree is empty but
    the component table — built from always-on counters — still works.
    """

    def __init__(self, store, operation: str = "profile") -> None:
        self.store = store
        self.operation = operation
        self.profile: Optional[CostProfile] = None

    def __enter__(self) -> "ProfileRecorder":
        store = self.store
        self._scanned_before = store.locator.stats.tokens_scanned
        self._emitted_before = store.tokens_emitted
        self._range_entries_before = store.range_index._tree.entries_loaded
        self._range_lookups_before = store.range_index.lookups
        self._full_entries_before = (
            store.full_index._tree.entries_loaded
            if store.full_index is not None
            else 0
        )
        disk = getattr(store.device, "stats", None)
        self._disk_before = disk.snapshot() if disk is not None else None
        buffer = store.pool.stats
        self._buffer_before = (buffer.hits, buffer.misses)
        self._wal_before = (store.wal.appends, store.wal.fsyncs)
        if store.partial_index is not None:
            partial = store.partial_index.stats
            self._partial_before = (
                partial.hits, partial.misses, partial.stale_hits
            )
        else:
            self._partial_before = None
        self._simulated_before = store.simulated_seconds
        tracer = store.telemetry.tracer
        self._span_seq_before = tracer.next_seq
        self._dropped_before = tracer.dropped
        self._wall_start = perf_seconds()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall_seconds = perf_seconds() - self._wall_start
        if exc_type is not None:
            return  # propagate; no profile for a failed window
        store = self.store
        config = store.config
        tracer = store.telemetry.tracer
        spans = [
            event for event in tracer.events()
            if event.seq >= self._span_seq_before
        ]
        totals = span_totals(spans)

        def span_wall(*names: str) -> Optional[float]:
            covered = [totals[n]["wall_seconds"] for n in names if n in totals]
            return sum(covered) if covered else None

        scanned = store.locator.stats.tokens_scanned - self._scanned_before
        emitted = store.tokens_emitted - self._emitted_before
        range_entries = (
            store.range_index._tree.entries_loaded - self._range_entries_before
        )
        components = [
            ComponentCost(
                "token-replay",
                scanned * config.cpu_cost_per_scan_token,
                span_wall("locator.scan"),
                {"tokens_scanned": scanned},
            ),
            ComponentCost(
                "token-emit",
                emitted * config.cpu_cost_per_token,
                None,
                {"tokens_emitted": emitted},
            ),
            ComponentCost(
                "range-index",
                range_entries * config.cpu_cost_per_index_entry,
                None,
                {
                    "entries_loaded": range_entries,
                    "lookups": store.range_index.lookups
                    - self._range_lookups_before,
                },
            ),
        ]
        if store.full_index is not None:
            full_entries = (
                store.full_index._tree.entries_loaded - self._full_entries_before
            )
            components.append(
                ComponentCost(
                    "full-index",
                    full_entries * config.cpu_cost_per_index_entry,
                    None,
                    {"entries_loaded": full_entries},
                )
            )
        if self._partial_before is not None:
            stats = store.partial_index.stats
            hits = stats.hits - self._partial_before[0]
            misses = stats.misses - self._partial_before[1]
            stale = stats.stale_hits - self._partial_before[2]
            components.append(
                ComponentCost(
                    "partial-index",
                    0.0,  # memory-resident: free on the simulated clock (§5)
                    None,
                    {
                        "probes": hits + misses + stale,
                        "hits": hits,
                        "misses": misses,
                        "stale_hits": stale,
                    },
                )
            )
        disk = getattr(store.device, "stats", None)
        if disk is not None and self._disk_before is not None:
            delta = disk.delta(self._disk_before)
            components.append(
                ComponentCost(
                    "disk",
                    delta.simulated_seconds,
                    None,
                    {
                        "blocks_read": delta.reads,
                        "blocks_written": delta.writes,
                        "sequential_reads": delta.sequential_reads,
                        "sequential_writes": delta.sequential_writes,
                    },
                )
            )
        buffer = store.pool.stats
        components.append(
            ComponentCost(
                "buffer",
                0.0,  # pool hits cost nothing on the simulated clock
                None,
                {
                    "hits": buffer.hits - self._buffer_before[0],
                    "misses": buffer.misses - self._buffer_before[1],
                },
            )
        )
        components.append(
            ComponentCost(
                "wal",
                0.0,  # the WAL is not charged by the disk model
                span_wall("wal.append", "wal.fsync"),
                {
                    "appends": store.wal.appends - self._wal_before[0],
                    "fsyncs": store.wal.fsyncs - self._wal_before[1],
                },
            )
        )
        if "xpath" in totals:
            components.append(
                ComponentCost(
                    "xpath",
                    0.0,  # its disk/token costs are attributed above
                    span_wall("xpath"),
                    {"evaluations": totals["xpath"]["count"]},
                )
            )
        self.profile = CostProfile(
            operation=self.operation,
            wall_seconds=wall_seconds,
            simulated_seconds=store.simulated_seconds - self._simulated_before,
            root=fold_spans(spans),
            span_totals=totals,
            components=components,
            spans_dropped=tracer.dropped - self._dropped_before,
        )


def profile_operation(store, operation: str, argv: Sequence[str]) -> CostProfile:
    """Run one CLI-named operation under a :class:`ProfileRecorder` and
    return its profile (the operation's own output lands in ``.result``)."""
    from repro.obs.explain import run_operation

    recorder = ProfileRecorder(store, operation)
    with recorder:
        result = run_operation(store, operation, argv)
    assert recorder.profile is not None
    recorder.profile.result = result
    return recorder.profile


def reconcile_with_metrics(
    profile: CostProfile, values: Dict[str, float]
) -> List[str]:
    """Cross-check a *whole-store-lifetime* profile against a registry
    snapshot (:func:`repro.obs.bridge.metrics_snapshot` ``.values``).

    Every comparison is exact (``!=``, no tolerance): the profile's
    counts are the same integers the projection counters hold, its
    component costs are the same count-x-constant products, and its span
    sums were accumulated in the same order as the histogram sums.  Only
    meaningful when the profile window covers the store's entire life
    (otherwise the registry's since-birth counters are ahead).
    Returns human-readable mismatches; empty means reconciled.
    """
    out: List[str] = []

    def check(label: str, ours: float, key: str) -> None:
        theirs = values.get(key)
        if theirs is None:
            out.append(f"{label}: registry sample {key} missing")
        elif ours != theirs:
            out.append(f"{label}: profile {ours!r} != registry {key} {theirs!r}")

    replay = profile.component("token-replay")
    if replay is not None:
        check(
            "token-replay tokens",
            replay.counts["tokens_scanned"],
            "repro_locator_tokens_scanned_total",
        )
    emit = profile.component("token-emit")
    if emit is not None:
        check(
            "token-emit tokens",
            emit.counts["tokens_emitted"],
            "repro_store_tokens_emitted_total",
        )
    entries = sum(
        row.counts.get("entries_loaded", 0)
        for row in profile.components
        if row.component in ("range-index", "full-index")
    )
    check("index entries", entries, "repro_store_index_entries_loaded_total")
    disk = profile.component("disk")
    if disk is not None:
        check(
            "disk simulated seconds",
            disk.simulated_seconds,
            "repro_disk_simulated_seconds_total",
        )
    wal = profile.component("wal")
    if wal is not None:
        check("wal appends", wal.counts["appends"], "repro_wal_appends_total")
        check("wal fsyncs", wal.counts["fsyncs"], "repro_wal_fsyncs_total")
    for name, totals in profile.span_totals.items():
        check(
            f"span {name} simulated sum",
            totals["simulated_seconds"],
            f'repro_span_simulated_seconds_sum{{span="{name}"}}',
        )
        check(
            f"span {name} count",
            float(totals["count"]),
            f'repro_spans_total{{span="{name}"}}',
        )
    return out
