"""Workload history: the store's append-only telemetry timeline.

Live metrics answer "what is the store doing *now*"; the adaptive
questions of the paper — has the workload *changed*, is the current
configuration still the right one — need the past.  This module records
it: a bounded, store-local sequence of :class:`HistorySnapshot` rows,
each one the *delta* of every deterministic counter since the previous
row (operation mix, access-path resolutions, buffer traffic, WAL and
range activity) plus cumulative partial-index efficacy and a compact
block-heat summary.

Capture points:

* every ``history_interval`` Table-1 operations (wired into
  ``XMLStore._observe``, the same hook the adaptive controller uses);
* every checkpoint (so a closed store's file always ends on a complete
  picture);
* explicitly, from the bench harness (one snapshot per phase, labeled).

Persistence is an optional JSONL file next to the store's device file
(one stamped snapshot per line, ``schema_version`` checked on read).
Retention is bounded by ``history_capacity``: when the sequence
overflows, the two *oldest* rows merge into one (deltas summed,
cumulatives kept from the later row), so old history loses resolution
gradually instead of vanishing — the standard telemetry-downsampling
trade.

The contract of :mod:`repro.obs` holds: everything here only *reads*
counters and never touches the simulated clock, the disabled twin
:data:`NOOP_HISTORY` keeps the hot path at one attribute check, and —
for the CI determinism gate — snapshots exclude every wall-clock-derived
sample (span wall seconds), so two identical runs write identical
history byte-for-byte.

Consumers: :mod:`repro.obs.fingerprint` (drift detection over snapshot
windows) and :mod:`repro.obs.advisor` (evidence-backed tuning
recommendations).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ObservabilityError

DEFAULT_CAPACITY = 256
DEFAULT_INTERVAL = 64

#: Metric-sample keys excluded from snapshot deltas because their values
#: derive from the wall clock (the one nondeterministic series the
#: registry holds).  ``repro_span_simulated_seconds`` does *not* match.
_WALL_KEY_PREFIXES = ("repro_span_seconds",)

#: Hottest blocks listed per heat summary.
_HEAT_TOP = 5


def _is_deterministic_key(key: str) -> bool:
    return not any(key.startswith(prefix) for prefix in _WALL_KEY_PREFIXES)


@dataclass
class HistorySnapshot:
    """One row of the workload timeline."""

    #: Monotonic capture number (survives reopen via the JSONL file).
    seq: int
    #: Why this row exists: "interval", "checkpoint", a bench phase
    #: label, or "compacted" after retention merged older rows.
    label: str
    #: Cumulative Table-1 operations at capture time.
    operations: int
    #: Cumulative simulated clock at capture time (read, never advanced).
    simulated_seconds: float
    #: Per-window counter deltas (gauges: value at capture), keyed by
    #: flat sample name — see :func:`repro.obs.metrics.sample_key`.
    deltas: Dict[str, float] = field(default_factory=dict)
    #: Cumulative partial-index efficacy (None when the policy keeps no
    #: partial index) — same shape as the heatmap report's section.
    partial_index: Optional[Dict[str, object]] = None
    #: Block-heat summary (None when the heatmap is disabled).
    heatmap: Optional[Dict[str, object]] = None
    #: How many raw captures this row aggregates (retention merging).
    merged: int = 1

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "seq": self.seq,
            "label": self.label,
            "operations": self.operations,
            "simulated_seconds": self.simulated_seconds,
            "deltas": dict(self.deltas),
            "partial_index": self.partial_index,
            "heatmap": self.heatmap,
            "merged": self.merged,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HistorySnapshot":
        try:
            return cls(
                seq=int(payload["seq"]),  # type: ignore[arg-type]
                label=str(payload["label"]),
                operations=int(payload["operations"]),  # type: ignore[arg-type]
                simulated_seconds=float(payload["simulated_seconds"]),  # type: ignore[arg-type]
                deltas={
                    str(k): float(v)
                    for k, v in dict(payload.get("deltas") or {}).items()
                },
                partial_index=payload.get("partial_index"),  # type: ignore[arg-type]
                heatmap=payload.get("heatmap"),  # type: ignore[arg-type]
                merged=int(payload.get("merged", 1)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ObservabilityError(
                f"malformed history snapshot: {error}"
            ) from error

    def delta(self, key: str, default: float = 0.0) -> float:
        return self.deltas.get(key, default)


def _heat_summary(store) -> Optional[Dict[str, object]]:
    """Compress the block heatmap into the numbers drift/advice need:
    how many blocks the workload touches, how concentrated the heat is
    (share of the hottest decile), and how many blocks cover 80% of all
    touches (the working set the buffer pool must hold)."""
    if not store.heatmap.enabled:
        return None
    counts = store.heatmap.counts()
    touches = sorted(
        ((heat.touches, block) for block, heat in counts.items()), reverse=True
    )
    total = sum(t for t, _ in touches)
    if not total:
        return {
            "blocks_touched": len(counts),
            "touches": 0,
            "hot80_blocks": 0,
            "top_decile_share": 0.0,
            "top_blocks": [],
        }
    hot80 = 0
    running = 0
    for value, _ in touches:
        running += value
        hot80 += 1
        if running >= 0.8 * total:
            break
    decile = max(1, len(touches) // 10)
    decile_share = sum(t for t, _ in touches[:decile]) / total
    return {
        "blocks_touched": len(counts),
        "touches": total,
        "hot80_blocks": hot80,
        "top_decile_share": decile_share,
        "top_blocks": [
            {"block": block, "touches": value}
            for value, block in touches[:_HEAT_TOP]
        ],
    }


class WorkloadHistory:
    """Live history recorder (see the module docstring for the design)."""

    enabled = True

    def __init__(
        self,
        path: Optional[str] = None,
        capacity: int = DEFAULT_CAPACITY,
        interval: int = DEFAULT_INTERVAL,
    ) -> None:
        self.path = path
        self.capacity = capacity
        self.interval = interval
        self._snapshots: List[HistorySnapshot] = []
        self._ops_since_capture = 0
        self._last_metrics = None  # MetricsSnapshot of the previous capture
        #: lifetime capture/compaction counters (exported by the bridge)
        self.captures = 0
        self.compactions = 0
        if path is not None and os.path.exists(path):
            self._snapshots = [
                HistorySnapshot.from_dict(row) for row in read_history(path)
            ]

    # ------------------------------------------------------------- recording --

    def observe(self, store, is_read: bool) -> None:
        """Per-operation hook (``XMLStore._observe``): capture one
        snapshot every ``interval`` operations."""
        self._ops_since_capture += 1
        if self._ops_since_capture >= self.interval:
            self.capture(store, "interval")

    def capture(
        self, store, label: str, skip_if_idle: bool = False
    ) -> Optional[HistorySnapshot]:
        """Capture one snapshot now.  ``skip_if_idle`` suppresses the
        capture when no operation ran since the last one (the checkpoint
        hook uses it, so closing an untouched store adds no row)."""
        if skip_if_idle and self._ops_since_capture == 0:
            return None
        from repro.obs.bridge import metrics_snapshot
        from repro.obs.heatmap import _partial_efficacy

        current = metrics_snapshot(store)
        if self._last_metrics is not None:
            deltas = current.delta(self._last_metrics)
        else:
            deltas = dict(current.values)
        deltas = {
            key: value
            for key, value in deltas.items()
            if _is_deterministic_key(key)
        }
        snapshot = HistorySnapshot(
            seq=self._next_seq(),
            label=label,
            operations=store.operations.read_ops + store.operations.updates,
            simulated_seconds=store.simulated_seconds,
            deltas=deltas,
            partial_index=_partial_efficacy(store),
            heatmap=_heat_summary(store),
        )
        self._last_metrics = current
        self._ops_since_capture = 0
        self._snapshots.append(snapshot)
        self.captures += 1
        compacted = self._enforce_capacity()
        if self.path is not None:
            if compacted:
                self._rewrite_file()
            else:
                self._append_line(snapshot)
        return snapshot

    def _next_seq(self) -> int:
        return self._snapshots[-1].seq + 1 if self._snapshots else 0

    def _enforce_capacity(self) -> bool:
        """Merge oldest adjacent rows until within capacity; True when
        anything merged (the file must then be rewritten)."""
        merged = False
        while len(self._snapshots) > self.capacity:
            first, second = self._snapshots[0], self._snapshots[1]
            deltas = dict(first.deltas)
            for key, value in second.deltas.items():
                deltas[key] = deltas.get(key, 0.0) + value
            self._snapshots[0:2] = [
                HistorySnapshot(
                    seq=second.seq,
                    label="compacted",
                    operations=second.operations,
                    simulated_seconds=second.simulated_seconds,
                    deltas=deltas,
                    partial_index=second.partial_index,
                    heatmap=second.heatmap,
                    merged=first.merged + second.merged,
                )
            ]
            self.compactions += 1
            merged = True
        return merged

    # ----------------------------------------------------------- persistence --

    def _append_line(self, snapshot: HistorySnapshot) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(snapshot.to_dict(), sort_keys=True) + "\n")

    def _rewrite_file(self) -> None:
        temporary = self.path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            for snapshot in self._snapshots:
                handle.write(
                    json.dumps(snapshot.to_dict(), sort_keys=True) + "\n"
                )
        os.replace(temporary, self.path)

    # ---------------------------------------------------------------- reading --

    def snapshots(self) -> List[HistorySnapshot]:
        return list(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)


class NoopHistory:
    """Disabled history: recording is a no-op, reads are empty."""

    __slots__ = ()
    enabled = False
    captures = 0
    compactions = 0
    capacity = DEFAULT_CAPACITY
    interval = DEFAULT_INTERVAL
    path = None

    def observe(self, store, is_read: bool) -> None:
        pass

    def capture(self, store, label: str, skip_if_idle: bool = False):
        return None

    def snapshots(self) -> List[HistorySnapshot]:
        return []

    def __len__(self) -> int:
        return 0


NOOP_HISTORY = NoopHistory()


def create_history(
    enabled: bool,
    path: Optional[str] = None,
    capacity: int = DEFAULT_CAPACITY,
    interval: int = DEFAULT_INTERVAL,
):
    """The configured history: live when enabled, shared no-op otherwise."""
    if not enabled:
        return NOOP_HISTORY
    return WorkloadHistory(path=path, capacity=capacity, interval=interval)


def read_history(path: str) -> List[Dict[str, object]]:
    """Reader API: parse one history JSONL file into snapshot dicts,
    checking every line's ``schema_version`` stamp."""
    from repro.obs.schema import check_schema_version

    rows: List[Dict[str, object]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError as error:
                    raise ObservabilityError(
                        f"{path}:{number}: malformed history line ({error})"
                    ) from error
                check_schema_version(payload, f"{path}:{number}")
                rows.append(payload)
    except OSError as error:
        raise ObservabilityError(f"cannot read {path}: {error}") from error
    return rows


def load_snapshots(path: str) -> List[HistorySnapshot]:
    """:func:`read_history`, decoded into :class:`HistorySnapshot` rows."""
    return [HistorySnapshot.from_dict(row) for row in read_history(path)]
