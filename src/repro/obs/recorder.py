"""Black-box flight recorder: the last moments before an incident.

The live observability layers answer questions while the store is up;
the moment something goes wrong — a checksum quarantine, a crash
recovery, a critical alert — the fine-grained context *around* the
failure is exactly what an operator needs and exactly what a bounded
ring of spans and counters has already forgotten by the time a human
looks.  This module is the aviation answer: an always-on, bounded ring
of :class:`RecorderEntry` rows capturing, on the simulated clock,

* structured events teed from :class:`~repro.obs.events.EventLog`
  (``wall`` stripped, so entries are pure functions of the workload);
* alert transitions teed from :class:`~repro.obs.alerts.AlertEngine`;
* periodic metric counter-delta frames (every ``recorder_interval``
  Table-1 operations, deterministic keys only — the same filter
  workload history applies).

When an incident trigger fires (:mod:`repro.obs.incident`), the ring's
contents are dumped into the bundle — the black box is read out.

The contract of :mod:`repro.obs` holds: entries carry no wall-clock
values, so two identical seeded runs record byte-identically (CI diffs
the dumps); the disabled path is the shared :data:`NOOP_RECORDER` twin
and one ``.enabled`` attribute check (Table-5 byte-identity is pinned
by ``tests/bench/test_recorder_zero_cost.py``).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.obs.history import _is_deterministic_key

DEFAULT_CAPACITY = 512
DEFAULT_INTERVAL = 32

#: Entry kinds, in the order they were introduced.
EVENT = "event"
ALERT = "alert"
METRICS = "metrics"


@dataclass
class RecorderEntry:
    """One ring row: who recorded what, keyed by op-seq, never wall time."""

    #: Monotone recorder sequence number (the ring's own order).
    seq: int
    #: ``"event"`` | ``"alert"`` | ``"metrics"``.
    kind: str
    #: Emitting component (event source, alert rule, ``"recorder"``).
    source: str
    #: What happened (event kind, alert state, frame label).
    label: str
    #: Simulated clock at record time (read, never advanced).
    simulated: float
    #: Deterministic payload (event fields, alert transition, deltas).
    payload: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "source": self.source,
            "label": self.label,
            "simulated": self.simulated,
            "payload": dict(self.payload),
        }


class FlightRecorder:
    """Live bounded ring over events, alerts and metric frames."""

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        interval: int = DEFAULT_INTERVAL,
    ) -> None:
        if capacity < 1:
            capacity = 1
        self.capacity = capacity
        self.interval = interval
        #: entries evicted from the ring (exported as
        #: ``repro_recorder_dropped_total``)
        self.dropped = 0
        self._entries: Deque[RecorderEntry] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        self._ops_since_frame = 0
        self._last_metrics = None  # MetricsSnapshot of the previous frame

    # ------------------------------------------------------------- recording --

    def record(
        self,
        kind: str,
        source: str,
        label: str,
        simulated: float,
        payload: Optional[Dict[str, object]] = None,
    ) -> RecorderEntry:
        """Append one entry (the shared path all three feeds use)."""
        with self._lock:
            entry = RecorderEntry(
                seq=self._seq,
                kind=kind,
                source=source,
                label=label,
                simulated=simulated,
                payload=payload if payload is not None else {},
            )
            self._seq += 1
            if len(self._entries) == self.capacity:
                self.dropped += 1
            self._entries.append(entry)
        return entry

    def record_event(self, event) -> RecorderEntry:
        """Tee one :class:`~repro.obs.events.Event` into the ring.  The
        ``wall`` reading is deliberately dropped: recorder contents are
        diffed byte-for-byte across identical runs."""
        payload = event.to_dict()
        payload.pop("wall", None)
        return self.record(
            EVENT, event.source, event.kind, event.simulated, payload
        )

    def record_alert(self, alert_event) -> RecorderEntry:
        """Tee one :class:`~repro.obs.alerts.AlertEvent` transition."""
        payload = alert_event.to_dict()
        payload.pop("schema_version", None)
        return self.record(
            ALERT,
            alert_event.rule,
            alert_event.state,
            alert_event.simulated_seconds,
            payload,
        )

    def observe(self, store) -> None:
        """Per-operation hook (``XMLStore._observe``): capture one metric
        counter-delta frame every ``interval`` operations."""
        self._ops_since_frame += 1
        if self._ops_since_frame >= self.interval:
            self.frame(store, "interval")

    def frame(self, store, label: str) -> RecorderEntry:
        """Capture one deterministic counter-delta frame now."""
        from repro.obs.bridge import metrics_snapshot

        current = metrics_snapshot(store)
        if self._last_metrics is not None:
            deltas = current.delta(self._last_metrics)
        else:
            deltas = dict(current.values)
        deltas = {
            key: value
            for key, value in deltas.items()
            if _is_deterministic_key(key) and value
        }
        self._last_metrics = current
        self._ops_since_frame = 0
        operations = store.operations.read_ops + store.operations.updates
        return self.record(
            METRICS,
            "recorder",
            label,
            store.simulated_seconds,
            {"operations": operations, "deltas": deltas},
        )

    # ---------------------------------------------------------------- reading --

    def entries(self, since: int = 0) -> List[RecorderEntry]:
        """Entries still in the ring, oldest first, ``seq >= since``."""
        with self._lock:
            return [entry for entry in self._entries if entry.seq >= since]

    def to_dict(self) -> Dict[str, object]:
        """The full ring dump (what incident bundles embed), stamped."""
        from repro.obs.schema import stamp

        return stamp(
            {
                "capacity": self.capacity,
                "interval": self.interval,
                "dropped": self.dropped,
                "entries": [entry.to_dict() for entry in self.entries()],
            }
        )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class NoopRecorder:
    """Disabled recorder: recording is a no-op, reads are empty."""

    __slots__ = ()
    enabled = False
    capacity = 0
    interval = DEFAULT_INTERVAL
    dropped = 0

    def record(
        self,
        kind: str,
        source: str,
        label: str,
        simulated: float,
        payload: Optional[Dict[str, object]] = None,
    ) -> None:
        pass

    def record_event(self, event) -> None:
        pass

    def record_alert(self, alert_event) -> None:
        pass

    def observe(self, store) -> None:
        pass

    def frame(self, store, label: str) -> None:
        pass

    def entries(self, since: int = 0) -> List[RecorderEntry]:
        return []

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import stamp

        return stamp(
            {"capacity": 0, "interval": self.interval, "dropped": 0,
             "entries": []}
        )

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


NOOP_RECORDER = NoopRecorder()


def create_recorder(
    enabled: bool,
    capacity: int = DEFAULT_CAPACITY,
    interval: int = DEFAULT_INTERVAL,
):
    """The configured recorder: live when enabled, shared no-op twin
    otherwise."""
    if not enabled:
        return NOOP_RECORDER
    return FlightRecorder(capacity=capacity, interval=interval)
