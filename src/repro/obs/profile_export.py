"""Renderers for :class:`~repro.obs.profiler.CostProfile`.

Three output shapes, all deterministic on the simulated axis (same
workload, same bytes):

* **collapsed stacks** — ``a;b;c <value>`` lines, the input format of
  Brendan Gregg's ``flamegraph.pl``.  ``by="stack"`` folds the span call
  tree (one line per frame, value = *self* time in integer
  microseconds); ``by="component"`` emits one line per component with
  the exact float seconds (``repr``), so totals parsed back from the
  file equal the profile's — and therefore the registry's — values
  bit-for-bit;
* **speedscope JSON** — an "evented" profile of the call tree laid out
  on a synthetic left-heavy timeline (frames open at their subtree's
  cumulative offset, so nesting is correct by construction even though
  the simulated clock often does not advance inside a span), plus a
  second "sampled" profile carrying the component table with exact
  weights;
* **top table** — a pstats-style text summary (spans by cumulative
  simulated cost, then the component table).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.profiler import CallNode, CostProfile

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

_AXES = ("simulated", "wall")


def _axis_total(node: CallNode, axis: str) -> float:
    return node.simulated_seconds if axis == "simulated" else node.wall_seconds


def _axis_self(node: CallNode, axis: str) -> float:
    return (
        node.self_simulated_seconds
        if axis == "simulated"
        else node.self_wall_seconds
    )


def _require_axis(axis: str) -> None:
    if axis not in _AXES:
        raise ValueError(f"unknown axis {axis!r}; use one of {_AXES}")


def collapsed_stacks(
    profile: CostProfile, axis: str = "simulated", by: str = "stack"
) -> str:
    """Flamegraph.pl-compatible collapsed-stack text.

    ``by="stack"``: one line per call-tree frame, semicolon-joined path,
    value = self time in integer microseconds (rounded; zero-self frames
    are skipped, their time lives in their children).  ``by="component"``:
    one line per component, value = exact float seconds (``repr``, which
    round-trips), usable for ±0 reconciliation.
    """
    _require_axis(axis)
    if by == "component":
        lines = []
        for row in profile.components:
            value: Optional[float] = (
                row.simulated_seconds if axis == "simulated" else row.wall_seconds
            )
            if value is None:
                continue  # component without wall-axis coverage
            lines.append(f"{row.component} {value!r}")
        return "\n".join(lines) + "\n" if lines else ""
    if by != "stack":
        raise ValueError(f"unknown grouping {by!r}; use 'stack' or 'component'")
    lines = []

    def walk(node: CallNode, prefix: str) -> None:
        path = f"{prefix};{node.name}" if prefix else node.name
        micros = round(_axis_self(node, axis) * 1e6)
        if micros > 0:
            lines.append(f"{path} {micros}")
        for child in node.children.values():
            walk(child, path)

    for child in profile.root.children.values():
        walk(child, "")
    return "\n".join(lines) + "\n" if lines else ""


def speedscope_json(
    profile: CostProfile, name: str = "repro", axis: str = "simulated"
) -> str:
    """The profile as a speedscope file (https://speedscope.app).

    Contains two profiles sharing one frame table: the span call tree as
    an evented profile (left-heavy synthetic timeline), and the component
    cost table as a sampled profile whose weights are the exact component
    values — summing a frame's weights reproduces the profile's (and the
    registry's) per-component totals without rounding.
    """
    _require_axis(axis)
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            index = len(frames)
            frame_index[label] = index
            frames.append({"name": label})
        return index

    events: List[Dict[str, object]] = []

    def emit(node: CallNode, start: float) -> float:
        index = frame(node.name)
        events.append({"type": "O", "frame": index, "at": start})
        cursor = start
        for child in node.children.values():
            cursor = emit(child, cursor)
        # self time follows the children; clamp for float re-association
        end = max(cursor, start + _axis_total(node, axis))
        events.append({"type": "C", "frame": index, "at": end})
        return end

    cursor = 0.0
    for child in profile.root.children.values():
        cursor = emit(child, cursor)

    samples: List[List[int]] = []
    weights: List[float] = []
    for row in profile.components:
        value: Optional[float] = (
            row.simulated_seconds if axis == "simulated" else row.wall_seconds
        )
        if value is None:
            continue
        samples.append([frame(f"component: {row.component}")])
        weights.append(value)

    document = {
        "$schema": SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro-profiler",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": f"{profile.operation} spans ({axis})",
                "unit": "seconds",
                "startValue": 0,
                "endValue": cursor,
                "events": events,
            },
            {
                "type": "sampled",
                "name": f"{profile.operation} components ({axis})",
                "unit": "seconds",
                "startValue": 0,
                "endValue": sum(weights),
                "samples": samples,
                "weights": weights,
            },
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_profile_top(profile: CostProfile, limit: int = 20) -> str:
    """pstats-style summary: spans by cumulative simulated cost, then
    the component cost table (both axes side by side)."""
    lines = [
        f"PROFILE {profile.operation}",
        (
            f"window: simulated={profile.simulated_seconds:.6f}s"
            f" wall={profile.wall_seconds:.6f}s"
        ),
    ]
    if profile.spans_dropped:
        lines.append(
            f"warning: {profile.spans_dropped} span(s) evicted from the ring"
            " during the window; the tree under-reports"
        )
    # aggregate self time per span name across the merged tree
    self_sim: Dict[str, float] = {}
    self_wall: Dict[str, float] = {}

    def walk(node: CallNode) -> None:
        self_sim[node.name] = (
            self_sim.get(node.name, 0.0) + node.self_simulated_seconds
        )
        self_wall[node.name] = (
            self_wall.get(node.name, 0.0) + node.self_wall_seconds
        )
        for child in node.children.values():
            walk(child)

    for child in profile.root.children.values():
        walk(child)
    ranked = sorted(
        profile.span_totals.items(),
        key=lambda item: (-item[1]["simulated_seconds"], item[0]),
    )
    shown = ranked[:limit]
    lines.append(
        f"spans (by cumulative simulated cost, top {len(shown)}"
        f" of {len(ranked)}):"
    )
    header = (
        f"  {'span':<20} {'count':>6} {'cum sim':>12} {'self sim':>12}"
        f" {'cum wall':>12} {'self wall':>12}"
    )
    lines.append(header)
    for name, totals in shown:
        lines.append(
            f"  {name:<20} {totals['count']:>6}"
            f" {totals['simulated_seconds']:>12.6f}"
            f" {self_sim.get(name, 0.0):>12.6f}"
            f" {totals['wall_seconds']:>12.6f}"
            f" {self_wall.get(name, 0.0):>12.6f}"
        )
    lines.append("components:")
    lines.append(
        f"  {'component':<15} {'simulated':>12} {'wall':>12}  counts"
    )
    for row in profile.components:
        wall = f"{row.wall_seconds:.6f}" if row.wall_seconds is not None else "-"
        counts = " ".join(
            f"{key}={value}" for key, value in row.counts.items()
        )
        lines.append(
            f"  {row.component:<15} {row.simulated_seconds:>12.6f}"
            f" {wall:>12}  {counts}"
        )
    return "\n".join(lines)
