"""Block/buffer heatmap: which blocks the workload actually touches.

The paper's cost argument is physical — an access path is cheap or
expensive according to the *blocks* it drags through the buffer pool.
:class:`BlockHeatmap` sits inside :class:`~repro.storage.buffer.BufferPool`
and counts, per block number: page fetches, pool misses (fetches that hit
the device), and write-backs.  The report functions then join those counts
with the range table to answer the questions the paper raises:

* which blocks are hot (:func:`heatmap_report` ``blocks`` section, with
  each block classified as ``data`` — some range's tokens reside there —
  or ``index`` for B+-tree/overhead pages);
* which *ranges* are hot (``ranges`` section: per-range block lists and
  aggregate touch counts — the physical view of Table 2/3);
* is the partial index earning its keep (``partial_index`` section:
  probe outcomes, hit rate, and the estimated tokens a hit avoided
  re-scanning, following partial-index efficacy reporting à la
  Stonebraker).

The disabled twin :data:`NOOP_HEATMAP` keeps the buffer pool's hot path
at one attribute check when the heatmap is off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class BlockHeat:
    """Access counters for one block."""

    fetches: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def touches(self) -> int:
        return self.fetches + self.writes


class BlockHeatmap:
    """Per-block access counters recorded by the buffer pool."""

    enabled = True

    def __init__(self) -> None:
        self._blocks: Dict[int, BlockHeat] = {}

    def record_fetch(self, block_no: int, hit: bool) -> None:
        heat = self._blocks.get(block_no)
        if heat is None:
            heat = self._blocks[block_no] = BlockHeat()
        heat.fetches += 1
        if not hit:
            heat.misses += 1

    def record_write(self, block_no: int) -> None:
        heat = self._blocks.get(block_no)
        if heat is None:
            heat = self._blocks[block_no] = BlockHeat()
        heat.writes += 1

    def counts(self) -> Dict[int, BlockHeat]:
        return dict(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def clear(self) -> None:
        self._blocks.clear()


class NoopHeatmap:
    """Disabled heatmap: recording is a no-op, reports are empty."""

    __slots__ = ()
    enabled = False

    def record_fetch(self, block_no: int, hit: bool) -> None:
        pass

    def record_write(self, block_no: int) -> None:
        pass

    def counts(self) -> Dict[int, BlockHeat]:
        return {}

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        pass


NOOP_HEATMAP = NoopHeatmap()


def create_heatmap(enabled: bool):
    """The configured heatmap: live when enabled, shared no-op otherwise."""
    if not enabled:
        return NOOP_HEATMAP
    return BlockHeatmap()


# ------------------------------------------------------------------ reports --

def heatmap_report(store, top: int = 10) -> Dict[str, object]:
    """The full heatmap report for ``store`` as a JSON-ready dict."""
    from repro.obs.schema import SCHEMA_VERSION

    counts = store.heatmap.counts()
    blocks = _block_rows(store, counts, top)
    ranges = _range_rows(store, counts, top)
    return {
        "schema_version": SCHEMA_VERSION,
        "blocks_touched": len(counts),
        "blocks": blocks,
        "ranges": ranges,
        "partial_index": _partial_efficacy(store),
    }


def heatmap_json(store, top: int = 10) -> str:
    return json.dumps(heatmap_report(store, top=top), indent=2, sort_keys=True)


def render_heatmap(store, top: int = 10) -> str:
    """Human-readable heatmap report (the CLI's ``heatmap`` output)."""
    report = heatmap_report(store, top=top)
    lines: List[str] = []
    lines.append(f"block heatmap ({report['blocks_touched']} blocks touched)")
    lines.append("")
    lines.append(f"hottest blocks (top {top})")
    lines.append("  block  kind   fetches  misses  writes  ranges")
    for row in report["blocks"]:
        resident = ",".join(str(r) for r in row["ranges"]) or "-"
        lines.append(
            f"  {row['block']:>5}  {row['kind']:<5}  {row['fetches']:>7}"
            f"  {row['misses']:>6}  {row['writes']:>6}  {resident}"
        )
    if not report["blocks"]:
        lines.append("  (no block accesses recorded)")
    lines.append("")
    lines.append(f"hottest ranges (top {top})")
    lines.append("  range  interval         blocks  fetches  misses  writes")
    for row in report["ranges"]:
        interval = (
            f"[{row['start_id']}..{row['end_id']}]"
            if row["start_id"] is not None
            else "(empty)"
        )
        lines.append(
            f"  {row['range_id']:>5}  {interval:<15}  {row['blocks']:>6}"
            f"  {row['fetches']:>7}  {row['misses']:>6}  {row['writes']:>6}"
        )
    if not report["ranges"]:
        lines.append("  (no ranges touched)")
    partial = report["partial_index"]
    lines.append("")
    lines.append("partial-index efficacy")
    if partial is None:
        lines.append("  (policy maintains no partial index)")
    else:
        lines.append(
            f"  probes={partial['probes']}  hits={partial['hits']}"
            f"  misses={partial['misses']}  stale={partial['stale_hits']}"
            f"  hit_rate={partial['hit_rate']:.2f}"
        )
        lines.append(
            f"  entries={partial['entries']}  inserts={partial['inserts']}"
            f"  evictions={partial['evictions']}"
            f"  est_tokens_avoided={partial['est_tokens_avoided']:.0f}"
        )
    return "\n".join(lines)


def _block_rows(store, counts, top: int) -> List[Dict[str, object]]:
    rows = []
    for block_no, heat in counts.items():
        residents = sorted(store.ranges.residents(block_no))
        rows.append(
            {
                "block": block_no,
                "kind": "data" if residents else "index",
                "fetches": heat.fetches,
                "misses": heat.misses,
                "writes": heat.writes,
                "ranges": residents,
            }
        )
    rows.sort(key=lambda r: (-(r["fetches"] + r["writes"]), r["block"]))
    return rows[:top]


def _range_rows(store, counts, top: int) -> List[Dict[str, object]]:
    rows = []
    for meta in store.ranges.in_order():
        blocks = store.ranges.blocks_of(meta.range_id)
        fetches = sum(counts[b].fetches for b in blocks if b in counts)
        misses = sum(counts[b].misses for b in blocks if b in counts)
        writes = sum(counts[b].writes for b in blocks if b in counts)
        if fetches == 0 and writes == 0:
            continue
        rows.append(
            {
                "range_id": meta.range_id,
                "start_id": meta.start_id,
                "end_id": meta.end_id,
                "tokens": meta.token_count,
                "blocks": len(blocks),
                "fetches": fetches,
                "misses": misses,
                "writes": writes,
            }
        )
    rows.sort(key=lambda r: (-(r["fetches"] + r["writes"]), r["range_id"]))
    return rows[:top]


def _partial_efficacy(store) -> Optional[Dict[str, object]]:
    if store.partial_index is None:
        return None
    stats = store.partial_index.stats
    locator = store.locator.stats
    # a hit skipped one range scan; estimate its savings with the mean
    # observed scan length
    avg_scan = (
        locator.tokens_scanned / locator.scan_resolutions
        if locator.scan_resolutions
        else 0.0
    )
    return {
        "probes": stats.probes,
        "hits": stats.hits,
        "misses": stats.misses,
        "stale_hits": stats.stale_hits,
        "hit_rate": stats.hit_rate,
        "inserts": stats.inserts,
        "evictions": stats.evictions,
        "entries": len(store.partial_index),
        "est_tokens_avoided": stats.hits * avg_scan,
    }
