"""EXPLAIN: per-operation access-path attribution.

The paper's Table 5 shows that *which access path an operation takes* —
eager full-index probe, coarse range scan with id regeneration, or lazy
partial-index hit — dominates its cost.  This module answers that
question for one concrete operation, in the spirit of a relational
``EXPLAIN ANALYZE``:

    with ExplainRecorder(store, "read", ["42"]) as recorder:
        store.read(42)
    print(recorder.report.render())

:class:`ExplainRecorder` brackets the operation: it snapshots every
always-on statistics object before, runs the work, and assembles an
:class:`ExplainReport` from the deltas, the tracing spans opened inside
the window, and the structured events (:mod:`repro.obs.events`) the
components emitted.  Everything comes from instrumentation that already
exists — the recorder adds no probes of its own to the hot path.

:func:`explain_operation` maps the CLI's operation names onto store
calls (the ``repro ... explain <op>`` subcommand).  Note that the xpath
operation serializes every match, exactly like the plain ``xpath``
subcommand: the per-node reads are where the partial-index-vs-scan
distinction shows up, since the evaluator's view build is always one
sequential pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import InvalidOperationError
from repro.obs.clock import perf_seconds
from repro.obs.events import Event

#: store operations the CLI can run in explain mode
EXPLAINABLE_OPS = (
    "read",
    "xpath",
    "insert-last",
    "insert-before",
    "insert-after",
    "delete",
    "replace",
)


@dataclass
class ExplainReport:
    """Everything one operation did, attributed to its access paths."""

    operation: str
    argv: List[str]
    op_id: int
    #: "partial-hit" | "full-probe" | "range-scan" | "none" | "mixed(...)"
    access_path: str
    #: resolutions by path: {"partial": n, "full": n, "scan": n}
    resolutions: Dict[str, int]
    #: partial-index probe outcomes in the window (None = no partial index)
    partial: Optional[Dict[str, int]]
    #: range-index floor lookups performed
    range_lookups: int
    #: ranges scanned for id regeneration (from locator scan events)
    ranges_scanned: List[Dict[str, object]]
    #: tokens replayed by locate scans (id regeneration cost, §4.3)
    tokens_replayed: int
    #: tokens decoded for serialization
    tokens_emitted: int
    #: B+-tree entries decoded (range + full index)
    index_entries_loaded: int
    blocks_read: int
    blocks_written: int
    buffer_hits: int
    buffer_misses: int
    wal_appends: int
    wal_fsyncs: int
    #: wall seconds spent inside wal.append spans
    wal_seconds: float
    #: wall seconds spent inside lock.wait spans
    lock_wait_seconds: float
    simulated_seconds: float
    wall_seconds: float
    #: per-span-name cost breakdown within the window (nested spans each
    #: count their own totals)
    stages: List[Dict[str, object]] = field(default_factory=list)
    #: fault-injection and recovery events in the window (source "fault"
    #: from :mod:`repro.storage.faults`, "recovery" from WAL replay) —
    #: how EXPLAIN attributes post-crash work to torn writes and replay
    faults: List[Dict[str, object]] = field(default_factory=list)
    #: structured events emitted during the window
    events: List[Event] = field(default_factory=list)
    #: the operation's rendered output (what the plain command prints)
    result: Optional[str] = None

    def to_dict(self, include_events: bool = True) -> Dict[str, object]:
        """JSON-ready dict.  ``include_events=False`` replaces the event
        list with its length (for compact attachments, e.g. bench rows)."""
        from repro.obs.schema import SCHEMA_VERSION

        out: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "operation": self.operation,
            "argv": self.argv,
            "op_id": self.op_id,
            "access_path": self.access_path,
            "resolutions": self.resolutions,
            "range_lookups": self.range_lookups,
            "ranges_scanned": self.ranges_scanned,
            "tokens_replayed": self.tokens_replayed,
            "tokens_emitted": self.tokens_emitted,
            "index_entries_loaded": self.index_entries_loaded,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "wal_appends": self.wal_appends,
            "wal_fsyncs": self.wal_fsyncs,
            "wal_seconds": self.wal_seconds,
            "lock_wait_seconds": self.lock_wait_seconds,
            "simulated_seconds": self.simulated_seconds,
            "wall_seconds": self.wall_seconds,
            "stages": self.stages,
            "faults": self.faults,
        }
        if include_events:
            out["events"] = [event.to_dict() for event in self.events]
        else:
            out["events"] = len(self.events)
        if self.partial is not None:
            out["partial"] = self.partial
        return out

    def render(self) -> str:
        """Human-readable report (the CLI's ``explain`` output)."""
        res = self.resolutions
        lines = [
            f"EXPLAIN {self.operation} {' '.join(self.argv)}".rstrip(),
            (
                f"access path: {self.access_path}"
                f" (partial={res['partial']} full={res['full']} scan={res['scan']})"
            ),
        ]
        if self.partial is not None:
            p = self.partial
            lines.append(
                f"partial index: probes={p['probes']} hits={p['hits']}"
                f" misses={p['misses']} stale={p['stale_hits']}"
            )
        for scan in self.ranges_scanned:
            interval = (
                f"[{scan['start_id']}..{scan['end_id']}]"
                if scan.get("start_id") is not None
                else "(empty)"
            )
            lines.append(
                f"scanned range {scan['range_id']} {interval}"
                f" tokens={scan['tokens']} for node {scan['node_id']}"
            )
        lines.append(
            f"tokens: replayed={self.tokens_replayed}"
            f" emitted={self.tokens_emitted}"
            f"  index entries loaded={self.index_entries_loaded}"
        )
        lines.append(
            f"blocks: read={self.blocks_read} written={self.blocks_written}"
            f"  buffer: hits={self.buffer_hits} misses={self.buffer_misses}"
        )
        lines.append(
            f"wal: appends={self.wal_appends} fsyncs={self.wal_fsyncs}"
            f" seconds={self.wal_seconds:.6f}"
            f"  lock wait={self.lock_wait_seconds:.6f}s"
        )
        for fault in self.faults:
            detail = " ".join(
                f"{key}={value}"
                for key, value in fault.items()
                if key not in ("source", "kind")
            )
            lines.append(f"{fault['source']}: {fault['kind']} {detail}".rstrip())
        lines.append(
            f"cost: simulated={self.simulated_seconds:.6f}s"
            f" wall={self.wall_seconds:.6f}s"
        )
        if self.stages:
            lines.append("stages (wall-heaviest first):")
            for stage in self.stages:
                lines.append(
                    f"  {stage['stage']:<20} count={stage['count']:>4}"
                    f" wall={stage['wall_seconds']:.6f}s"
                    f" simulated={stage['simulated_seconds']:.6f}s"
                )
        lines.append(f"events: {len(self.events)} (--json for full detail)")
        return "\n".join(lines)


class ExplainRecorder:
    """Context manager assembling an :class:`ExplainReport` around one
    store operation.  The report is available as ``.report`` after exit."""

    def __init__(self, store, operation: str, argv: Sequence[str] = ()) -> None:
        self.store = store
        self.operation = operation
        self.argv = [str(a) for a in argv]
        self.report: Optional[ExplainReport] = None

    def __enter__(self) -> "ExplainRecorder":
        store = self.store
        locator = store.locator.stats
        self._locator_before = (
            locator.partial_resolutions,
            locator.full_resolutions,
            locator.scan_resolutions,
            locator.tokens_scanned,
        )
        if store.partial_index is not None:
            partial = store.partial_index.stats
            self._partial_before = (
                partial.hits,
                partial.misses,
                partial.stale_hits,
            )
        else:
            self._partial_before = None
        self._range_lookups_before = store.range_index.lookups
        disk = getattr(store.device, "stats", None)
        self._disk_before = disk.snapshot() if disk is not None else None
        buffer = store.pool.stats
        self._buffer_before = (buffer.hits, buffer.misses)
        self._wal_before = (store.wal.appends, store.wal.fsyncs)
        self._simulated_before = store.simulated_seconds
        self._emitted_before = store.tokens_emitted
        self._entries_before = store.index_entries_loaded
        self._event_seq_before = store.event_log.next_seq
        self._span_seq_before = store.telemetry.tracer.next_seq
        self._op_id = store.event_log.begin_op(self.operation)
        self._wall_start = perf_seconds()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall_seconds = perf_seconds() - self._wall_start
        store = self.store
        store.event_log.end_op()
        if exc_type is not None:
            return  # propagate; no report for a failed operation
        locator = store.locator.stats
        partial_delta = locator.partial_resolutions - self._locator_before[0]
        full_delta = locator.full_resolutions - self._locator_before[1]
        scan_delta = locator.scan_resolutions - self._locator_before[2]
        resolutions = {
            "partial": partial_delta,
            "full": full_delta,
            "scan": scan_delta,
        }
        partial: Optional[Dict[str, int]] = None
        if self._partial_before is not None:
            stats = store.partial_index.stats
            hits = stats.hits - self._partial_before[0]
            misses = stats.misses - self._partial_before[1]
            stale = stats.stale_hits - self._partial_before[2]
            partial = {
                "probes": hits + misses + stale,
                "hits": hits,
                "misses": misses,
                "stale_hits": stale,
            }
        disk = getattr(store.device, "stats", None)
        if disk is not None and self._disk_before is not None:
            disk_delta = disk.delta(self._disk_before)
            blocks_read, blocks_written = disk_delta.reads, disk_delta.writes
        else:
            blocks_read = blocks_written = 0
        buffer = store.pool.stats
        spans = [
            event
            for event in store.telemetry.events()
            if event.seq >= self._span_seq_before
        ]
        events = store.event_log.events(
            since=self._event_seq_before, op_id=self._op_id
        )
        self.report = ExplainReport(
            operation=self.operation,
            argv=self.argv,
            op_id=self._op_id,
            access_path=_classify(partial_delta, full_delta, scan_delta),
            resolutions=resolutions,
            partial=partial,
            range_lookups=store.range_index.lookups - self._range_lookups_before,
            ranges_scanned=[
                dict(event.fields)
                for event in events
                if event.source == "locator" and event.kind == "scan"
            ],
            tokens_replayed=locator.tokens_scanned - self._locator_before[3],
            tokens_emitted=store.tokens_emitted - self._emitted_before,
            index_entries_loaded=store.index_entries_loaded - self._entries_before,
            blocks_read=blocks_read,
            blocks_written=blocks_written,
            buffer_hits=buffer.hits - self._buffer_before[0],
            buffer_misses=buffer.misses - self._buffer_before[1],
            wal_appends=store.wal.appends - self._wal_before[0],
            wal_fsyncs=store.wal.fsyncs - self._wal_before[1],
            wal_seconds=sum(
                s.wall_seconds for s in spans if s.name == "wal.append"
            ),
            lock_wait_seconds=sum(
                s.wall_seconds for s in spans if s.name == "lock.wait"
            ),
            simulated_seconds=store.simulated_seconds - self._simulated_before,
            wall_seconds=wall_seconds,
            stages=_stage_breakdown(spans),
            faults=[
                {"source": event.source, "kind": event.kind, **event.fields}
                for event in events
                if event.source in ("fault", "recovery")
            ],
            events=events,
        )


def _classify(partial: int, full: int, scan: int) -> str:
    paths = []
    if partial:
        paths.append("partial-hit")
    if full:
        paths.append("full-probe")
    if scan:
        paths.append("range-scan")
    if not paths:
        return "none"
    if len(paths) == 1:
        return paths[0]
    return "mixed(" + "+".join(paths) + ")"


def _stage_breakdown(spans) -> List[Dict[str, object]]:
    stages: Dict[str, Dict[str, object]] = {}
    for span in spans:
        stage = stages.setdefault(
            span.name,
            {"stage": span.name, "count": 0, "wall_seconds": 0.0,
             "simulated_seconds": 0.0},
        )
        stage["count"] += 1
        stage["wall_seconds"] += span.wall_seconds
        stage["simulated_seconds"] += span.simulated_seconds
    return sorted(stages.values(), key=lambda s: -s["wall_seconds"])


# ------------------------------------------------------- operation dispatch --

def run_operation(store, operation: str, argv: Sequence[str]) -> str:
    """Execute one CLI-named operation against ``store`` and return the
    text the plain command would print."""
    argv = list(argv)
    if operation == "read":
        node_id = _int_arg(argv, 0, optional=True)
        return store.read(node_id)
    if operation == "xpath":
        expression = _str_arg(argv, 0, "expression")
        results = store.xpath(expression)
        lines = [f"{len(results)} match(es)"]
        lines.extend(f"#{node.node_id}\t{node.xml()}" for node in results)
        return "\n".join(lines)
    if operation == "insert-last":
        first = store.insert_into_last(_int_arg(argv, 0), _str_arg(argv, 1, "xml"))
        return f"inserted; first node id = {first}"
    if operation == "insert-before":
        first = store.insert_before(_int_arg(argv, 0), _str_arg(argv, 1, "xml"))
        return f"inserted; first node id = {first}"
    if operation == "insert-after":
        first = store.insert_after(_int_arg(argv, 0), _str_arg(argv, 1, "xml"))
        return f"inserted; first node id = {first}"
    if operation == "delete":
        store.delete_node(_int_arg(argv, 0))
        return "deleted"
    if operation == "replace":
        first = store.replace_node(_int_arg(argv, 0), _str_arg(argv, 1, "xml"))
        return f"replaced; new node id = {first}"
    raise InvalidOperationError(
        f"cannot explain {operation!r}; supported: {', '.join(EXPLAINABLE_OPS)}"
    )


def explain_operation(store, operation: str, argv: Sequence[str]) -> ExplainReport:
    """Run one operation in explain mode and return its report."""
    recorder = ExplainRecorder(store, operation, argv)
    with recorder:
        result = run_operation(store, operation, argv)
    assert recorder.report is not None
    recorder.report.result = result
    return recorder.report


def _int_arg(argv: List[str], index: int, optional: bool = False) -> Optional[int]:
    if index >= len(argv):
        if optional:
            return None
        raise InvalidOperationError("missing node-id argument")
    try:
        return int(argv[index])
    except ValueError:
        raise InvalidOperationError(
            f"expected an integer node id, got {argv[index]!r}"
        ) from None


def _str_arg(argv: List[str], index: int, what: str) -> str:
    if index >= len(argv):
        raise InvalidOperationError(f"missing {what} argument")
    return argv[index]
