"""Workload fingerprints and drift detection over history windows.

The paper's adaptivity argument (§2.1, §9) is that the right storage
configuration is a function of the *workload*, and workloads change.
This module gives that argument a measurable form: a window of
:class:`~repro.obs.history.HistorySnapshot` rows compresses into a
:class:`WorkloadFingerprint` — a handful of bounded, deterministic
components describing the read/write mix, which access paths answered
lookups, how deep scans ran, buffer locality and block-heat skew — and
:func:`drift_score` compares two fingerprints into one number in
``[0, 1]``: 0 means the same workload, 1 means every component moved as
far as it can.

Every component is a ratio of *deterministic counters* (the simulated
side of the telemetry), so the same operation stream always produces
the same fingerprints and the same drift scores — which is what lets CI
diff two advisor runs byte-for-byte.

Unbounded rates (scan depth, WAL pressure) are squashed into ``[0, 1)``
with ``x / (x + scale)`` before comparison, the standard trick for
folding a long-tailed magnitude into a bounded similarity component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.obs.history import HistorySnapshot

#: Squash scale for average scan depth (tokens per scan resolution): a
#: 256-token average scan maps to 0.5.
SCAN_DEPTH_SCALE = 256.0

#: Squash scale for WAL appends per operation.
WAL_RATE_SCALE = 2.0

# flat sample keys (see repro.obs.bridge / repro.core.stats)
K_READS = 'repro_store_operations_total{op="read"}'
K_NODE_READS = 'repro_store_operations_total{op="node_read"}'
K_LOADS = 'repro_store_operations_total{op="load"}'
K_INSERTS = 'repro_store_operations_total{op="insert"}'
K_DELETES = 'repro_store_operations_total{op="delete"}'
K_REPLACES = 'repro_store_operations_total{op="replace"}'
K_PATH_PARTIAL = 'repro_locator_resolutions_total{path="partial"}'
K_PATH_FULL = 'repro_locator_resolutions_total{path="full"}'
K_PATH_SCAN = 'repro_locator_resolutions_total{path="scan"}'
K_TOKENS_SCANNED = "repro_locator_tokens_scanned_total"
K_BUFFER_HITS = 'repro_buffer_accesses_total{result="hit"}'
K_BUFFER_MISSES = 'repro_buffer_accesses_total{result="miss"}'
K_WAL_APPENDS = "repro_wal_appends_total"


def _squash(value: float, scale: float) -> float:
    return value / (value + scale) if value > 0 else 0.0


@dataclass
class WorkloadFingerprint:
    """Bounded workload descriptors for one snapshot window."""

    #: operations the window covers (reads + updates)
    operations: float
    #: fraction of operations that were reads
    read_fraction: float
    #: lookup resolutions answered by each path, as fractions
    path_partial: float
    path_full: float
    path_scan: float
    #: average tokens scanned per scan resolution, squashed to [0, 1)
    scan_depth: float
    #: buffer-pool hit fraction within the window
    locality: float
    #: block-heat skew: share of touches on the hottest decile (latest
    #: snapshot's heat summary; 0 when the heatmap is off)
    heat_concentration: float
    #: WAL appends per operation, squashed to [0, 1)
    write_pressure: float

    #: components drift is computed over (all bounded to [0, 1])
    COMPONENTS = (
        "read_fraction",
        "path_partial",
        "path_full",
        "path_scan",
        "scan_depth",
        "locality",
        "heat_concentration",
        "write_pressure",
    )

    def to_dict(self) -> Dict[str, float]:
        out = {"operations": self.operations}
        for name in self.COMPONENTS:
            out[name] = getattr(self, name)
        return out


def fingerprint_window(
    snapshots: Sequence[HistorySnapshot],
) -> Optional[WorkloadFingerprint]:
    """Fold a window of snapshots into one fingerprint; None for an
    empty window (no snapshots, or no operations in them)."""
    if not snapshots:
        return None

    def total(key: str) -> float:
        return sum(snap.delta(key) for snap in snapshots)

    reads = total(K_READS) + total(K_NODE_READS)
    updates = (
        total(K_LOADS) + total(K_INSERTS) + total(K_DELETES) + total(K_REPLACES)
    )
    operations = reads + updates
    if operations <= 0:
        return None
    resolutions = total(K_PATH_PARTIAL) + total(K_PATH_FULL) + total(K_PATH_SCAN)
    scans = total(K_PATH_SCAN)
    hits = total(K_BUFFER_HITS)
    misses = total(K_BUFFER_MISSES)
    accesses = hits + misses
    heat = 0.0
    for snap in reversed(snapshots):
        if snap.heatmap is not None:
            heat = float(snap.heatmap.get("top_decile_share", 0.0))
            break
    return WorkloadFingerprint(
        operations=operations,
        read_fraction=reads / operations,
        path_partial=total(K_PATH_PARTIAL) / resolutions if resolutions else 0.0,
        path_full=total(K_PATH_FULL) / resolutions if resolutions else 0.0,
        path_scan=scans / resolutions if resolutions else 0.0,
        scan_depth=_squash(
            total(K_TOKENS_SCANNED) / scans if scans else 0.0, SCAN_DEPTH_SCALE
        ),
        locality=hits / accesses if accesses else 0.0,
        heat_concentration=heat,
        write_pressure=_squash(
            total(K_WAL_APPENDS) / operations, WAL_RATE_SCALE
        ),
    )


def drift_score(
    earlier: Optional[WorkloadFingerprint],
    later: Optional[WorkloadFingerprint],
) -> float:
    """Mean absolute movement across the bounded components, in [0, 1].
    A missing fingerprint (idle window) scores 0 against anything —
    absence of evidence is not drift."""
    if earlier is None or later is None:
        return 0.0
    components = WorkloadFingerprint.COMPONENTS
    total = sum(
        abs(getattr(later, name) - getattr(earlier, name))
        for name in components
    )
    return total / len(components)


def drift_series(
    snapshots: Sequence[HistorySnapshot], window: int = 4
) -> List[Dict[str, object]]:
    """Rolling drift over a snapshot timeline: each point compares the
    window ending at snapshot ``i`` against the window just before it.
    Returns ``[{seq, drift, fingerprint}, ...]`` (deterministic)."""
    if window < 1:
        raise ValueError("window must be at least 1")
    points: List[Dict[str, object]] = []
    for index in range(window, len(snapshots)):
        earlier = fingerprint_window(
            snapshots[max(0, index - 2 * window) : index - window + 1]
        )
        later_window = snapshots[index - window + 1 : index + 1]
        later = fingerprint_window(later_window)
        points.append(
            {
                "seq": snapshots[index].seq,
                "drift": drift_score(earlier, later),
                "fingerprint": later.to_dict() if later is not None else None,
            }
        )
    return points
