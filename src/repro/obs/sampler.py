"""Sampling wall-clock profiler: where the *interpreter* spends time.

The deterministic profiler (:mod:`repro.obs.profiler`) attributes cost
to spans — but spans only exist where someone put one.  This sampler
answers the complementary question with no instrumentation at all: a
daemon thread wakes every ``interval`` seconds, grabs the target
thread's current Python stack via ``sys._current_frames()``, and counts
it.  Output is the usual collapsed-stack / speedscope material, with
sample *counts* as weights (wall seconds ~= count x interval).

This module is the one sanctioned wall-clock consumer outside
:mod:`repro.obs.clock` — it is explicitly allowlisted in
``ALLOWED_CLOCK_MODULES`` (sampling needs ``threading.Event.wait``
timeouts and monotonic timestamps of its own), and the clock-discipline
lint still fails any *other* module that touches ``time`` directly.

Sampling is statistical: two runs never produce identical profiles, so
none of the byte-identity guarantees of the deterministic profiler apply
here.  Use it to find hot interpreter code; use the cost profiler to
reason about the paper's simulated numbers.
"""

from __future__ import annotations

import json
import sys
import threading
# Wall-clock imports are sanctioned here and nowhere else outside
# repro.obs.clock: see ALLOWED_CLOCK_MODULES.
import time as _time
from typing import Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.profile_export import SPEEDSCOPE_SCHEMA

DEFAULT_SAMPLE_INTERVAL = 0.005

Stack = Tuple[str, ...]


def _format_frame(frame) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class StackSampler:
    """Samples one thread's Python stack at a fixed wall-clock interval.

    Usage::

        with StackSampler(interval=0.002) as sampler:
            run_workload()
        print(sampler.collapsed())

    The sampler targets the thread that calls :meth:`start` (usually via
    ``__enter__``).  Frames below the target's outermost frame at sample
    time are recorded outermost-first, so collapsed output reads like a
    flamegraph stack.
    """

    def __init__(self, interval: float = DEFAULT_SAMPLE_INTERVAL) -> None:
        if interval <= 0:
            raise ObservabilityError(
                f"sampler interval must be positive, got {interval}"
            )
        self.interval = interval
        self.samples: Dict[Stack, int] = {}
        self.total_samples = 0
        #: wall seconds the sampler actually ran (start to stop)
        self.elapsed_seconds = 0.0
        self._target_ident: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "StackSampler":
        if self._thread is not None:
            raise ObservabilityError("sampler already started")
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._started_at = _time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None
        self.elapsed_seconds = _time.perf_counter() - self._started_at

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_ident)
            if frame is None:
                continue
            stack: List[str] = []
            while frame is not None:
                stack.append(_format_frame(frame))
                frame = frame.f_back
            stack.reverse()
            key = tuple(stack)
            self.samples[key] = self.samples.get(key, 0) + 1
            self.total_samples += 1

    # -- export -------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text (``a;b;c <count>``), stacks sorted so the
        output is stable for a given sample multiset."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.samples.items())
        ]
        return "\n".join(lines) + "\n" if lines else ""

    def speedscope_json(self, name: str = "repro sampled") -> str:
        """The samples as a speedscope "sampled" profile (weights are
        seconds: sample count x interval)."""
        frames: List[Dict[str, str]] = []
        frame_index: Dict[str, int] = {}

        def frame(label: str) -> int:
            index = frame_index.get(label)
            if index is None:
                index = len(frames)
                frame_index[label] = index
                frames.append({"name": label})
            return index

        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, count in sorted(self.samples.items()):
            samples.append([frame(label) for label in stack])
            weights.append(count * self.interval)
        document = {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "exporter": "repro-sampler",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": sum(weights),
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }
        return json.dumps(document, indent=2, sort_keys=True)
