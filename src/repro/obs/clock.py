"""The observability clock: the only wall-clock source in the library.

The store runs two clocks side by side: the *simulated* disk clock (see
:mod:`repro.storage.disk`), which the benchmarks report, and the real
wall clock, which telemetry records for span durations.  Mixing ad-hoc
``time.*`` calls into store modules makes it too easy to contaminate the
simulated numbers with wall time (or to diverge between platforms), so
every module under :mod:`repro` reads the wall clock through this module
— a rule enforced by :func:`check_clock_discipline`, which runs in CI
and in the test suite.

Timestamps are *monotonic* (seconds relative to an arbitrary process
origin, via ``time.perf_counter``).  Telemetry needs durations and
ordering, not civil time, and a monotonic base can never run backwards
under NTP adjustments.
"""

from __future__ import annotations

import re
from typing import List

import time as _time

#: Modules (relative to the scanned root) allowed to touch ``time``.
#: The stack sampler is the one sanctioned wall-clock consumer besides
#: this module: sampling *is* wall-clock work (interval waits and
#: elapsed-time accounting), and routing it through perf_seconds() would
#: only obscure that.  Anything else that imports ``time`` still fails
#: the lint.
ALLOWED_CLOCK_MODULES = frozenset(
    {
        ("obs", "clock.py"),
        ("obs", "sampler.py"),
    }
)

_FORBIDDEN = re.compile(
    r"^\s*(?:import\s+time\b|from\s+time\s+import\b)|\btime\.time\s*\(",
    re.MULTILINE,
)


def perf_seconds() -> float:
    """Monotonic high-resolution seconds (process-relative origin)."""
    return _time.perf_counter()


def sleep(seconds: float) -> None:
    """Block for ``seconds`` of wall time (the buffer pool's bounded
    re-read backoff is the one store-side consumer).  Lives here so the
    clock-discipline lint keeps every wall-clock touchpoint in one
    module."""
    _time.sleep(seconds)


def check_clock_discipline(src_root: str) -> List[str]:
    """Scan ``src_root`` (the ``repro`` package directory) for modules
    that import ``time`` directly instead of going through this module.

    Returns a list of human-readable violations (empty = clean).
    """
    import os

    violations: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, src_root)
            parts = tuple(relative.split(os.sep))
            if parts in ALLOWED_CLOCK_MODULES:
                continue
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            match = _FORBIDDEN.search(source)
            if match is not None:
                line = source.count("\n", 0, match.start()) + 1
                violations.append(
                    f"{relative}:{line}: direct wall-clock access "
                    f"({match.group(0).strip()!r}); use repro.obs.clock"
                )
    return sorted(violations)
