"""Evidence-backed tuning advisor: from history to recommendations.

The paper leaves adaptivity at "the store should observe its workload
and adjust" (§2.1, §9).  This module is the deliberate, explainable half
of that loop: given a store's workload history it emits
:class:`Recommendation` rows — split/merge range granularity, resize the
partial index, grow the buffer pool, run a compaction — where every row
carries

* the **evidence**: the specific history counters (and the snapshot
  window they came from) that triggered the rule, and
* a **what-if estimate**: projected simulated cost under the recommended
  setting, priced with the *same* cost model the benchmarks run on
  (:class:`~repro.storage.disk.DiskCostModel` plus the per-token CPU
  charges), so a recommendation is an auditable claim, not a hunch.

Rules are deliberately simple threshold checks over deterministic
counters: two runs of the same operation stream produce byte-identical
reports (the CI gate diffs exactly that).  The advisor is **vacuous by
design** when it lacks evidence — an empty store, a legacy store opened
without history, or fewer than :data:`MIN_OPERATIONS` observed
operations all yield a report with zero recommendations and a stated
reason, never a crash and never a guess.

:func:`apply_recommendations` turns a report back into a
:class:`~repro.core.config.StoreConfig` (the A/B benchmark applies it
and must beat the default on the skewed workload — the acceptance test
of this subsystem).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import fingerprint as fp
from repro.obs.fingerprint import (
    WorkloadFingerprint,
    drift_series,
    fingerprint_window,
)
from repro.obs.history import HistorySnapshot

#: Below this many observed operations the advisor refuses to advise.
MIN_OPERATIONS = 32

#: split-ranges rule: minimum scan resolutions and average scan depth.
SPLIT_MIN_SCANS = 16
SPLIT_MIN_AVG_DEPTH = 256.0
SPLIT_TARGET_MIN = 64
SPLIT_TARGET_MAX = 4096

#: partial-index grow rule: eviction floor (absolute and vs. inserts).
PARTIAL_GROW_MIN_EVICTIONS = 16
PARTIAL_GROW_EVICTION_FRACTION = 0.25

#: partial-index shrink rule: hit-rate ceiling and entry floor.
PARTIAL_SHRINK_MAX_HIT_RATE = 0.02
PARTIAL_SHRINK_MIN_ENTRIES = 256

#: buffer-pool rule: miss-rate floor.
BUFFER_MIN_MISS_RATE = 0.2

#: compaction rule: fragmentation floors.
COMPACT_MIN_RANGES = 32
COMPACT_MAX_AVG_TOKENS = 128.0
COMPACT_MIN_READ_FRACTION = 0.5


def _pow2_at_least(value: float) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


def _pow2_at_most(value: float) -> int:
    power = 1
    while power * 2 <= value:
        power *= 2
    return power


@dataclass
class Evidence:
    """One counter reading that supports a recommendation."""

    metric: str
    value: float
    #: [first_seq, last_seq] of the history window the value covers
    window: Tuple[int, int]
    note: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "value": self.value,
            "window": list(self.window),
            "note": self.note,
        }


@dataclass
class WhatIf:
    """Simulated-cost estimate for one recommendation, priced by the
    store's own cost model."""

    description: str
    current_simulated_seconds: float
    projected_simulated_seconds: float

    @property
    def saving_simulated_seconds(self) -> float:
        return self.current_simulated_seconds - self.projected_simulated_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "description": self.description,
            "current_simulated_seconds": self.current_simulated_seconds,
            "projected_simulated_seconds": self.projected_simulated_seconds,
            "saving_simulated_seconds": self.saving_simulated_seconds,
        }


@dataclass
class Recommendation:
    """One advised change, with its evidence and what-if estimate."""

    rule: str
    #: StoreConfig field to change, or ``maintenance:<op>`` for actions
    knob: str
    current: object
    recommended: object
    summary: str
    evidence: List[Evidence] = field(default_factory=list)
    what_if: Optional[WhatIf] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "knob": self.knob,
            "current": self.current,
            "recommended": self.recommended,
            "summary": self.summary,
            "evidence": [item.to_dict() for item in self.evidence],
            "what_if": self.what_if.to_dict() if self.what_if else None,
        }


@dataclass
class AdvisorReport:
    """The advisor's full output for one store."""

    #: None when recommendations were produced; otherwise why not
    vacuous_reason: Optional[str]
    #: operations covered by the evidence window
    operations: float
    #: [first_seq, last_seq] of the history window, or None
    window: Optional[Tuple[int, int]]
    fingerprint: Optional[Dict[str, float]]
    #: rolling drift points (see :func:`repro.obs.fingerprint.drift_series`)
    drift: List[Dict[str, object]] = field(default_factory=list)
    recommendations: List[Recommendation] = field(default_factory=list)

    @property
    def vacuous(self) -> bool:
        return self.vacuous_reason is not None

    def to_dict(self) -> Dict[str, object]:
        from repro.obs.schema import SCHEMA_VERSION

        return {
            "schema_version": SCHEMA_VERSION,
            "vacuous": self.vacuous,
            "vacuous_reason": self.vacuous_reason,
            "operations": self.operations,
            "window": list(self.window) if self.window else None,
            "fingerprint": self.fingerprint,
            "drift": self.drift,
            "recommendations": [rec.to_dict() for rec in self.recommendations],
        }

    def render(self) -> str:
        lines: List[str] = []
        if self.vacuous:
            lines.append(f"advisor: no recommendations ({self.vacuous_reason})")
            return "\n".join(lines)
        lines.append(
            f"advisor: {len(self.recommendations)} recommendation(s) from "
            f"{self.operations:.0f} operations "
            f"(snapshots {self.window[0]}..{self.window[1]})"
        )
        if self.drift:
            latest = self.drift[-1]
            lines.append(f"  workload drift (latest window): {latest['drift']:.3f}")
        if not self.recommendations:
            lines.append("  configuration looks fit for the observed workload")
        for rec in self.recommendations:
            lines.append(f"  [{rec.rule}] {rec.summary}")
            lines.append(
                f"    {rec.knob}: {rec.current!r} -> {rec.recommended!r}"
            )
            for item in rec.evidence:
                note = f" ({item.note})" if item.note else ""
                lines.append(
                    f"    evidence: {item.metric}={item.value:g} over "
                    f"snapshots {item.window[0]}..{item.window[1]}{note}"
                )
            if rec.what_if is not None:
                lines.append(
                    f"    what-if: {rec.what_if.description}: "
                    f"{rec.what_if.current_simulated_seconds:.6f}s -> "
                    f"{rec.what_if.projected_simulated_seconds:.6f}s simulated "
                    f"({rec.what_if.saving_simulated_seconds:+.6f}s)"
                )
        return "\n".join(lines)


# ------------------------------------------------------------------- rules --


def _window_of(snapshots: Sequence[HistorySnapshot]) -> Tuple[int, int]:
    return (snapshots[0].seq, snapshots[-1].seq)


def _total(snapshots: Sequence[HistorySnapshot], key: str) -> float:
    return sum(snap.delta(key) for snap in snapshots)


def _total_tokens(store) -> int:
    return sum(meta.token_count for meta in store.ranges.in_order())


def _rule_split_ranges(
    store, snapshots: Sequence[HistorySnapshot], finger: WorkloadFingerprint
) -> Optional[Recommendation]:
    """Deep scans dominating lookups: cut range granularity (Ablation A —
    the paper's "few, coarse" vs "many, granular" axis)."""
    scans = _total(snapshots, fp.K_PATH_SCAN)
    tokens = _total(snapshots, fp.K_TOKENS_SCANNED)
    if scans < SPLIT_MIN_SCANS:
        return None
    avg_depth = tokens / scans
    if avg_depth < SPLIT_MIN_AVG_DEPTH:
        return None
    target = max(
        SPLIT_TARGET_MIN,
        min(SPLIT_TARGET_MAX, _pow2_at_most(avg_depth / 4)),
    )
    current = store.config.max_range_tokens
    if current is not None and current <= 2 * target:
        return None
    config = store.config
    # what-if: a scan inside a `target`-token range averages target/2
    # tokens, plus the extra index descent the finer ranges cost
    total_tokens = max(1, _total_tokens(store))
    projected_ranges = max(2, -(-total_tokens // target))
    extra_entries = max(1, projected_ranges.bit_length())
    current_cost = tokens * config.cpu_cost_per_scan_token
    projected_cost = scans * (
        (target / 2.0) * config.cpu_cost_per_scan_token
        + extra_entries * config.cpu_cost_per_index_entry
    )
    window = _window_of(snapshots)
    return Recommendation(
        rule="split-ranges",
        knob="max_range_tokens",
        current=current,
        recommended=target,
        summary=(
            f"scans average {avg_depth:.0f} tokens; cap ranges at "
            f"{target} tokens so lookups scan less"
        ),
        evidence=[
            Evidence(fp.K_PATH_SCAN, scans, window, "scan-path resolutions"),
            Evidence(fp.K_TOKENS_SCANNED, tokens, window, "tokens scanned"),
        ],
        what_if=WhatIf(
            "window's scan CPU at current vs. recommended granularity",
            current_cost,
            projected_cost,
        ),
    )


def _latest_partial(
    snapshots: Sequence[HistorySnapshot],
) -> Optional[Dict[str, object]]:
    for snap in reversed(snapshots):
        if snap.partial_index is not None:
            return snap.partial_index
    return None


def _rule_partial_resize(
    store, snapshots: Sequence[HistorySnapshot], finger: WorkloadFingerprint
) -> Optional[Recommendation]:
    """Partial index thrashing (grow) or dead weight (shrink)."""
    if store.partial_index is None:
        return None
    latest = _latest_partial(snapshots)
    if latest is None:
        return None
    inserts = _total(snapshots, "repro_partial_index_inserts_total")
    evictions = _total(snapshots, "repro_partial_index_evictions_total")
    hits = _total(snapshots, 'repro_partial_index_probes_total{result="hit"}')
    misses = _total(snapshots, 'repro_partial_index_probes_total{result="miss"}')
    entries = float(latest.get("entries", 0))
    window = _window_of(snapshots)
    config = store.config
    current = config.partial_index_capacity
    scans = _total(snapshots, fp.K_PATH_SCAN)
    tokens = _total(snapshots, fp.K_TOKENS_SCANNED)
    avg_depth = tokens / scans if scans else 0.0
    if (
        evictions >= max(PARTIAL_GROW_MIN_EVICTIONS,
                         PARTIAL_GROW_EVICTION_FRACTION * inserts)
        and hits > 0
        and current is not None
    ):
        target = _pow2_at_least(entries + evictions)
        if target <= current:
            return None
        # what-if: an entry that survives instead of being evicted turns
        # one future scan-miss into a memo hit
        avoided = min(evictions, misses)
        current_cost = misses * avg_depth * config.cpu_cost_per_scan_token
        projected_cost = (
            max(0.0, misses - avoided) * avg_depth * config.cpu_cost_per_scan_token
        )
        return Recommendation(
            rule="grow-partial-index",
            knob="partial_index_capacity",
            current=current,
            recommended=target,
            summary=(
                f"partial index evicted {evictions:.0f} entries in the "
                f"window (capacity {current}); grow to {target}"
            ),
            evidence=[
                Evidence(
                    "repro_partial_index_evictions_total", evictions, window
                ),
                Evidence("repro_partial_index_inserts_total", inserts, window),
                Evidence(
                    'repro_partial_index_probes_total{result="miss"}',
                    misses,
                    window,
                ),
            ],
            what_if=WhatIf(
                "scan CPU of memo misses at current vs. grown capacity",
                current_cost,
                projected_cost,
            ),
        )
    probes = hits + misses + _total(
        snapshots, 'repro_partial_index_probes_total{result="stale"}'
    )
    hit_rate = hits / probes if probes else 0.0
    if (
        probes > 0
        and hit_rate < PARTIAL_SHRINK_MAX_HIT_RATE
        and entries >= PARTIAL_SHRINK_MIN_ENTRIES
    ):
        target = max(
            PARTIAL_SHRINK_MIN_ENTRIES, _pow2_at_most(entries / 4)
        )
        if current is not None and target >= current:
            return None
        return Recommendation(
            rule="shrink-partial-index",
            knob="partial_index_capacity",
            current=current,
            recommended=target,
            summary=(
                f"partial index hit rate {hit_rate:.1%} over {probes:.0f} "
                f"probes; shrink to {target} and reclaim memory"
            ),
            evidence=[
                Evidence(
                    'repro_partial_index_probes_total{result="hit"}',
                    hits,
                    window,
                ),
                Evidence("partial_index.entries", entries, window, "resident"),
            ],
            what_if=WhatIf(
                "memo probes are memory-priced; simulated cost unchanged",
                0.0,
                0.0,
            ),
        )
    return None


def _rule_buffer_pool(
    store, snapshots: Sequence[HistorySnapshot], finger: WorkloadFingerprint
) -> Optional[Recommendation]:
    """Hot working set larger than the pool: grow the pool to cover it."""
    heat = None
    for snap in reversed(snapshots):
        if snap.heatmap is not None:
            heat = snap.heatmap
            break
    if heat is None:
        return None
    hot80 = int(heat.get("hot80_blocks", 0))
    hits = _total(snapshots, fp.K_BUFFER_HITS)
    misses = _total(snapshots, fp.K_BUFFER_MISSES)
    accesses = hits + misses
    if not accesses:
        return None
    miss_rate = misses / accesses
    capacity = store.config.buffer_pool_capacity
    if hot80 <= capacity or miss_rate <= BUFFER_MIN_MISS_RATE:
        return None
    target = _pow2_at_least(hot80)
    window = _window_of(snapshots)
    miss_cost = store.config.cost_model.cost(sequential=False, is_write=False)
    # what-if: with the hot set fully resident, misses scale down by the
    # fraction of hot-set blocks the pool could not hold
    projected_misses = misses * (capacity / hot80)
    return Recommendation(
        rule="grow-buffer-pool",
        knob="buffer_pool_capacity",
        current=capacity,
        recommended=target,
        summary=(
            f"80% of block touches land on {hot80} blocks but the pool "
            f"holds {capacity}; grow to {target}"
        ),
        evidence=[
            Evidence("heatmap.hot80_blocks", hot80, window, "hot working set"),
            Evidence(fp.K_BUFFER_MISSES, misses, window,
                     f"miss rate {miss_rate:.1%}"),
        ],
        what_if=WhatIf(
            "device cost of window misses at current vs. grown pool",
            misses * miss_cost,
            projected_misses * miss_cost,
        ),
    )


def _rule_compaction(
    store, snapshots: Sequence[HistorySnapshot], finger: WorkloadFingerprint
) -> Optional[Recommendation]:
    """Read-mostly store fragmented into many tiny ranges: compact."""
    n_ranges = len(store.ranges)
    if n_ranges < COMPACT_MIN_RANGES:
        return None
    total_tokens = _total_tokens(store)
    avg_tokens = total_tokens / n_ranges if n_ranges else 0.0
    if avg_tokens > COMPACT_MAX_AVG_TOKENS:
        return None
    if finger.read_fraction < COMPACT_MIN_READ_FRACTION:
        return None
    window = _window_of(snapshots)
    # what-if: a sequential scan seeks once per range head; compaction
    # merges adjacent ranges back toward one-per-insert-unit
    projected_ranges = max(2, n_ranges // 8)
    seek = store.config.cost_model.seek_seconds
    return Recommendation(
        rule="compact-ranges",
        knob="maintenance:compact",
        current=n_ranges,
        recommended=projected_ranges,
        summary=(
            f"{n_ranges} ranges averaging {avg_tokens:.0f} tokens on a "
            f"read-mostly workload; run compact()"
        ),
        evidence=[
            Evidence("ranges.count", n_ranges, window, "range-table size"),
            Evidence("fingerprint.read_fraction", finger.read_fraction, window),
        ],
        what_if=WhatIf(
            "per-scan seek cost at current vs. compacted range count",
            n_ranges * seek,
            projected_ranges * seek,
        ),
    )


_RULES = (
    _rule_split_ranges,
    _rule_partial_resize,
    _rule_buffer_pool,
    _rule_compaction,
)


# -------------------------------------------------------------- entry points --


def advise(
    store,
    snapshots: Optional[Sequence[HistorySnapshot]] = None,
    window: int = 4,
) -> AdvisorReport:
    """Produce an :class:`AdvisorReport` for ``store``.

    ``snapshots`` defaults to the store's own history.  The report is
    vacuous (zero recommendations, reason stated) on an empty store, on
    any store without history evidence — which covers legacy stores
    opened read-only — and below :data:`MIN_OPERATIONS`.
    """
    rows = list(snapshots) if snapshots is not None else store.history.snapshots()
    if store.is_empty:
        return AdvisorReport(
            vacuous_reason="store is empty",
            operations=0.0,
            window=_window_of(rows) if rows else None,
            fingerprint=None,
        )
    if not rows:
        return AdvisorReport(
            vacuous_reason=(
                "no workload history (enable history_enabled or pass "
                "snapshots)"
            ),
            operations=0.0,
            window=None,
            fingerprint=None,
        )
    finger = fingerprint_window(rows)
    if finger is None or finger.operations < MIN_OPERATIONS:
        observed = finger.operations if finger is not None else 0.0
        return AdvisorReport(
            vacuous_reason=(
                f"insufficient evidence ({observed:.0f} operations "
                f"observed, need >= {MIN_OPERATIONS})"
            ),
            operations=observed,
            window=_window_of(rows),
            fingerprint=finger.to_dict() if finger is not None else None,
        )
    recommendations = []
    for rule in _RULES:
        produced = rule(store, rows, finger)
        if produced is not None:
            recommendations.append(produced)
    return AdvisorReport(
        vacuous_reason=None,
        operations=finger.operations,
        window=_window_of(rows),
        fingerprint=finger.to_dict(),
        drift=drift_series(rows, window=window),
        recommendations=recommendations,
    )


#: StoreConfig fields :func:`apply_recommendations` may change.
_APPLICABLE_KNOBS = frozenset(
    {"max_range_tokens", "partial_index_capacity", "buffer_pool_capacity"}
)


def apply_recommendations(config, report: AdvisorReport):
    """A new :class:`~repro.core.config.StoreConfig` with every
    config-knob recommendation applied (maintenance recommendations —
    ``maintenance:*`` knobs — are actions, not config, and are skipped)."""
    changes: Dict[str, object] = {}
    for rec in report.recommendations:
        if rec.knob in _APPLICABLE_KNOBS:
            changes[rec.knob] = rec.recommended
    if not changes:
        return config
    return replace(config, **changes)
