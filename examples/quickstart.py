"""Quickstart: the store's Table-1 interface in two minutes.

Run:  python examples/quickstart.py
"""

from repro import IndexingPolicy, StoreConfig, XMLStore


def main() -> None:
    # An adaptive store: coarse Range Index + lazy Partial Index (the
    # paper's recommended configuration).
    store = XMLStore.open(
        StoreConfig(policy=IndexingPolicy.RANGE_PLUS_PARTIAL, page_size=4096)
    )

    # --- load a document (the paper's Figure 1) --------------------------
    root = store.load_document(
        "<ticket><hour>15</hour><name>Paul</name></ticket>"
    )
    print("root node id:", root)                      # -> 1
    print("whole document:", store.read())
    print("node 2 (hour):", store.read(2))            # ids follow Figure 1
    print("node 5 (text):", store.read(5))

    # --- update operations (XUpdate, Table 1) ----------------------------
    store.insert_into_last(root, "<seat>12A</seat>")
    store.insert_before(2, "<flight>LX318</flight>")  # new sibling before <hour>
    store.replace_content(2, "16")                    # ids are stable: hour == 2
    print("after updates:", store.read())

    # --- node identifiers are stable -------------------------------------
    print("hour is still node 2:", store.read(2))

    # --- XPath queries -----------------------------------------------------
    for node in store.xpath("/ticket/*"):
        print("child:", node.name, "=", node.string_value)
    hits = store.xpath("/ticket[hour > 10]/name/text()")
    print("query result:", [h.string_value for h in hits])

    # --- what the store did under the hood --------------------------------
    print()
    print("range snapshot (RangeId, BlockId, StartId, EndId):")
    for row in store.range_snapshot():
        print("  ", row)
    print()
    print(store.stats.summary())


if __name__ == "__main__":
    main()
