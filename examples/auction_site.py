"""Auction site: an XMark-style mixed workload on the adaptive store.

Demonstrates the ADAPTIVE policy switching between read- and
update-optimized modes as the workload's phase changes (paper §2.1), plus
the two query strategies (navigational XPath vs. structural join).

Run:  python examples/auction_site.py
"""

from repro import IndexingPolicy, StoreConfig, XMLStore
from repro.workloads.xmark import bidder_fragment, xmark_document
from repro.xpath.structural_join import containment_query


def main() -> None:
    store = XMLStore.open(
        StoreConfig(policy=IndexingPolicy.ADAPTIVE, adaptive_window=32)
    )
    store.load_document(
        xmark_document(items_per_region=4, people=15, auctions=10)
    )
    assert store.adaptive is not None

    # --- phase 1: browsing (read-heavy) -----------------------------------
    auctions = store.xpath("//open_auction")
    for _ in range(40):
        for auction in auctions[:4]:
            store.read(auction.node_id)
    print("after browsing phase:")
    print("  mode:", "read-optimized" if store.adaptive.read_optimized
          else "update-optimized")
    print("  partial index entries:", len(store.partial_index or []))

    # --- phase 2: bidding storm (update-heavy) ----------------------------
    for round_no in range(60):
        auction = auctions[round_no % len(auctions)]
        store.insert_into_last(auction.node_id, bidder_fragment(15, seed=round_no))
    print("after bidding phase:")
    print("  mode:", "read-optimized" if store.adaptive.read_optimized
          else "update-optimized")
    print("  mode switches:", len(store.adaptive.decisions))

    # --- queries: two evaluation strategies agree -------------------------
    navigational = store.xpath("//open_auction//personref")
    joined = containment_query(store, "open_auction", "personref")
    assert {n.node_id for n in navigational} == {d for _, d in joined}
    print()
    print(f"personrefs inside auctions: {len(navigational)} "
          f"(navigational == structural join)")

    # --- a business question ----------------------------------------------
    busy = store.xpath("//open_auction[count(bidder) > 6]")
    print(f"auctions with more than 6 bids: {len(busy)}")
    top = store.xpath("//open_auction[1]/current")
    if top:
        print("current price of the first auction:", top[0].string_value)

    store.check_integrity()
    print()
    print(store.stats.summary())


if __name__ == "__main__":
    main()
