"""Purchase-order processing: the paper's §4.1 motivating workload.

"A typical usage pattern will access the data based on semantic
constraints, such as: insert a <purchase-order> element as the last child
of the root."  This example runs that append-heavy workload under three
indexing policies and shows why being lazy wins: the full index pays per
node inserted; the plain range index re-scans for the insert position;
the partial index memoizes it once.

Run:  python examples/purchase_orders.py
"""

from repro import IndexingPolicy, StoreConfig, XMLStore
from repro.workloads.generator import purchase_order_stream


def run_policy(policy: IndexingPolicy, orders: int = 150) -> XMLStore:
    store = XMLStore.open(
        StoreConfig(policy=policy, buffer_pool_capacity=32)
    )
    root = store.load_document("<purchase-orders/>")
    for fragment in purchase_order_stream(orders, items_per_order=4, seed=11):
        store.insert_into_last(root, fragment)
    return store


def main() -> None:
    policies = [
        IndexingPolicy.FULL,
        IndexingPolicy.RANGE,
        IndexingPolicy.RANGE_PLUS_PARTIAL,
    ]
    print(f"{'policy':>16} {'sim seconds':>12} {'tokens scanned':>15} "
          f"{'device writes':>14}")
    stores = {}
    for policy in policies:
        store = run_policy(policy)
        stores[policy] = store
        print(
            f"{policy.value:>16} "
            f"{store.simulated_seconds:>12.3f} "
            f"{store.locator.stats.tokens_scanned:>15,} "
            f"{store.device.stats.writes:>14,}"
        )

    # All three produced the same document.
    texts = {store.read() for store in stores.values()}
    assert len(texts) == 1, "policies must agree on content"
    store = stores[IndexingPolicy.RANGE_PLUS_PARTIAL]

    # Query the accumulated orders.
    print()
    expensive = store.xpath("/purchase-orders/purchase-order/item[price > 450]")
    print(f"{len(expensive)} line items cost more than 450:")
    for item in expensive[:3]:
        print("  ", item.xml()[:76], "...")

    # Fulfil (delete) the first order, amend another.
    first = store.xpath("/purchase-orders/purchase-order[1]")[0]
    store.delete_node(first.node_id)
    second = store.xpath("/purchase-orders/purchase-order[1]")[0]
    store.insert_into_last(
        second.node_id, "<note>expedite - customer called</note>"
    )
    print()
    print("orders left:", len(store.xpath("/purchase-orders/purchase-order")))
    print("amended:", store.xpath("//note")[0].string_value)
    store.check_integrity()
    print()
    print(store.stats.summary())


if __name__ == "__main__":
    main()
