"""Transactions on the store: strict 2PL isolation + abort-undo (§9).

Run:  python examples/transactions.py
"""

from repro import XMLStore
from repro.concurrency.transactions import TransactionManager
from repro.errors import ConcurrencyError


def main() -> None:
    store = XMLStore.open()
    store.load_document(
        "<accounts>"
        "<account owner='ada'><balance>100</balance></account>"
        "<account owner='bob'><balance>40</balance></account>"
        "</accounts>"
    )
    manager = TransactionManager(store)

    # --- a committed transfer ----------------------------------------------
    ada = store.xpath("//account[@owner='ada']/balance")[0]
    bob = store.xpath("//account[@owner='bob']/balance")[0]
    with manager.begin() as txn:
        txn.replace_content(ada.node_id, "70")
        txn.replace_content(bob.node_id, "70")
    print("after committed transfer:", store.read())

    # --- an aborted transaction rolls back ----------------------------------
    txn = manager.begin()
    txn.replace_content(ada.node_id, "0")
    txn.insert_into_last(1, "<account owner='eve'><balance>70</balance></account>")
    print("inside txn: ", store.read())
    txn.abort()
    print("after abort: ", store.read())
    assert "eve" not in store.read()
    assert "<balance>70</balance>" in store.read()

    # --- isolation: conflicting writers fail fast ----------------------------
    writer = manager.begin()
    writer.replace_content(ada.node_id, "120")
    rival = manager.begin()
    try:
        rival.replace_content(ada.node_id, "0")
    except ConcurrencyError as error:
        print("rival writer blocked:", error)
    writer.commit()
    rival.abort()
    print("final:", store.read())
    store.check_integrity()


if __name__ == "__main__":
    main()
