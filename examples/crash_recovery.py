"""Durability walkthrough: WAL, checkpoint, crash, recovery.

Run:  python examples/crash_recovery.py
"""

import os
import tempfile

from repro import XMLStore
from repro.storage.disk import FileBlockDevice, InstrumentedDevice
from repro.storage.recovery import replay
from repro.storage.wal import WriteAheadLog


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-store-")
    store_path = os.path.join(workdir, "store.db")
    wal_path = os.path.join(workdir, "store.wal")
    print("store file:", store_path)

    # --- a file-backed store with a durable log ---------------------------
    device = InstrumentedDevice(FileBlockDevice(store_path))
    wal = WriteAheadLog(wal_path)
    store = XMLStore.open(device=device, wal=wal)
    root = store.load_document("<ledger/>")
    store.insert_into_last(root, "<entry id='1'>opening balance</entry>")
    catalog = store.checkpoint()  # flush + checkpoint mark
    print("checkpointed after entry 1")

    # --- more work after the checkpoint, then a crash ----------------------
    store.insert_into_last(root, "<entry id='2'>coffee: -4.50</entry>")
    store.insert_into_last(root, "<entry id='3'>invoice: +1200</entry>")
    print("wrote entries 2 and 3 (not checkpointed)")
    store.pool.drop_all()  # CRASH: dirty pages lost, WAL survives
    print("crash! dirty pages discarded")

    # --- recovery: checkpoint state + WAL replay ----------------------------
    recovered = XMLStore.from_catalog(device, catalog, wal=wal)
    replayed = replay(recovered, wal)
    print(f"replayed {len(replayed)} logged operations")
    text = recovered.read()
    for entry_id in ("1", "2", "3"):
        assert f"id=\"{entry_id}\"" in text, f"entry {entry_id} lost!"
    recovered.check_integrity()
    print("all three entries recovered:")
    print(" ", text)

    # --- alternative: full-log restore onto a fresh store ------------------
    fresh = XMLStore.recover(wal)
    assert fresh.read() == text
    print("full-log restore agrees")

    wal.close()
    device.close()


if __name__ == "__main__":
    main()
