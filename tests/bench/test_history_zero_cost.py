"""Workload history must be free when off — and invisible when on.

Two contracts, both pinned here:

* history **off** (the default) adds literally nothing to the Table 5
  path: the other zero-cost suites cover telemetry/events/profiling, and
  ``Table5Config.history`` defaults to False, so the committed numbers
  never depend on this subsystem;
* history **on** only *reads* counters — captures never advance the
  simulated clock — so the Table 5 output is byte-identical either way.
"""

from repro.bench.harness import insert_phase, random_read_phase
from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.obs.history import NOOP_HISTORY

#: Same micro preset as tests/bench/test_events_zero_cost.py: big enough
#: that all four approaches take distinct access paths, small enough to
#: run the table twice in a test.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)


def test_simulated_table_is_byte_identical_with_history_on():
    plain = run_table5(Table5Config(**MICRO))
    tracked = run_table5(Table5Config(history=True, **MICRO))
    # the simulated-clock table (the paper's numbers) must not move at all
    assert format_table5(plain) == format_table5(tracked)
    # and not merely after rounding: the raw simulated seconds are exact
    for plain_row, tracked_row in zip(plain, tracked):
        for phase in ("insert", "seq_scan", "random_reads"):
            assert (
                getattr(plain_row, phase).simulated_seconds
                == getattr(tracked_row, phase).simulated_seconds
            ), f"{plain_row.approach} / {phase} simulated cost drifted"


def test_default_table5_run_uses_the_noop_twin():
    assert Table5Config(**MICRO).history is False
    from repro.bench.table5 import APPROACHES, build_store

    approach, policy, granularity = APPROACHES[0]
    store, _ = build_store(policy, granularity, Table5Config(**MICRO))
    assert store.history is NOOP_HISTORY


def test_harness_phases_capture_labeled_snapshots():
    store = XMLStore.open(StoreConfig(history_enabled=True))
    root = store.load_document("<r><a>x</a></r>")
    insert_phase(store, root, ["<b>y</b>", "<c>z</c>"])
    random_read_phase(store, [root + 1])
    labels = [snap.label for snap in store.history.snapshots()]
    assert "insert" in labels
    assert "random-reads" in labels


def test_capture_reads_but_never_advances_the_clock():
    store = XMLStore.open(StoreConfig(history_enabled=True))
    root = store.load_document("<r><a>x</a></r>")
    store.read(root + 1)
    before = store.simulated_seconds
    store.history.capture(store, "manual")
    assert store.simulated_seconds == before
