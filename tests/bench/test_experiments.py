"""Integration tests: each experiment runs (at toy scale) and the headline
shape properties hold where they are scale-independent."""

import pytest

from repro.bench.sweeps import (
    run_adaptive_mixed,
    run_granularity_sweep,
    run_id_scheme_comparison,
    run_lazy_vs_eager,
    run_partial_capacity_sweep,
)
from repro.bench.table5 import APPROACHES, Table5Config, run_row
from repro.bench.reporting import format_table5


class TestTable5Machinery:
    def test_single_row_runs(self):
        config = Table5Config(
            base_orders=15, insert_orders=3, random_reads=20, pool_capacity=8
        )
        approach, policy, granularity = APPROACHES[3]
        row = run_row(approach, policy, granularity, config)
        assert row.insert.kb_per_second > 0
        assert row.seq_scan.kb_per_second > 0
        assert row.random_reads.kb_per_second > 0

    def test_format_table5(self):
        config = Table5Config(
            base_orders=10, insert_orders=2, random_reads=10, pool_capacity=8
        )
        approach, policy, granularity = APPROACHES[2]
        row = run_row(approach, policy, granularity, config)
        text = format_table5([row])
        assert "Indexing approach" in text
        assert "coarse" in text


class TestGranularitySweep:
    def test_range_counts_track_granularity(self):
        points = run_granularity_sweep(
            range_sizes=(32, None), base_orders=20, insert_orders=2, reads=10,
            pool_capacity=8,
        )
        granular, coarse = points
        assert granular.ranges > coarse.ranges
        assert coarse.ranges == 1


class TestPartialCapacitySweep:
    def test_hit_rate_grows_with_capacity(self):
        points = run_partial_capacity_sweep(
            capacities=(0, 4, None), base_orders=30, reads=100, pool_capacity=8
        )
        rates = [p.hit_rate for p in points]
        assert rates[0] == 0.0
        assert rates[2] >= rates[1] >= 0.0
        assert rates[2] > 0.3

    def test_unbounded_capacity_beats_none(self):
        points = run_partial_capacity_sweep(
            capacities=(0, None), base_orders=40, reads=150, pool_capacity=8
        )
        none_cap, unbounded = points
        assert (
            unbounded.random_reads.kb_per_second
            > none_cap.random_reads.kb_per_second
        )


class TestLazyVsEager:
    def test_lazy_beats_eager_full(self):
        points = run_lazy_vs_eager(segment_counts=(10,))
        point = points[0]
        assert point.lazy_advantage > 1.5
        assert (
            point.lazy_insert.kb_per_second
            > point.eager_memory_insert.kb_per_second
        )

    def test_lazy_advantage_grows_with_segments(self):
        points = run_lazy_vs_eager(segment_counts=(10, 60))
        assert points[1].lazy_advantage > points[0].lazy_advantage


class TestIdSchemeComparison:
    def test_relabeling_costs(self):
        results = {r.scheme: r for r in run_id_scheme_comparison(
            siblings=50, middle_inserts=10)}
        assert results["sequential (store)"].labels_changed == 0
        assert results["ordpath"].labels_changed == 0
        assert results["dewey"].labels_changed > 0
        assert results["prepost"].labels_changed > 0
        # pre/post pays at least order-of of dewey's cost on flat siblings
        assert results["prepost"].labels_changed >= results["dewey"].labels_changed // 2


class TestAdaptiveMixed:
    def test_adaptive_tracks_best_policy(self):
        points = run_adaptive_mixed(
            read_fractions=(0.1, 0.9), operations=60, base_orders=15,
            pool_capacity=8,
        )
        by_key = {(p.read_fraction, p.policy): p.simulated_seconds for p in points}
        for fraction in (0.1, 0.9):
            best_fixed = min(
                by_key[(fraction, "range")],
                by_key[(fraction, "range+partial")],
                by_key[(fraction, "eager-partial")],
            )
            adaptive = by_key[(fraction, "adaptive")]
            assert adaptive <= best_fixed * 1.5  # tracks the winner

    def test_partial_beats_plain_range_on_update_heavy_mix(self):
        """The Table-5 insight: updates also need lookups."""
        points = run_adaptive_mixed(
            read_fractions=(0.1,), operations=60, base_orders=15, pool_capacity=8
        )
        by_policy = {p.policy: p.simulated_seconds for p in points}
        assert by_policy["range+partial"] < by_policy["range"]
