"""Advisor A/B acceptance: recommended config beats the default.

The tuning advisor's claim is auditable end-to-end: run a skewed,
read-heavy workload on the default (coarse) configuration with history
on, ask for advice, apply it with :func:`apply_recommendations`, rerun
the *same* workload — the simulated cost must drop.  This is the
acceptance bench of the observability subsystem: the advisor only saw
history snapshots, and the saving it predicted with the cost model is
realized by the store that follows it.
"""

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.obs.advisor import advise, apply_recommendations
from repro.workloads.generator import purchase_orders_document
from repro.workloads.operations import hot_cold_choices

SEED = 11
#: the advisor must beat the default by at least this margin on the
#: measured read phase (observed ≈68%; the margin leaves generator slack)
MIN_IMPROVEMENT = 0.20


def _base_config() -> StoreConfig:
    """The paper's lazy default: coarse ranges plus the partial index."""
    return StoreConfig(
        policy=IndexingPolicy.RANGE_PLUS_PARTIAL,
        history_enabled=True,
        history_interval=32,
    )


def _run_workload(config: StoreConfig):
    """Bulk load, then a skewed point-read stream from a cold cache;
    returns (store, read-phase simulated seconds)."""
    store = XMLStore.open(config)
    store.load_document(purchase_orders_document(60, 4, seed=SEED))
    item_ids = [
        node.node_id
        for node in store.xpath("/purchase-orders/purchase-order/item")
    ]
    stream = hot_cold_choices(
        item_ids, 300, hot_fraction=0.1, hot_probability=0.7, seed=SEED
    )
    store.pool.flush_all()
    store.pool.drop_all()
    loaded = store.simulated_seconds
    for node_id in stream:
        store.read(node_id)
    return store, store.simulated_seconds - loaded


def test_advisor_recommendation_beats_the_default():
    store, default_cost = _run_workload(_base_config())
    report = advise(store)
    assert not report.vacuous
    assert report.recommendations, "skewed scans must trigger a rule"
    # the headline rule for a coarse store under point reads
    split = next(
        rec for rec in report.recommendations if rec.rule == "split-ranges"
    )
    assert split.what_if.saving_simulated_seconds > 0

    tuned_config = apply_recommendations(_base_config(), report)
    assert tuned_config.max_range_tokens == split.recommended

    _, tuned_cost = _run_workload(tuned_config)
    assert tuned_cost < default_cost
    improvement = (default_cost - tuned_cost) / default_cost
    assert improvement >= MIN_IMPROVEMENT, (
        f"advisor config improved the read phase by only {improvement:.1%}"
    )


def test_advice_is_deterministic_across_identical_runs():
    # the CI gate diffs two advisor reports from two identical runs;
    # pin the same property here at test scale
    first_store, _ = _run_workload(_base_config())
    second_store, _ = _run_workload(_base_config())
    assert (
        advise(first_store).to_dict() == advise(second_store).to_dict()
    )
