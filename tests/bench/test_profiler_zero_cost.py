"""The profiler must be free when off: Table 5 is byte-identical either way.

Same contract the event log pins in test_events_zero_cost.py, now for
``Table5Config(profile=True)``: attaching a cost profile to every phase
row must not move the simulated-clock numbers by a single byte.  The
profiler only *reads* counters the store maintains anyway and folds
spans the tracer already recorded — it never advances the simulated
clock, and clock discipline keeps wall time out of the simulated axis.
"""

from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5

#: A micro preset: big enough that all four approaches take distinct
#: access paths, small enough to run twice in a test.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)

PHASES = ("insert", "seq_scan", "random_reads")


def test_simulated_table_is_byte_identical_with_profiling_on():
    plain = run_table5(Table5Config(**MICRO))
    profiled = run_table5(Table5Config(profile=True, **MICRO))
    # the simulated-clock table (the paper's numbers) must not move at all
    assert format_table5(plain) == format_table5(profiled)
    # and not merely after rounding: the raw simulated seconds are exact
    for plain_row, profiled_row in zip(plain, profiled):
        for phase in PHASES:
            assert (
                getattr(plain_row, phase).simulated_seconds
                == getattr(profiled_row, phase).simulated_seconds
            ), f"{plain_row.approach} / {phase} simulated cost drifted"


def test_profiled_run_attaches_cost_profiles():
    rows = run_table5(Table5Config(profile=True, **MICRO))
    for row in rows:
        for phase in PHASES:
            profile = getattr(row, phase).profile
            assert profile is not None, f"{row.approach} / {phase}"
            assert profile["components"]
            assert profile["span_totals"]
            assert profile["simulated_seconds"] > 0
            # the attached profile window is the phase window
            assert (
                profile["simulated_seconds"]
                == getattr(row, phase).simulated_seconds
            )


def test_plain_run_attaches_nothing():
    rows = run_table5(Table5Config(**MICRO))
    for row in rows:
        for phase in PHASES:
            assert getattr(row, phase).profile is None
