"""Replication's zero-cost pin and its catch-up throughput trajectory.

A store that never replicates pays nothing: the Table 5 bench stays
byte-identical with the replication package loaded, tailing the WAL as a
change stream moves no primary bytes and no simulated time, and the
config flag defaults off.  When replication *is* used, catch-up
throughput is a first-class bench phase: deterministic per seed and fed
to the trend sentry (``BENCH_trajectory.jsonl``) so a regression in the
apply path trips the same tripwire as the storage benches.
"""

import pytest

import repro.replication  # noqa: F401  — the zero-cost pin is with this loaded
from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.obs.schema import stamp
from repro.obs.trend import (
    append_record,
    detect_regressions,
    load_trajectory,
)
from repro.replication.changestream import ChangeStream
from repro.replication.channel import ChannelFaultConfig, ReplicationChannel
from repro.replication.replica import Replica
from repro.replication.service import catch_up

#: Same micro preset as tests/bench/test_group_commit_bench.py.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)

CHANGES = 32


def _primary():
    store = XMLStore.open()
    store.load_document("<bench/>")
    for index in range(CHANGES - 1):
        store.insert_into_last(1, f"<row>{index}</row>")
    return store


def _catch_up_phase():
    """One honest catch-up run → the trajectory phase cell."""
    primary = _primary()
    replica = Replica(XMLStore.open())
    channel = ReplicationChannel(
        ChangeStream(primary.wal), ChannelFaultConfig()
    )
    report = catch_up(channel, replica, primary_store=primary)
    assert report.converged and report.digest_match
    simulated = replica.store.simulated_seconds
    kilobytes = len(primary.wal.to_bytes()) / 1024.0
    return {
        "simulated_seconds": simulated,
        "kb_per_second": kilobytes / simulated,
    }


class TestZeroCost:
    def test_replication_is_off_by_default(self):
        assert StoreConfig().replication_enabled is False

    def test_table5_is_byte_identical_with_replication_loaded(self):
        config = Table5Config(**MICRO)
        assert format_table5(run_table5(config)) == format_table5(
            run_table5(config)
        )

    def test_tailing_the_stream_costs_the_primary_nothing(self):
        primary = _primary()
        image_before = primary.wal.to_bytes()
        seconds_before = primary.simulated_seconds
        records = list(ChangeStream(primary.wal).records())
        assert len(records) == CHANGES
        assert primary.wal.to_bytes() == image_before
        assert primary.simulated_seconds == seconds_before


class TestCatchUpThroughput:
    def test_catch_up_cost_is_deterministic(self):
        first = _catch_up_phase()
        second = _catch_up_phase()
        assert first == second
        assert first["simulated_seconds"] > 0
        assert first["kb_per_second"] > 0

    def test_throughput_feeds_the_trend_sentry(self, tmp_path):
        path = str(tmp_path / "BENCH_trajectory.jsonl")
        phase = _catch_up_phase()
        for index in range(4):
            append_record(
                path,
                stamp(
                    {
                        "label": f"repl-{index + 1}",
                        "phases": {"replication/catch_up": dict(phase)},
                    }
                ),
            )
        # a healthy trajectory stays silent
        assert detect_regressions(load_trajectory(path)) == []
        # a 2x slowdown in the apply path trips the sentry
        slow = {
            "simulated_seconds": phase["simulated_seconds"] * 2.0,
            "kb_per_second": phase["kb_per_second"] / 2.0,
        }
        append_record(
            path,
            stamp(
                {
                    "label": "repl-slow",
                    "phases": {"replication/catch_up": slow},
                }
            ),
        )
        (regression,) = detect_regressions(load_trajectory(path))
        assert regression.key == "replication/catch_up"
        assert regression.ratio == pytest.approx(2.0)
