"""Unit tests for the Table-5 shape checker (synthetic rows, no runs)."""

from repro.bench.harness import PhaseResult
from repro.bench.table5 import Table5Row, check_shape


def phase(kb_per_second: float) -> PhaseResult:
    # one KB over 1/kb seconds gives the desired throughput
    return PhaseResult(
        label="synthetic",
        operations=1,
        xml_bytes=1024,
        simulated_seconds=1.0 / kb_per_second,
        wall_seconds=0.0,
        device_reads=0,
        device_writes=0,
        tokens_scanned=0,
    )


def rows_from(values):
    """values: {approach: (insert, scan, random)}"""
    return [
        Table5Row(name, phase(i), phase(s), phase(r))
        for name, (i, s, r) in values.items()
    ]


PAPER_LIKE = {
    "Full Index (max. granularity)": (28, 1150, 672),
    "Range Index (many, granular entries)": (97, 1496, 137),
    "Range Index (few, coarse, large entries)": (91, 1496, 33),
    "Range Index (coarse) + Partial Index (memory)": (182, 1496, 994),
}


class TestCheckShape:
    def test_paper_numbers_pass(self):
        assert check_shape(rows_from(PAPER_LIKE)) == []

    def test_slow_partial_inserts_detected(self):
        values = dict(PAPER_LIKE)
        values["Range Index (coarse) + Partial Index (memory)"] = (50, 1496, 994)
        violated = check_shape(rows_from(values))
        assert any("fastest inserts" in claim for claim in violated)

    def test_fast_coarse_random_reads_detected(self):
        values = dict(PAPER_LIKE)
        values["Range Index (few, coarse, large entries)"] = (91, 1496, 700)
        violated = check_shape(rows_from(values))
        assert any("slowest random reads" in claim for claim in violated)

    def test_scan_sensitivity_detected(self):
        values = dict(PAPER_LIKE)
        values["Range Index (many, granular entries)"] = (97, 400, 137)
        violated = check_shape(rows_from(values))
        assert any("insensitive" in claim for claim in violated)

    def test_partial_below_full_reads_detected(self):
        values = dict(PAPER_LIKE)
        values["Range Index (coarse) + Partial Index (memory)"] = (182, 1496, 300)
        violated = check_shape(rows_from(values))
        assert any("at least match the full index" in claim for claim in violated)

    def test_full_beating_scan_detected(self):
        values = dict(PAPER_LIKE)
        values["Full Index (max. granularity)"] = (28, 2500, 672)
        violated = check_shape(rows_from(values))
        assert any("sequential scan" in claim for claim in violated)
