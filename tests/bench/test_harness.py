"""Unit tests for the benchmark harness and reporting."""

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.bench.harness import (
    PhaseResult,
    insert_phase,
    make_cold,
    random_read_phase,
    run_phase,
    sequential_scan_phase,
)
from repro.bench.reporting import format_csv, format_table, phase_dict


def small_store(**kwargs):
    store = XMLStore.open(StoreConfig(buffer_pool_capacity=8, **kwargs))
    store.load_document("<r>" + "".join(f"<x>{i}</x>" for i in range(100)) + "</r>")
    return store


class TestPhases:
    def test_run_phase_accounts_bytes_and_time(self):
        store = small_store()
        result = run_phase(store, "noop-read", lambda: len(store.read()), 1)
        assert result.xml_bytes > 0
        assert result.simulated_seconds > 0
        assert result.kb_per_second > 0
        assert result.label == "noop-read"

    def test_cold_phase_reads_from_device(self):
        store = small_store()
        store.read()  # warm the pool
        result = sequential_scan_phase(store)
        assert result.device_reads > 0

    def test_insert_phase_counts_fragments(self):
        store = small_store()
        result = insert_phase(store, 1, ["<a/>", "<b/>", "<c/>"])
        assert result.operations == 3
        assert result.xml_bytes == len("<a/>") * 3
        assert "<c/>" in store.read()

    def test_random_read_phase(self):
        store = small_store()
        result = random_read_phase(store, [2, 2, 4])
        assert result.operations == 3
        assert result.xml_bytes > 0

    def test_make_cold_empties_pool(self):
        store = small_store()
        store.read()
        make_cold(store)
        assert store.pool.num_cached == 0

    def test_simulated_time_includes_cpu(self):
        # a phase that only scans cached pages must still cost time
        store = XMLStore.open(StoreConfig(buffer_pool_capacity=64))
        store.load_document("<r>" + "<x/>" * 200 + "</r>")
        store.read()  # everything cached now
        result = run_phase(store, "cpu-only", lambda: len(store.read()), 1)
        assert result.device_reads == 0
        assert result.simulated_seconds > 0  # per-token CPU cost

    def test_kb_per_second_guard_against_zero_time(self):
        result = PhaseResult("x", 1, 1024, 0.0, 0.0, 0, 0, 0)
        assert result.kb_per_second > 0
        assert result.wall_kb_per_second > 0

    def test_str_rendering(self):
        result = PhaseResult("p", 2, 2048, 0.5, 0.1, 3, 4, 5)
        assert "p:" in str(result)

    def test_run_phase_attaches_metrics_delta(self):
        store = small_store()
        result = run_phase(store, "scan", lambda: len(store.read()), 1)
        assert result.metrics is not None
        assert result.metrics['repro_store_operations_total{op="read"}'] == 1
        # deltas cover the phase only, not the setup load
        assert result.metrics['repro_store_operations_total{op="load"}'] == 0

    def test_metrics_default_none_for_hand_built_results(self):
        result = PhaseResult("p", 2, 2048, 0.5, 0.1, 3, 4, 5)
        assert result.metrics is None


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1.5), ("b", 22.25)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.50" in text and "22.25" in text

    def test_format_table_empty(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_csv(self):
        text = format_csv(["a", "b"], [("x,y", 1.5)])
        assert text.splitlines()[0] == "a,b"
        assert '"x,y"' in text

    def test_format_csv_quotes(self):
        text = format_csv(["v"], [('say "hi"',)])
        assert '"say ""hi"""' in text

    def test_phase_dict_carries_metrics(self):
        result = PhaseResult(
            "p", 2, 2048, 0.5, 0.1, 3, 4, 5,
            metrics={"repro_wal_appends_total": 2.0},
        )
        data = phase_dict(result)
        assert data["label"] == "p"
        assert data["metrics"]["repro_wal_appends_total"] == 2.0

    def test_phase_dict_omits_absent_metrics(self):
        data = phase_dict(PhaseResult("p", 2, 2048, 0.5, 0.1, 3, 4, 5))
        assert "metrics" not in data
