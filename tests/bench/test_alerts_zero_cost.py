"""Alerts and SLOs must be free when off — and invisible when on.

The same contract every observability subsystem signs
(tests/bench/test_history_zero_cost.py is the template):

* alerts **off** (the default) adds nothing to the Table 5 path —
  ``Table5Config.alerts`` defaults to False, so the committed numbers
  never depend on the rule engine or the SLO tracker;
* alerts **on** only *reads* counters — evaluations never advance the
  simulated clock — so the Table 5 output is byte-identical either way.
"""

from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.obs.alerts import NOOP_ALERTS
from repro.obs.slo import NOOP_SLO

#: Same micro preset as tests/bench/test_history_zero_cost.py: big enough
#: that all four approaches take distinct access paths, small enough to
#: run the table twice in a test.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)


def test_simulated_table_is_byte_identical_with_alerts_on():
    plain = run_table5(Table5Config(**MICRO))
    watched = run_table5(Table5Config(alerts=True, **MICRO))
    # the simulated-clock table (the paper's numbers) must not move at all
    assert format_table5(plain) == format_table5(watched)
    # and not merely after rounding: the raw simulated seconds are exact
    for plain_row, watched_row in zip(plain, watched):
        for phase in ("insert", "seq_scan", "random_reads"):
            assert (
                getattr(plain_row, phase).simulated_seconds
                == getattr(watched_row, phase).simulated_seconds
            ), f"{plain_row.approach} / {phase} simulated cost drifted"


def test_default_table5_run_uses_the_noop_twins():
    assert Table5Config(**MICRO).alerts is False
    from repro.bench.table5 import APPROACHES, build_store

    approach, policy, granularity = APPROACHES[0]
    store, _ = build_store(policy, granularity, Table5Config(**MICRO))
    assert store.alerts is NOOP_ALERTS
    assert store.slo is NOOP_SLO


def test_alert_evaluation_reads_but_never_advances_the_clock():
    store = XMLStore.open(
        StoreConfig(alerts_enabled=True, telemetry_enabled=True)
    )
    root = store.load_document("<r><a>x</a></r>")
    store.read(root + 1)
    before = store.simulated_seconds
    store.alerts.evaluate_store(store, "manual")
    store.slo.evaluate(store)
    store.slo.budget_floor(store)
    assert store.simulated_seconds == before


def test_interval_evaluations_do_not_charge_the_workload():
    def run(enabled):
        store = XMLStore.open(
            StoreConfig(alerts_enabled=enabled, alerts_interval=2)
        )
        root = store.load_document("<r><a>x</a><b>y</b></r>")
        for _ in range(10):
            store.read(root + 1)
        return store.simulated_seconds

    assert run(False) == run(True)
