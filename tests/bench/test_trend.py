"""The bench-trajectory sentry (repro.obs.trend + tools/bench_trend.py)."""

import json
import os
import sys

import pytest

from repro.errors import ObservabilityError
from repro.obs.trend import (
    append_record,
    detect_regressions,
    load_trajectory,
    next_label,
    trajectory_record,
    trend_summary,
)

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
import bench_trend  # noqa: E402


def _bench_rows(scale=1.0):
    """Synthetic BENCH_table5.json rows with both clocks per phase."""
    rows = []
    costs = {"insert": 0.5, "seq_scan": 0.1, "random_reads": 0.25}
    for index, approach in enumerate(
        ("Full Index", "Granular Ranges", "Coarse Ranges", "Coarse+Partial")
    ):
        row = {"schema_version": 1, "approach": approach}
        for phase, base in costs.items():
            simulated = base * (1 + 0.1 * index) * scale
            row[phase] = {
                "simulated_seconds": simulated,
                "kb_per_second": 100.0 / simulated,
            }
        rows.append(row)
    return rows


def _record(label, scale=1.0):
    return trajectory_record(_bench_rows(scale), label)


class TestTrajectoryRecord:
    def test_folds_every_approach_phase_cell(self):
        record = _record("run-1")
        assert record["schema_version"] == 1
        assert record["label"] == "run-1"
        assert len(record["phases"]) == 12  # 4 approaches x 3 phases
        cell = record["phases"]["Full Index/insert"]
        assert cell["simulated_seconds"] == 0.5
        assert cell["kb_per_second"] == pytest.approx(200.0)

    def test_missing_phase_rejected(self):
        rows = _bench_rows()
        del rows[0]["seq_scan"]
        with pytest.raises(ObservabilityError, match="seq_scan"):
            trajectory_record(rows, "r")

    def test_unstamped_row_rejected(self):
        rows = _bench_rows()
        del rows[0]["schema_version"]
        with pytest.raises(ObservabilityError, match="schema_version"):
            trajectory_record(rows, "r")


class TestPersistence:
    def test_append_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "trajectory.jsonl")
        append_record(path, _record("run-1"))
        append_record(path, _record("run-2"))
        records = load_trajectory(path)
        assert [r["label"] for r in records] == ["run-1", "run-2"]

    def test_missing_file_is_an_empty_trajectory(self, tmp_path):
        assert load_trajectory(str(tmp_path / "absent.jsonl")) == []

    def test_lines_are_sorted_key_json(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        append_record(str(path), _record("run-1"))
        line = path.read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        path.write_text("{nope\n")
        with pytest.raises(ObservabilityError, match="malformed"):
            load_trajectory(str(path))

    def test_next_label_counts_records(self):
        assert next_label([]) == "run-1"
        assert next_label([_record("a"), _record("b")]) == "run-3"


class TestDetector:
    def test_stable_history_is_quiet(self):
        records = [_record(f"run-{i}") for i in range(5)]
        assert detect_regressions(records) == []

    def test_silent_until_min_history(self):
        records = [_record("run-1"), _record("run-2", scale=10.0)]
        assert detect_regressions(records, min_history=3) == []

    def test_doubled_cost_is_flagged(self):
        records = [_record(f"run-{i}") for i in range(4)]
        records.append(_record("run-5", scale=2.0))
        flagged = detect_regressions(records)
        assert len(flagged) == 12  # every cell doubled
        assert all(r.ratio == pytest.approx(2.0) for r in flagged)
        assert "simulated seconds" in flagged[0].render()

    def test_median_shrugs_off_a_single_outlier(self):
        # one historic spike must not drag the reference up
        records = [
            _record("run-1"), _record("run-2", scale=50.0),
            _record("run-3"), _record("run-4"),
            _record("run-5", scale=2.0),
        ]
        flagged = detect_regressions(records)
        assert len(flagged) == 12

    def test_threshold_is_respected(self):
        records = [_record(f"run-{i}") for i in range(4)]
        records.append(_record("run-5", scale=1.4))
        assert detect_regressions(records, threshold=1.5) == []
        assert detect_regressions(records, threshold=1.3)

    def test_window_bounds_the_reference(self):
        # old cheap runs must age out of a window of 2
        records = [
            _record("run-1", scale=0.1), _record("run-2", scale=0.1),
            _record("run-3"), _record("run-4"),
            _record("run-5", scale=1.2),
        ]
        assert detect_regressions(records, window=2, min_history=2) == []

    def test_summary_payload_is_stamped(self):
        records = [_record(f"run-{i}") for i in range(4)]
        records.append(_record("run-5", scale=2.0))
        flagged = detect_regressions(records)
        payload = trend_summary(records, flagged)
        assert payload["schema_version"] == 1
        assert payload["ok"] is False
        assert payload["records"] == 5
        assert payload["latest_label"] == "run-5"
        assert len(payload["regressions"]) == 12


class TestMain:
    def _current(self, tmp_path, scale=1.0, name="current.json"):
        path = tmp_path / name
        path.write_text(json.dumps(_bench_rows(scale)))
        return str(path)

    def _seed(self, tmp_path, runs=3):
        trajectory = str(tmp_path / "trajectory.jsonl")
        for index in range(runs):
            append_record(trajectory, _record(f"run-{index + 1}"))
        return trajectory

    def test_young_trajectory_appends_and_exits_zero(self, tmp_path, capsys):
        current = self._current(tmp_path)
        trajectory = str(tmp_path / "trajectory.jsonl")
        assert bench_trend.main([current, "--trajectory", trajectory]) == 0
        assert "need 3 prior runs" in capsys.readouterr().out
        assert [r["label"] for r in load_trajectory(trajectory)] == ["run-1"]

    def test_stable_run_exits_zero(self, tmp_path, capsys):
        current = self._current(tmp_path)
        trajectory = self._seed(tmp_path)
        assert bench_trend.main([current, "--trajectory", trajectory]) == 0
        assert "stable" in capsys.readouterr().out
        assert len(load_trajectory(trajectory)) == 4

    def test_injected_regression_exits_one(self, tmp_path, capsys):
        current = self._current(tmp_path, scale=2.0)
        trajectory = self._seed(tmp_path)
        assert bench_trend.main([current, "--trajectory", trajectory]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "x2.00" in out

    def test_no_append_only_checks(self, tmp_path):
        current = self._current(tmp_path)
        trajectory = self._seed(tmp_path)
        assert bench_trend.main(
            [current, "--trajectory", trajectory, "--no-append"]
        ) == 0
        assert len(load_trajectory(trajectory)) == 3

    def test_json_summary(self, tmp_path, capsys):
        current = self._current(tmp_path, scale=2.0)
        trajectory = self._seed(tmp_path)
        assert bench_trend.main(
            [current, "--trajectory", trajectory, "--json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["ok"] is False

    def test_custom_label(self, tmp_path):
        current = self._current(tmp_path)
        trajectory = str(tmp_path / "trajectory.jsonl")
        bench_trend.main(
            [current, "--trajectory", trajectory, "--label", "nightly"]
        )
        assert load_trajectory(trajectory)[0]["label"] == "nightly"

    def test_malformed_current_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        trajectory = str(tmp_path / "trajectory.jsonl")
        assert bench_trend.main([str(bad), "--trajectory", trajectory]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unstamped_current_exits_two(self, tmp_path):
        rows = _bench_rows()
        del rows[0]["schema_version"]
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(rows))
        trajectory = str(tmp_path / "trajectory.jsonl")
        assert bench_trend.main([str(bad), "--trajectory", trajectory]) == 2

    def test_bad_threshold_rejected(self, tmp_path):
        current = self._current(tmp_path)
        with pytest.raises(SystemExit):
            bench_trend.main([current, "--threshold", "1.0"])

    def test_committed_baseline_appends_clean(self, tmp_path):
        baseline = os.path.join(
            os.path.dirname(__file__), "..", "..",
            "bench_results", "BENCH_table5.json",
        )
        trajectory = str(tmp_path / "trajectory.jsonl")
        assert bench_trend.main(
            [baseline, "--trajectory", trajectory, "--label", "baseline"]
        ) == 0
        assert len(load_trajectory(trajectory)) == 1
