"""Group commit's headline saving — and its zero-cost pin.

Eight concurrent writers through the serving layer must share sync
barriers: at an equal committed-op count, group commit pays at least 4×
fewer barriers than the per-commit baseline, and pricing barriers via
``DiskCostModel.sync_seconds`` makes the saving visible in simulated
seconds.  Meanwhile a single session with the server disabled (and the
Table 5 path, which never touches the server) stays byte-identical —
the serving layer costs nothing until it is used.
"""

from dataclasses import replace

import pytest

from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.server.sessions import SessionOp, XMLServer
from repro.storage.wal import WriteAheadLog

#: Same micro preset as tests/bench/test_recorder_zero_cost.py.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)

WRITERS = 8
BASE = "<lib>" + "".join(f"<s{i}>seed</s{i}>" for i in range(1, WRITERS + 1)) + "</lib>"
#: One subtree per writer: element ids 2, 4, 6, ... (text nodes take the
#: odd ids in between).
SUBTREES = tuple(range(2, 2 * WRITERS + 1, 2))


def run_writers(group_commit: bool, sync_seconds: float = 0.0):
    config = StoreConfig(
        server_group_commit=group_commit,
        server_group_commit_max_batch=WRITERS,
        cost_model=replace(StoreConfig().cost_model, sync_seconds=sync_seconds),
    )
    store = XMLStore.open(config)
    store.load_document(BASE)
    barriers_before = store.wal.sync_barriers
    server = XMLServer(store)
    sessions = [
        server.submit([SessionOp("insert_into_last", SUBTREES[i], f"<w{i}>x</w{i}>")])
        for i in range(WRITERS)
    ]
    server.run()
    assert all(s.outcome == "committed" for s in sessions)
    committed_ops = sum(s.ops_executed for s in sessions)
    return store, committed_ops, store.wal.sync_barriers - barriers_before


class TestBarrierReduction:
    def test_eight_writers_pay_at_least_4x_fewer_barriers(self):
        grouped_store, grouped_ops, grouped_barriers = run_writers(group_commit=True)
        percommit_store, percommit_ops, percommit_barriers = run_writers(
            group_commit=False
        )
        # the comparison is fair: both runs committed the same work
        assert grouped_ops == percommit_ops == WRITERS
        assert grouped_store.read() == percommit_store.read()
        assert percommit_barriers == WRITERS  # one fsync per commit
        assert grouped_barriers * 4 <= percommit_barriers, (
            f"group commit paid {grouped_barriers} barriers vs "
            f"{percommit_barriers} per-commit — less than a 4x reduction"
        )

    def test_priced_barriers_surface_the_saving_in_simulated_seconds(self):
        sync_cost = 0.008
        grouped_store, _, grouped_barriers = run_writers(
            group_commit=True, sync_seconds=sync_cost
        )
        percommit_store, _, percommit_barriers = run_writers(
            group_commit=False, sync_seconds=sync_cost
        )
        saved_barriers = percommit_barriers - grouped_barriers
        assert saved_barriers > 0
        assert (
            percommit_store.wal.simulated_sync_seconds
            - grouped_store.wal.simulated_sync_seconds
        ) == pytest.approx(sync_cost * saved_barriers)

    def test_grouped_run_remains_durable(self):
        store, _, _ = run_writers(group_commit=True)
        recovered = XMLStore.recover(WriteAheadLog.from_bytes(store.wal.to_bytes()))
        assert recovered.read() == store.read()


class TestZeroCostPin:
    def test_sync_pricing_defaults_to_zero(self):
        # pre-server benchmarks never priced barriers; the default must
        # not start charging them
        assert StoreConfig().cost_model.sync_seconds == 0.0
        assert XMLStore.open().wal.sync_cost == 0.0

    def test_single_session_matches_direct_store_ops(self):
        # the same program, served and unserved: identical document and
        # identical node ids (the transaction layer pays for its own
        # undo capture, so simulated cost is compared on the raw path
        # in test_sync_pricing_defaults_to_zero, not here)
        program = [
            SessionOp("insert_into_last", 2, "<x>one</x>"),
            SessionOp("replace_content", 4, "TWO"),
            SessionOp("read", 2),
        ]
        served_store = XMLStore.open(StoreConfig(server_group_commit=False))
        served_store.load_document(BASE)
        server = XMLServer(served_store)
        session = server.submit(list(program))
        server.run()
        assert session.outcome == "committed"

        direct_store = XMLStore.open()
        direct_store.load_document(BASE)
        direct_results = [
            direct_store.insert_into_last(2, "<x>one</x>"),
            direct_store.replace_content(4, "TWO"),
            direct_store.read(2),
        ]
        assert served_store.read() == direct_store.read()
        assert session.results == direct_results
        # and the served WAL recovers to the same document the direct
        # store holds — the commit frame is equivalent to the op stream
        recovered = XMLStore.recover(
            WriteAheadLog.from_bytes(served_store.wal.to_bytes())
        )
        assert recovered.read() == direct_store.read()

    def test_table5_micro_run_is_stable_with_the_serving_layer_loaded(self):
        # importing/serving never perturbs the committed Table 5 numbers:
        # two runs of the micro preset are byte-identical
        first = format_table5(run_table5(Table5Config(**MICRO)))
        second = format_table5(run_table5(Table5Config(**MICRO)))
        assert first == second
