"""The benchmark regression gate (tools/bench_compare.py)."""

import copy
import json
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "tools")
)
import bench_compare  # noqa: E402


def _rows():
    """A synthetic Table-5 result with the paper's shape."""
    return [
        {"schema_version": 1,
         "approach": "Full Index (max. granularity)",
         "insert": {"kb_per_second": 30.0},
         "seq_scan": {"kb_per_second": 1100.0},
         "random_reads": {"kb_per_second": 650.0}},
        {"schema_version": 1,
         "approach": "Range Index (many, granular entries)",
         "insert": {"kb_per_second": 95.0},
         "seq_scan": {"kb_per_second": 1500.0},
         "random_reads": {"kb_per_second": 140.0}},
        {"schema_version": 1,
         "approach": "Range Index (few, coarse, large entries)",
         "insert": {"kb_per_second": 90.0},
         "seq_scan": {"kb_per_second": 1500.0},
         "random_reads": {"kb_per_second": 33.0}},
        {"schema_version": 1,
         "approach": "Range Index (coarse) + Partial Index (memory)",
         "insert": {"kb_per_second": 180.0},
         "seq_scan": {"kb_per_second": 1500.0},
         "random_reads": {"kb_per_second": 990.0}},
    ]


def _write(path, rows):
    path.write_text(json.dumps(rows))
    return str(path)


class TestCompare:
    def test_identical_results_pass(self):
        baseline = {r["approach"]: {p: r[p]["kb_per_second"]
                                    for p in bench_compare.PHASES}
                    for r in _rows()}
        assert bench_compare.compare(baseline, copy.deepcopy(baseline)) == []

    def test_uniform_rescaling_passes(self):
        baseline = {r["approach"]: {p: r[p]["kb_per_second"]
                                    for p in bench_compare.PHASES}
                    for r in _rows()}
        scaled = {
            approach: {phase: value * 3.0 for phase, value in phases.items()}
            for approach, phases in baseline.items()
        }
        assert bench_compare.compare(baseline, scaled) == []

    def test_drift_beyond_tolerance_fails(self):
        baseline = {r["approach"]: {p: r[p]["kb_per_second"]
                                    for p in bench_compare.PHASES}
                    for r in _rows()}
        drifted = copy.deepcopy(baseline)
        # partial-index inserts collapse to coarse level: the headline
        # trade-off changed, the gate must notice
        drifted["Range Index (coarse) + Partial Index (memory)"]["insert"] = 90.0
        messages = bench_compare.compare(baseline, drifted, tolerance=0.25)
        assert len(messages) == 1
        assert "insert" in messages[0]

    def test_drift_within_tolerance_passes(self):
        baseline = {r["approach"]: {p: r[p]["kb_per_second"]
                                    for p in bench_compare.PHASES}
                    for r in _rows()}
        drifted = copy.deepcopy(baseline)
        drifted["Full Index (max. granularity)"]["insert"] *= 1.10
        assert bench_compare.compare(baseline, drifted, tolerance=0.25) == []

    def test_missing_approach_reported(self):
        baseline = {r["approach"]: {p: r[p]["kb_per_second"]
                                    for p in bench_compare.PHASES}
                    for r in _rows()}
        current = copy.deepcopy(baseline)
        del current["Full Index (max. granularity)"]
        messages = bench_compare.compare(baseline, current)
        assert any("missing" in m for m in messages)


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        path = _write(tmp_path / "a.json", _rows())
        assert bench_compare.main([path, path]) == 0
        assert "stable" in capsys.readouterr().out

    def test_drift_exit_one(self, tmp_path, capsys):
        baseline = _write(tmp_path / "a.json", _rows())
        drifted_rows = _rows()
        drifted_rows[3]["insert"]["kb_per_second"] = 90.0
        drifted = _write(tmp_path / "b.json", drifted_rows)
        assert bench_compare.main([baseline, drifted]) == 1
        out = capsys.readouterr().out
        assert "benchmark regression" in out
        assert "Partial Index" in out

    def test_wider_tolerance_forgives(self, tmp_path):
        baseline = _write(tmp_path / "a.json", _rows())
        drifted_rows = _rows()
        drifted_rows[3]["insert"]["kb_per_second"] = 90.0
        drifted = _write(tmp_path / "b.json", drifted_rows)
        assert bench_compare.main([baseline, drifted, "--tolerance", "2.0"]) == 0

    def test_malformed_exit_two(self, tmp_path, capsys):
        good = _write(tmp_path / "a.json", _rows())
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert bench_compare.main([good, str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path):
        good = _write(tmp_path / "a.json", _rows())
        assert bench_compare.main([good, str(tmp_path / "absent.json")]) == 2

    def test_missing_reference_row_exit_two(self, tmp_path):
        rows = [r for r in _rows()
                if r["approach"] != bench_compare.REFERENCE_APPROACH]
        path = _write(tmp_path / "a.json", rows)
        assert bench_compare.main([path, path]) == 2

    def test_missing_schema_version_exit_two(self, tmp_path, capsys):
        rows = _rows()
        del rows[1]["schema_version"]
        path = _write(tmp_path / "a.json", rows)
        assert bench_compare.main([path, path]) == 2
        assert "schema_version" in capsys.readouterr().err

    def test_newer_schema_version_exit_two(self, tmp_path, capsys):
        rows = _rows()
        rows[0]["schema_version"] = 999
        path = _write(tmp_path / "a.json", rows)
        assert bench_compare.main([path, path]) == 2
        assert "999" in capsys.readouterr().err

    def test_tolerance_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            bench_compare.main(["--help"])
        help_text = capsys.readouterr().out
        assert "tolerance" in help_text
        assert "0.25" in help_text

    def test_committed_baseline_compares_clean_with_itself(self):
        baseline = os.path.join(
            os.path.dirname(__file__), "..", "..",
            "bench_results", "BENCH_table5.json",
        )
        assert bench_compare.main([baseline, baseline]) == 0


def _calibrated_rows(skew=None):
    """_rows() plus both clocks per phase, with consistent wall/sim
    ratios; ``skew={(row_index, phase): factor}`` inflates wall time."""
    rows = _rows()
    base = {"insert": 0.5, "seq_scan": 0.1, "random_reads": 0.25}
    for index, row in enumerate(rows):
        for phase, simulated in base.items():
            factor = (skew or {}).get((index, phase), 1.0)
            row[phase]["simulated_seconds"] = simulated
            row[phase]["wall_seconds"] = simulated * (2.0 + 0.1 * index) * factor
    return rows


class TestCalibrationGate:
    def test_calibrated_run_passes(self, tmp_path, capsys):
        path = _write(tmp_path / "a.json", _calibrated_rows())
        assert bench_compare.main([path, path, "--calibration"]) == 0
        assert "cost model calibrated" in capsys.readouterr().out

    def test_uncharged_work_fails_the_gate(self, tmp_path, capsys):
        baseline = _write(tmp_path / "a.json", _calibrated_rows())
        current = _write(
            tmp_path / "b.json",
            _calibrated_rows(skew={(3, "insert"): 100000.0}),
        )
        assert bench_compare.main([baseline, current, "--calibration"]) == 1
        out = capsys.readouterr().out
        assert "calibration" in out
        assert "Partial Index" in out

    def test_calibration_failure_is_independent_of_shape(self, tmp_path):
        # the shape gate compares ratios of kb/s, which the skewed wall
        # clock does not touch — only the calibration gate trips
        baseline = _write(tmp_path / "a.json", _calibrated_rows())
        current = _write(
            tmp_path / "b.json",
            _calibrated_rows(skew={(0, "seq_scan"): 100000.0}),
        )
        assert bench_compare.main([baseline, current]) == 0
        assert bench_compare.main([baseline, current, "--calibration"]) == 1

    def test_custom_limit(self, tmp_path):
        baseline = _write(tmp_path / "a.json", _calibrated_rows())
        current = _write(
            tmp_path / "b.json",
            _calibrated_rows(skew={(1, "random_reads"): 5.0}),
        )
        assert bench_compare.main([baseline, current, "--calibration"]) == 0
        assert (
            bench_compare.main(
                [baseline, current, "--calibration",
                 "--calibration-limit", "2.0"]
            )
            == 1
        )

    def test_rows_without_wall_clock_exit_two(self, tmp_path, capsys):
        # plain shape-only rows lack the clocks the calibration needs
        path = _write(tmp_path / "a.json", _rows())
        assert bench_compare.main([path, path, "--calibration"]) == 2
        assert "calibration" in capsys.readouterr().err

    def test_committed_baseline_is_calibrated(self):
        baseline = os.path.join(
            os.path.dirname(__file__), "..", "..",
            "bench_results", "BENCH_table5.json",
        )
        assert bench_compare.main([baseline, baseline, "--calibration"]) == 0
