"""Profiling must be free when off: Table 5 is byte-identical either way.

The EXPLAIN layer's contract is that the *disabled* path costs nothing —
in particular, the simulated-cost numbers that reproduce the paper's
Table 5 must not move by a single byte when events/telemetry are off
versus on (the event log reads the simulated clock but never advances
it; clock discipline keeps wall time out of the simulated numbers).
"""

from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5

#: A micro preset: big enough that all four approaches take distinct
#: access paths, small enough to run twice in a test.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)


def test_simulated_table_is_byte_identical_with_profiling_on():
    plain = run_table5(Table5Config(**MICRO))
    profiled = run_table5(Table5Config(events_enabled=True, **MICRO))
    # the simulated-clock table (the paper's numbers) must not move at all
    assert format_table5(plain) == format_table5(profiled)
    # and not merely after rounding: the raw simulated seconds are exact
    for plain_row, profiled_row in zip(plain, profiled):
        for phase in ("insert", "seq_scan", "random_reads"):
            assert (
                getattr(plain_row, phase).simulated_seconds
                == getattr(profiled_row, phase).simulated_seconds
            ), f"{plain_row.approach} / {phase} simulated cost drifted"


def test_profiled_run_attaches_explain_reports():
    rows = run_table5(Table5Config(events_enabled=True, **MICRO))
    for row in rows:
        for phase in ("insert", "seq_scan", "random_reads"):
            explain = getattr(row, phase).explain
            assert explain is not None
            assert explain["access_path"]
            assert "resolutions" in explain


def test_plain_run_attaches_nothing():
    rows = run_table5(Table5Config(**MICRO))
    for row in rows:
        assert row.insert.explain is None
        assert row.seq_scan.explain is None
        assert row.random_reads.explain is None
