"""The flight recorder must be free when off — and invisible when on.

The same contract every observability subsystem signs
(tests/bench/test_alerts_zero_cost.py is the template):

* recorder **off** (the default) adds nothing to the Table 5 path —
  ``Table5Config.recorder`` defaults to False, so the committed numbers
  never depend on the ring or the incident manager;
* recorder **on** only *reads* counters and copies events — recording
  never advances the simulated clock — so the Table 5 output is
  byte-identical either way.
"""

from repro.bench.reporting import format_table5
from repro.bench.table5 import Table5Config, run_table5
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.obs.incident import NOOP_INCIDENTS
from repro.obs.recorder import NOOP_RECORDER

#: Same micro preset as tests/bench/test_alerts_zero_cost.py: big enough
#: that all four approaches take distinct access paths, small enough to
#: run the table twice in a test.
MICRO = dict(
    base_orders=16,
    items_per_order=3,
    insert_orders=4,
    random_reads=40,
    hot_fraction=0.1,
    pool_capacity=8,
    granular_tokens=64,
)


def test_simulated_table_is_byte_identical_with_recorder_on():
    plain = run_table5(Table5Config(**MICRO))
    recorded = run_table5(Table5Config(recorder=True, **MICRO))
    # the simulated-clock table (the paper's numbers) must not move at all
    assert format_table5(plain) == format_table5(recorded)
    # and not merely after rounding: the raw simulated seconds are exact
    for plain_row, recorded_row in zip(plain, recorded):
        for phase in ("insert", "seq_scan", "random_reads"):
            assert (
                getattr(plain_row, phase).simulated_seconds
                == getattr(recorded_row, phase).simulated_seconds
            ), f"{plain_row.approach} / {phase} simulated cost drifted"


def test_default_table5_run_uses_the_noop_twins():
    assert Table5Config(**MICRO).recorder is False
    from repro.bench.table5 import APPROACHES, build_store

    approach, policy, granularity = APPROACHES[0]
    store, _ = build_store(policy, granularity, Table5Config(**MICRO))
    assert store.recorder is NOOP_RECORDER
    assert store.incidents is NOOP_INCIDENTS


def test_recording_reads_but_never_advances_the_clock():
    store = XMLStore.open(
        StoreConfig(
            recorder_enabled=True,
            events_enabled=True,
            telemetry_enabled=True,
        )
    )
    root = store.load_document("<r><a>x</a></r>")
    store.read(root + 1)
    before = store.simulated_seconds
    store.recorder.frame(store, "manual")
    store.event_log.emit("test", "poke", severity="info")
    store.recorder.to_dict()
    assert store.simulated_seconds == before


def test_interval_frames_do_not_charge_the_workload():
    def run(enabled):
        store = XMLStore.open(
            StoreConfig(
                recorder_enabled=enabled,
                events_enabled=True,
                recorder_interval=2,
            )
        )
        root = store.load_document("<r><a>x</a><b>y</b></r>")
        for _ in range(10):
            store.read(root + 1)
        return store.simulated_seconds

    assert run(False) == run(True)
