"""Unit tests for operation streams."""

import pytest

from repro.core.store import XMLStore
from repro.workloads.operations import (
    Operation,
    append_stream,
    apply_operation,
    apply_stream,
    hot_cold_choices,
    mixed_stream,
    read_stream,
    zipf_choices,
)


class TestZipf:
    def test_uniform_when_skew_zero(self):
        draws = zipf_choices(list(range(100)), 5000, skew=0.0, seed=1)
        counts = [draws.count(i) for i in range(5)]
        assert max(counts) < 3 * min(counts)  # roughly uniform

    def test_skew_concentrates_on_low_ranks(self):
        population = list(range(100))
        draws = zipf_choices(population, 5000, skew=1.5, seed=1)
        first_decile = sum(1 for d in draws if d < 10)
        assert first_decile > 0.6 * len(draws)

    def test_deterministic(self):
        a = zipf_choices([1, 2, 3], 50, 1.0, seed=3)
        b = zipf_choices([1, 2, 3], 50, 1.0, seed=3)
        assert a == b

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            zipf_choices([], 5, 1.0)


class TestHotCold:
    def test_hot_set_dominates(self):
        population = list(range(100))
        draws = hot_cold_choices(population, 2000, hot_fraction=0.1,
                                 hot_probability=0.9, seed=2)
        hot_hits = sum(1 for d in draws if d < 10)
        assert 0.8 < hot_hits / len(draws) < 0.97

    def test_single_element_population(self):
        assert hot_cold_choices([42], 10) == [42] * 10

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            hot_cold_choices([], 5)


class TestStreams:
    def test_read_stream(self):
        ops = read_stream([1, 2, 3])
        assert all(op.kind == "read" for op in ops)
        assert [op.node_id for op in ops] == [1, 2, 3]

    def test_append_stream(self):
        ops = append_stream(1, ["<a/>", "<b/>"])
        assert all(op.kind == "insert" and op.node_id == 1 for op in ops)

    def test_mixed_stream_fraction(self):
        ops = mixed_stream([1, 2], 1, ["<x/>"], read_fraction=0.5, count=500, seed=1)
        reads = sum(1 for op in ops if op.kind == "read")
        assert 0.4 < reads / len(ops) < 0.6

    def test_mixed_stream_all_reads(self):
        ops = mixed_stream([1], 1, ["<x/>"], read_fraction=1.0, count=50)
        assert all(op.kind == "read" for op in ops)

    def test_mixed_stream_bad_fraction(self):
        with pytest.raises(ValueError):
            mixed_stream([1], 1, ["<x/>"], read_fraction=1.5, count=10)


class TestApply:
    def test_apply_read_insert_delete(self):
        store = XMLStore.open()
        root = store.load_document("<r><a/></r>")
        apply_operation(store, Operation("insert", root, "<b/>"))
        apply_operation(store, Operation("read", root))
        apply_operation(store, Operation("delete", 2))
        assert store.read() == "<r><b/></r>"

    def test_apply_replace_and_scan(self):
        store = XMLStore.open()
        store.load_document("<r><a/></r>")
        apply_operation(store, Operation("replace", 2, "<b/>"))
        apply_operation(store, Operation("scan"))
        assert store.read() == "<r><b/></r>"

    def test_apply_stream_runs_everything(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        apply_stream(store, append_stream(root, ["<a/>", "<b/>", "<c/>"]))
        assert store.read() == "<r><a/><b/><c/></r>"

    def test_unknown_kind_rejected(self):
        store = XMLStore.open()
        store.load_document("<r/>")
        with pytest.raises(ValueError):
            apply_operation(store, Operation("compact"))
