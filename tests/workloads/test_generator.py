"""Unit tests for workload generators."""

import random

import pytest

from repro.core.store import XMLStore
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.tokens import TokenKind, count_nodes
from repro.workloads.generator import (
    element_tree_with_nodes,
    purchase_order,
    purchase_order_stream,
    purchase_orders_document,
    text_heavy_document,
    words,
)
from repro.workloads.xmark import bidder_fragment, xmark_document


class TestWords:
    def test_deterministic(self):
        assert words(random.Random(1), 5) == words(random.Random(1), 5)

    def test_count(self):
        assert len(words(random.Random(1), 7).split()) == 7


class TestElementTree:
    @pytest.mark.parametrize("count", [1, 2, 7, 50, 200])
    def test_exact_node_count(self, count):
        xml = element_tree_with_nodes(count)
        tokens = tokenize_fragment(xml)
        elements = [t for t in tokens if t.kind == TokenKind.BEGIN_ELEMENT]
        assert len(elements) == count
        assert count_nodes(tokens) == count

    def test_is_well_formed_and_loadable(self):
        store = XMLStore.open()
        store.load_document(element_tree_with_nodes(100))
        store.check_integrity()

    def test_fanout_limits_width(self):
        xml = element_tree_with_nodes(20, fanout=2)
        # with fanout 2 the root has at most 2 direct children
        tokens = tokenize_fragment(xml)
        depth = 0
        root_children = 0
        for token in tokens:
            if token.kind == TokenKind.BEGIN_ELEMENT:
                depth += 1
                if depth == 2:
                    root_children += 1
            elif token.kind == TokenKind.END_ELEMENT:
                depth -= 1
        assert root_children == 2

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            element_tree_with_nodes(0)


class TestPurchaseOrders:
    def test_order_is_well_formed(self):
        xml = purchase_order(1, 3, random.Random(0))
        tokens = tokenize_fragment(xml)
        assert tokens[0].name == "purchase-order"

    def test_items_count(self):
        xml = purchase_order(1, 4, random.Random(0))
        assert xml.count("<item ") == 4

    def test_document_contains_all_orders(self):
        xml = purchase_orders_document(10, items_per_order=2)
        assert xml.count("<purchase-order ") == 10

    def test_document_deterministic(self):
        assert purchase_orders_document(5) == purchase_orders_document(5)

    def test_stream_yields_fragments(self):
        fragments = list(purchase_order_stream(5, start_no=100))
        assert len(fragments) == 5
        assert 'no="100"' in fragments[0]

    def test_document_loads_into_store(self):
        store = XMLStore.open()
        store.load_document(purchase_orders_document(5))
        assert len(store.xpath("/purchase-orders/purchase-order")) == 5


class TestTextHeavyAndXMark:
    def test_text_heavy_document(self):
        xml = text_heavy_document(5, words_each=10)
        assert xml.count("<p>") == 5
        store = XMLStore.open()
        store.load_document(xml)
        store.check_integrity()

    def test_xmark_loads_and_queries(self):
        store = XMLStore.open()
        store.load_document(xmark_document(items_per_region=2, people=4, auctions=3))
        assert len(store.xpath("//open_auction")) == 3
        assert len(store.xpath("/site/people/person")) == 4
        items = store.xpath("//item")
        assert len(items) == 2 * 6  # two per region, six regions

    def test_xmark_deterministic(self):
        assert xmark_document(seed=5) == xmark_document(seed=5)
        assert xmark_document(seed=5) != xmark_document(seed=6)

    def test_bidder_fragment_appends(self):
        store = XMLStore.open()
        store.load_document(xmark_document(items_per_region=1, people=3, auctions=1))
        auction = store.xpath("//open_auction")[0]
        before = len(store.xpath("//bidder"))
        store.insert_into_last(auction.node_id, bidder_fragment(3, seed=9))
        assert len(store.xpath("//bidder")) == before + 1
