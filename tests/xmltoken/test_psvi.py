"""Unit tests for PSVI annotation."""

from decimal import Decimal

import pytest

from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.psvi import (
    Schema,
    SchemaValidationError,
    SimpleType,
    XS_BOOLEAN,
    XS_DECIMAL,
    XS_INTEGER,
    annotate,
    typed_value,
)
from repro.xmltoken.tokens import TokenKind


def make_schema():
    return Schema(
        elements={"price": "xs:decimal", "qty": "xs:integer", "ok": "xs:boolean"},
        attributes={"id": "xs:integer"},
    )


class TestSimpleTypes:
    def test_integer(self):
        assert XS_INTEGER.validate(" 42 ") == 42

    def test_decimal(self):
        assert XS_DECIMAL.validate("19.99") == Decimal("19.99")

    def test_boolean_lexical_forms(self):
        assert XS_BOOLEAN.validate("true") is True
        assert XS_BOOLEAN.validate("0") is False

    def test_invalid_value_raises(self):
        with pytest.raises(SchemaValidationError):
            XS_INTEGER.validate("forty-two")

    def test_invalid_boolean(self):
        with pytest.raises(SchemaValidationError):
            XS_BOOLEAN.validate("yes")


class TestAnnotate:
    def test_element_text_gets_annotation(self):
        tokens = annotate(tokenize_fragment("<price>19.99</price>"), make_schema())
        assert tokens[0].type_annotation == "xs:decimal"
        assert tokens[1].type_annotation == "xs:decimal"

    def test_attribute_value_gets_annotation(self):
        tokens = annotate(tokenize_fragment('<a id="7"/>'), make_schema())
        attr_value = [t for t in tokens if t.kind == TokenKind.ATTRIBUTE_VALUE][0]
        assert attr_value.type_annotation == "xs:integer"

    def test_undeclared_names_stay_untyped(self):
        tokens = annotate(tokenize_fragment("<other>x</other>"), make_schema())
        assert all(t.type_annotation == "" for t in tokens)

    def test_annotation_only_applies_to_direct_text(self):
        xml = "<price><qty>3</qty></price>"
        tokens = annotate(tokenize_fragment(xml), make_schema())
        qty_text = tokens[2]
        assert qty_text.kind == TokenKind.TEXT
        assert qty_text.type_annotation == "xs:integer"  # inner element wins

    def test_invalid_typed_content_rejected(self):
        with pytest.raises(SchemaValidationError):
            annotate(tokenize_fragment("<qty>lots</qty>"), make_schema())

    def test_invalid_typed_attribute_rejected(self):
        with pytest.raises(SchemaValidationError):
            annotate(tokenize_fragment('<a id="x"/>'), make_schema())

    def test_unknown_type_name_rejected(self):
        schema = Schema(elements={"a": "xs:nope"})
        with pytest.raises(SchemaValidationError, match="unknown simple type"):
            annotate(tokenize_fragment("<a>1</a>"), schema)

    def test_original_tokens_unchanged(self):
        original = tokenize_fragment("<qty>3</qty>")
        annotate(original, make_schema())
        assert original[1].type_annotation == ""

    def test_custom_type_registration(self):
        schema = make_schema()
        schema.register_type(
            SimpleType("x:upper", lambda s: s.upper())
        )
        schema.elements["name"] = "x:upper"
        tokens = annotate(tokenize_fragment("<name>paul</name>"), schema)
        assert tokens[1].type_annotation == "x:upper"


class TestTypedValue:
    def test_typed_text(self):
        tokens = annotate(tokenize_fragment("<qty>3</qty>"), make_schema())
        assert typed_value(tokens[1]) == 3

    def test_untyped_text_returns_string(self):
        tokens = tokenize_fragment("<a>3</a>")
        assert typed_value(tokens[1]) == "3"

    def test_unknown_annotation_rejected(self):
        token = tokenize_fragment("<a>3</a>")[1].with_type("xs:mystery")
        with pytest.raises(SchemaValidationError):
            typed_value(token)

    def test_typed_value_with_custom_schema(self):
        schema = make_schema()
        schema.register_type(SimpleType("x:upper", lambda s: s.upper()))
        token = tokenize_fragment("<a>hi</a>")[1].with_type("x:upper")
        assert typed_value(token, schema) == "HI"
