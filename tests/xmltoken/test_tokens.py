"""Unit tests for the token model."""

from repro.xmltoken.tokens import (
    Token,
    TokenKind,
    attribute_value,
    begin_attribute,
    begin_document,
    begin_element,
    comment,
    count_nodes,
    element,
    end_attribute,
    end_document,
    end_element,
    namespace,
    processing_instruction,
    text,
)


class TestTokenProperties:
    def test_begin_element_starts_node(self):
        assert begin_element("a").starts_node

    def test_end_element_does_not_start_node(self):
        assert not end_element().starts_node

    def test_text_starts_node(self):
        assert text("x").starts_node

    def test_attribute_value_does_not_start_node(self):
        assert not attribute_value("v").starts_node

    def test_begin_attribute_starts_node(self):
        assert begin_attribute("id").starts_node

    def test_comment_and_pi_start_nodes(self):
        assert comment("c").starts_node
        assert processing_instruction("t", "d").starts_node

    def test_document_tokens(self):
        assert begin_document().starts_node
        assert not end_document().starts_node

    def test_is_begin_is_end(self):
        assert begin_element("a").is_begin and not begin_element("a").is_end
        assert end_attribute().is_end and not end_attribute().is_begin
        assert not text("x").is_begin and not text("x").is_end

    def test_tokens_are_hashable_value_objects(self):
        assert begin_element("a") == begin_element("a")
        assert begin_element("a") != begin_element("b")
        assert len({text("x"), text("x"), text("y")}) == 2

    def test_with_type(self):
        typed = text("15").with_type("xs:integer")
        assert typed.type_annotation == "xs:integer"
        assert typed.value == "15"
        assert text("15").type_annotation == ""

    def test_repr_is_compact(self):
        token = text("a" * 100)
        assert len(repr(token)) < 60
        assert "TEXT" in repr(token)


class TestElementBuilder:
    def test_simple_element(self):
        tokens = element("hour", "15")
        assert tokens == [begin_element("hour"), text("15"), end_element()]

    def test_nested_elements(self):
        tokens = element("ticket", element("hour", "15"))
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.BEGIN_ELEMENT,
            TokenKind.BEGIN_ELEMENT,
            TokenKind.TEXT,
            TokenKind.END_ELEMENT,
            TokenKind.END_ELEMENT,
        ]

    def test_attributes_come_first(self):
        tokens = element("a", "body", attributes=[("id", "1")])
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.BEGIN_ELEMENT,
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.ATTRIBUTE_VALUE,
            TokenKind.END_ATTRIBUTE,
            TokenKind.TEXT,
            TokenKind.END_ELEMENT,
        ]


class TestCountNodes:
    def test_paper_figure1_has_five_nodes(self):
        # <ticket><hour>15</hour><name>Paul</name></ticket> -> ids 1..5
        tokens = element(
            "ticket", element("hour", "15"), element("name", "Paul")
        )
        assert count_nodes(tokens) == 5

    def test_attribute_counts_as_one_node(self):
        tokens = element("a", attributes=[("id", "1")])
        assert count_nodes(tokens) == 2  # element + attribute

    def test_namespace_counts_as_node(self):
        assert count_nodes([namespace("p", "urn:x")]) == 1

    def test_empty_sequence(self):
        assert count_nodes([]) == 0
