"""Unit tests for the binary token codec."""

import pytest

from repro.errors import CodecError
from repro.xmltoken.binary import (
    decode_stream,
    decode_token,
    decode_tokens,
    decode_varint,
    encode_stream,
    encode_token,
    encode_tokens,
    encode_varint,
)
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.tokens import (
    Token,
    TokenKind,
    begin_element,
    end_element,
    text,
)


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**14, 2**21, 2**32, 2**60])
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_small_values_are_one_byte(self):
        assert len(encode_varint(0)) == 1
        assert len(encode_varint(127)) == 1
        assert len(encode_varint(128)) == 2

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            encode_varint(-1)

    def test_truncated_varint(self):
        with pytest.raises(CodecError):
            decode_varint(b"\x80")

    def test_overlong_varint(self):
        with pytest.raises(CodecError):
            decode_varint(b"\xff" * 11)


class TestTokenCodec:
    @pytest.mark.parametrize(
        "token",
        [
            begin_element("ticket"),
            end_element(),
            text("15"),
            Token(TokenKind.BEGIN_ATTRIBUTE, name="id"),
            Token(TokenKind.ATTRIBUTE_VALUE, value="v-42"),
            Token(TokenKind.PROCESSING_INSTRUCTION, name="t", value="d"),
            Token(TokenKind.NAMESPACE, name="p", value="urn:x"),
            Token(TokenKind.TEXT, value="15", type_annotation="xs:integer"),
            Token(TokenKind.BEGIN_ELEMENT, name="a", type_annotation="xs:string"),
            text("héllo ☺ " * 50),
            text(""),
        ],
    )
    def test_roundtrip(self, token):
        assert decode_token(encode_token(token)) == token

    def test_end_element_is_one_byte(self):
        assert len(encode_token(end_element())) == 1

    def test_short_text_is_compact(self):
        # header + len + 2 payload bytes
        assert len(encode_token(text("15"))) == 4

    def test_trailing_garbage_rejected(self):
        data = encode_token(text("x")) + b"\x00"
        with pytest.raises(CodecError):
            decode_token(data)

    def test_empty_record_rejected(self):
        with pytest.raises(CodecError):
            decode_token(b"")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CodecError):
            decode_token(bytes([0x1F]))  # kind 31 does not exist

    def test_truncated_string_rejected(self):
        good = encode_token(text("hello world"))
        with pytest.raises(CodecError):
            decode_token(good[:-3])


class TestSequenceCodecs:
    def test_encode_tokens_one_record_each(self):
        tokens = tokenize_fragment("<a x='1'>body</a>")
        records = encode_tokens(tokens)
        assert len(records) == len(tokens)
        assert decode_tokens(records) == tokens

    def test_stream_roundtrip(self):
        tokens = tokenize_fragment("<r><a>1</a><b y='2'><!--c--></b></r>")
        blob = encode_stream(tokens)
        assert list(decode_stream(blob)) == tokens

    def test_empty_stream(self):
        assert list(decode_stream(b"")) == []

    def test_parser_to_codec_pipeline(self):
        xml = "<ticket><hour>15</hour><name>Paul</name></ticket>"
        tokens = tokenize_fragment(xml)
        assert decode_tokens(encode_tokens(tokens)) == tokens
