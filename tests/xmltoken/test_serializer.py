"""Unit tests for token-to-XML serialization."""

import pytest

from repro.errors import TokenStreamError
from repro.xmltoken.parser import tokenize_document, tokenize_fragment
from repro.xmltoken.serializer import escape_attribute, escape_text, serialize
from repro.xmltoken.tokens import (
    attribute_value,
    begin_attribute,
    begin_element,
    end_attribute,
    end_element,
    text,
)


class TestEscaping:
    def test_text_escapes_markup(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"

    def test_plain_text_unchanged(self):
        assert escape_text("hello") == "hello"


class TestSerialize:
    def test_empty_element(self):
        assert serialize(tokenize_fragment("<a/>")) == "<a/>"

    def test_element_with_text(self):
        assert serialize(tokenize_fragment("<a>hi</a>")) == "<a>hi</a>"

    def test_attributes(self):
        xml = '<a x="1" y="2"/>'
        assert serialize(tokenize_fragment(xml)) == xml

    def test_paper_figure1_roundtrip(self):
        xml = "<ticket><hour>15</hour><name>Paul</name></ticket>"
        assert serialize(tokenize_fragment(xml)) == xml

    def test_comment_and_pi(self):
        xml = "<a><!--note--><?go now?></a>"
        assert serialize(tokenize_fragment(xml)) == xml

    def test_namespace_declarations(self):
        xml = '<p:a xmlns:p="urn:x"/>'
        assert serialize(tokenize_fragment(xml)) == xml

    def test_special_characters_re_escaped(self):
        xml = "<a>1 &lt; 2 &amp; 3</a>"
        assert serialize(tokenize_fragment(xml)) == xml

    def test_quote_in_attribute_re_escaped(self):
        xml = '<a x="say &quot;hi&quot;"/>'
        assert serialize(tokenize_fragment(xml)) == xml

    def test_document_tokens_are_transparent(self):
        tokens = tokenize_document("<root><a/></root>")
        assert serialize(tokens) == "<root><a/></root>"

    def test_mixed_content(self):
        xml = "<a>one<b/>two</a>"
        assert serialize(tokenize_fragment(xml)) == xml

    def test_multiple_top_level_nodes(self):
        xml = "<a/><b>x</b>"
        assert serialize(tokenize_fragment(xml)) == xml


class TestRoundTripProperty:
    CASES = [
        "<a/>",
        '<a id="1" class="big small"/>',
        "<r><x>1</x><x>2</x><x>3</x></r>",
        "<a>text<b>nested</b>tail</a>",
        "<a><!--c--><?pi data?><b/></a>",
        '<order no="7"><item sku="x-1">2</item><item sku="y-2">5</item></order>',
    ]

    @pytest.mark.parametrize("xml", CASES)
    def test_parse_serialize_fixpoint(self, xml):
        once = serialize(tokenize_fragment(xml))
        assert once == xml
        assert serialize(tokenize_fragment(once)) == once

    @pytest.mark.parametrize("xml", CASES)
    def test_token_level_roundtrip(self, xml):
        tokens = tokenize_fragment(xml)
        assert tokenize_fragment(serialize(tokens)) == tokens


class TestPrettyPrint:
    def test_indent_nested_elements(self):
        tokens = tokenize_fragment("<a><b><c/></b></a>")
        pretty = serialize(tokens, indent="  ")
        assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n</a>"

    def test_indent_keeps_text_inline(self):
        tokens = tokenize_fragment("<a><b>15</b></a>")
        pretty = serialize(tokens, indent="  ")
        assert "<b>15</b>" in pretty

    def test_pretty_output_reparses_to_equivalent_structure(self):
        xml = "<r><a>1</a><b><c/></b></r>"
        pretty = serialize(tokenize_fragment(xml), indent="  ")
        names = [
            t.name for t in tokenize_fragment(pretty) if t.name
        ]
        assert names == ["r", "a", "b", "c"]


class TestStreamErrors:
    def test_unclosed_element_rejected(self):
        with pytest.raises(TokenStreamError):
            serialize([begin_element("a")])

    def test_unmatched_end_rejected(self):
        with pytest.raises(TokenStreamError):
            serialize([end_element()])

    def test_attribute_after_content_rejected(self):
        bad = [
            begin_element("a"),
            text("body"),
            begin_attribute("x"),
            attribute_value("1"),
            end_attribute(),
            end_element(),
        ]
        with pytest.raises(TokenStreamError):
            serialize(bad)

    def test_attribute_value_outside_attribute_rejected(self):
        with pytest.raises(TokenStreamError):
            serialize([attribute_value("v")])
