"""Unit tests for the pull XML parser."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmltoken.parser import iter_tokens, tokenize_document, tokenize_fragment
from repro.xmltoken.tokens import Token, TokenKind


def kinds(tokens):
    return [t.kind for t in tokens]


class TestElements:
    def test_empty_element_self_closed(self):
        tokens = tokenize_fragment("<a/>")
        assert kinds(tokens) == [TokenKind.BEGIN_ELEMENT, TokenKind.END_ELEMENT]
        assert tokens[0].name == "a"

    def test_empty_element_with_end_tag(self):
        tokens = tokenize_fragment("<a></a>")
        assert kinds(tokens) == [TokenKind.BEGIN_ELEMENT, TokenKind.END_ELEMENT]

    def test_paper_figure1(self):
        """The exact token stream from Figure 1 of the paper."""
        xml = "<ticket><hour>15</hour><name>Paul</name></ticket>"
        tokens = tokenize_fragment(xml)
        expected = [
            (TokenKind.BEGIN_ELEMENT, "ticket", ""),
            (TokenKind.BEGIN_ELEMENT, "hour", ""),
            (TokenKind.TEXT, "", "15"),
            (TokenKind.END_ELEMENT, "", ""),
            (TokenKind.BEGIN_ELEMENT, "name", ""),
            (TokenKind.TEXT, "", "Paul"),
            (TokenKind.END_ELEMENT, "", ""),
            (TokenKind.END_ELEMENT, "", ""),
        ]
        assert [(t.kind, t.name, t.value) for t in tokens] == expected

    def test_deeply_nested(self):
        depth = 50
        xml = "".join(f"<n{i}>" for i in range(depth)) + "".join(
            f"</n{i}>" for i in reversed(range(depth))
        )
        tokens = tokenize_fragment(xml)
        assert len(tokens) == depth * 2

    def test_mismatched_end_tag(self):
        with pytest.raises(XMLSyntaxError, match="does not match"):
            tokenize_fragment("<a></b>")

    def test_unclosed_element(self):
        with pytest.raises(XMLSyntaxError, match="unclosed"):
            tokenize_fragment("<a><b></b>")

    def test_stray_end_tag(self):
        with pytest.raises(XMLSyntaxError, match="no open element"):
            tokenize_fragment("</a>")

    def test_names_with_punctuation(self):
        tokens = tokenize_fragment("<ns:item-name.x_1/>")
        assert tokens[0].name == "ns:item-name.x_1"

    def test_whitespace_in_end_tag(self):
        tokens = tokenize_fragment("<a></a >")
        assert kinds(tokens) == [TokenKind.BEGIN_ELEMENT, TokenKind.END_ELEMENT]

    def test_error_positions_are_reported(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            tokenize_fragment("<a>\n  <b></c>\n</a>")
        assert excinfo.value.line == 2


class TestAttributes:
    def test_attribute_becomes_three_tokens(self):
        tokens = tokenize_fragment('<a id="7"/>')
        assert kinds(tokens) == [
            TokenKind.BEGIN_ELEMENT,
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.ATTRIBUTE_VALUE,
            TokenKind.END_ATTRIBUTE,
            TokenKind.END_ELEMENT,
        ]
        assert tokens[1].name == "id"
        assert tokens[2].value == "7"

    def test_multiple_attributes_in_order(self):
        tokens = tokenize_fragment('<a x="1" y="2"/>')
        names = [t.name for t in tokens if t.kind == TokenKind.BEGIN_ATTRIBUTE]
        assert names == ["x", "y"]

    def test_single_quoted_value(self):
        tokens = tokenize_fragment("<a x='it\"s'/>")
        assert tokens[2].value == 'it"s'

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate"):
            tokenize_fragment('<a x="1" x="2"/>')

    def test_unquoted_value_rejected(self):
        with pytest.raises(XMLSyntaxError, match="quoted"):
            tokenize_fragment("<a x=1/>")

    def test_entities_in_attribute_value(self):
        tokens = tokenize_fragment('<a x="&lt;&amp;&gt;"/>')
        assert tokens[2].value == "<&>"

    def test_lt_in_attribute_value_rejected(self):
        with pytest.raises(XMLSyntaxError, match="not allowed"):
            tokenize_fragment('<a x="a<b"/>')

    def test_whitespace_around_equals(self):
        tokens = tokenize_fragment('<a x = "1"/>')
        assert tokens[2].value == "1"


class TestNamespaces:
    def test_default_namespace_token(self):
        tokens = tokenize_fragment('<a xmlns="urn:x"/>')
        ns = [t for t in tokens if t.kind == TokenKind.NAMESPACE]
        assert len(ns) == 1
        assert ns[0].name == "" and ns[0].value == "urn:x"

    def test_prefixed_namespace_token(self):
        tokens = tokenize_fragment('<a xmlns:p="urn:y"/>')
        ns = [t for t in tokens if t.kind == TokenKind.NAMESPACE][0]
        assert ns.name == "p" and ns.value == "urn:y"

    def test_qnames_kept_verbatim(self):
        tokens = tokenize_fragment('<p:a xmlns:p="urn:y" p:attr="1"/>')
        assert tokens[0].name == "p:a"
        attrs = [t.name for t in tokens if t.kind == TokenKind.BEGIN_ATTRIBUTE]
        assert attrs == ["p:attr"]


class TestTextAndEntities:
    def test_text_between_elements(self):
        tokens = tokenize_fragment("<a>hello</a>")
        assert tokens[1] == Token(TokenKind.TEXT, value="hello")

    def test_predefined_entities(self):
        tokens = tokenize_fragment("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;a&apos;</a>")
        assert tokens[1].value == "<tag> & \"q\" 'a'"

    def test_decimal_character_reference(self):
        tokens = tokenize_fragment("<a>&#65;</a>")
        assert tokens[1].value == "A"

    def test_hex_character_reference(self):
        tokens = tokenize_fragment("<a>&#x41;&#x263A;</a>")
        assert tokens[1].value == "A☺"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            tokenize_fragment("<a>&nope;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unterminated entity"):
            tokenize_fragment("<a>&amp</a>")

    def test_cdata_is_literal_text(self):
        tokens = tokenize_fragment("<a><![CDATA[<raw> & stuff]]></a>")
        assert tokens[1].value == "<raw> & stuff"

    def test_mixed_content(self):
        tokens = tokenize_fragment("<a>one<b/>two</a>")
        texts = [t.value for t in tokens if t.kind == TokenKind.TEXT]
        assert texts == ["one", "two"]

    def test_whitespace_preserved_inside_elements(self):
        tokens = tokenize_fragment("<a>  spaced  </a>")
        assert tokens[1].value == "  spaced  "

    def test_unicode_text(self):
        tokens = tokenize_fragment("<a>héllo wörld ✓</a>")
        assert tokens[1].value == "héllo wörld ✓"


class TestCommentsAndPIs:
    def test_comment_token(self):
        tokens = tokenize_fragment("<a><!-- note --></a>")
        assert tokens[1].kind == TokenKind.COMMENT
        assert tokens[1].value == " note "

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError):
            tokenize_fragment("<a><!-- bad -- comment --></a>")

    def test_processing_instruction(self):
        tokens = tokenize_fragment('<a><?style href="x.css"?></a>')
        pi = tokens[1]
        assert pi.kind == TokenKind.PROCESSING_INSTRUCTION
        assert pi.name == "style"
        assert pi.value == 'href="x.css"'

    def test_pi_without_data(self):
        tokens = tokenize_fragment("<a><?flag?></a>")
        assert tokens[1].name == "flag" and tokens[1].value == ""

    def test_reserved_xml_target_rejected(self):
        with pytest.raises(XMLSyntaxError, match="reserved"):
            tokenize_fragment("<a><?xml version='1.0'?></a>")

    def test_top_level_comment_in_fragment(self):
        tokens = tokenize_fragment("<!--c--><a/>")
        assert tokens[0].kind == TokenKind.COMMENT


class TestFragments:
    def test_multiple_top_level_siblings(self):
        tokens = tokenize_fragment("<a/><b/>")
        names = [t.name for t in tokens if t.kind == TokenKind.BEGIN_ELEMENT]
        assert names == ["a", "b"]

    def test_top_level_text_allowed_in_fragment(self):
        tokens = tokenize_fragment("just text")
        assert tokens == [Token(TokenKind.TEXT, value="just text")]

    def test_empty_fragment(self):
        assert tokenize_fragment("") == []

    def test_whitespace_only_fragment(self):
        assert tokenize_fragment("  \n  ") == []


class TestDocuments:
    def test_document_is_bracketed(self):
        tokens = tokenize_document("<root/>")
        assert tokens[0].kind == TokenKind.BEGIN_DOCUMENT
        assert tokens[-1].kind == TokenKind.END_DOCUMENT

    def test_xml_declaration_skipped(self):
        tokens = tokenize_document('<?xml version="1.0" encoding="UTF-8"?>\n<root/>')
        assert tokens[1].name == "root"

    def test_doctype_skipped(self):
        tokens = tokenize_document('<!DOCTYPE html><root/>')
        assert tokens[1].name == "root"

    def test_doctype_with_internal_subset_skipped(self):
        xml = '<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r/>'
        tokens = tokenize_document(xml)
        assert tokens[1].name == "r"

    def test_multiple_roots_rejected(self):
        with pytest.raises(XMLSyntaxError, match="multiple root"):
            tokenize_document("<a/><b/>")

    def test_no_root_rejected(self):
        with pytest.raises(XMLSyntaxError, match="no root"):
            tokenize_document("<!-- only a comment -->")

    def test_top_level_text_rejected_in_document(self):
        with pytest.raises(XMLSyntaxError, match="outside the root"):
            tokenize_document("<a/>trailing")

    def test_iter_tokens_is_lazy(self):
        iterator = iter_tokens("<a><b/></a>")
        first = next(iterator)
        assert first.name == "a"
        rest = list(iterator)
        assert len(rest) == 3
