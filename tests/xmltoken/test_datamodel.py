"""Unit tests for data-model validation and structural helpers."""

import pytest

from repro.errors import TokenStreamError
from repro.xmltoken.datamodel import (
    depth_profile,
    node_end_offset,
    strip_document_tokens,
    subtree,
    top_level_nodes,
    validate_stream,
)
from repro.xmltoken.parser import tokenize_document, tokenize_fragment
from repro.xmltoken.tokens import (
    Token,
    TokenKind,
    attribute_value,
    begin_attribute,
    begin_document,
    begin_element,
    comment,
    end_attribute,
    end_document,
    end_element,
    namespace,
    text,
)


class TestValidateStream:
    def test_parser_output_always_validates(self):
        for xml in [
            "<a/>",
            '<a x="1" xmlns:p="u"><b>t</b><!--c--></a>',
            "<a/><b>text</b>",
            "",
        ]:
            validate_stream(tokenize_fragment(xml))

    def test_document_stream_validates(self):
        validate_stream(tokenize_document("<r><a/></r>"))

    def test_unclosed_element(self):
        with pytest.raises(TokenStreamError, match="unclosed"):
            validate_stream([begin_element("a")])

    def test_wrong_end_kind(self):
        with pytest.raises(TokenStreamError):
            validate_stream([begin_element("a"), end_attribute()])

    def test_unmatched_end(self):
        with pytest.raises(TokenStreamError, match="unmatched"):
            validate_stream([end_element()])

    def test_attribute_after_content_rejected(self):
        bad = [
            begin_element("a"),
            text("x"),
            begin_attribute("id"),
            attribute_value("1"),
            end_attribute(),
            end_element(),
        ]
        with pytest.raises(TokenStreamError, match="attribute position"):
            validate_stream(bad)

    def test_namespace_after_content_rejected(self):
        bad = [begin_element("a"), text("x"), namespace("p", "u"), end_element()]
        with pytest.raises(TokenStreamError):
            validate_stream(bad)

    def test_attribute_at_top_level_rejected(self):
        with pytest.raises(TokenStreamError):
            validate_stream([begin_attribute("x"), end_attribute()])

    def test_attribute_value_outside_attribute_rejected(self):
        with pytest.raises(TokenStreamError):
            validate_stream([attribute_value("v")])

    def test_element_inside_attribute_rejected(self):
        bad = [
            begin_element("a"),
            begin_attribute("x"),
            begin_element("nested"),
        ]
        with pytest.raises(TokenStreamError, match="inside an attribute"):
            validate_stream(bad)

    def test_nested_document_rejected(self):
        bad = [begin_document(), begin_document()]
        with pytest.raises(TokenStreamError, match="outermost"):
            validate_stream(bad)

    def test_document_disallowed_when_flagged(self):
        with pytest.raises(TokenStreamError):
            validate_stream([begin_document(), end_document()], allow_document=False)

    def test_unnamed_element_rejected(self):
        with pytest.raises(TokenStreamError, match="no name"):
            validate_stream([Token(TokenKind.BEGIN_ELEMENT), end_element()])

    def test_attributes_only_element_is_valid(self):
        tokens = tokenize_fragment('<a x="1" y="2"/>')
        validate_stream(tokens)


class TestNodeEndOffset:
    def test_atomic_node(self):
        tokens = [text("x")]
        assert node_end_offset(tokens, 0) == 1

    def test_element_node(self):
        tokens = tokenize_fragment("<a><b/><c/></a>")
        assert node_end_offset(tokens, 0) == len(tokens)

    def test_inner_element(self):
        tokens = tokenize_fragment("<a><b>t</b><c/></a>")
        # b starts at index 1, spans [begin, text, end] -> ends at 4
        assert node_end_offset(tokens, 1) == 4

    def test_attribute_node(self):
        tokens = tokenize_fragment('<a x="1"/>')
        assert node_end_offset(tokens, 1) == 4

    def test_non_starting_token_rejected(self):
        tokens = tokenize_fragment("<a/>")
        with pytest.raises(TokenStreamError):
            node_end_offset(tokens, 1)

    def test_unclosed_node_rejected(self):
        with pytest.raises(TokenStreamError, match="never closed"):
            node_end_offset([begin_element("a")], 0)


class TestSubtreeAndTopLevel:
    def test_subtree_extracts_complete_node(self):
        tokens = tokenize_fragment("<a><b>t</b><c/></a>")
        sub = subtree(tokens, 1)
        assert sub == tokenize_fragment("<b>t</b>")

    def test_top_level_nodes_of_forest(self):
        tokens = tokenize_fragment("<a/>text<b><c/></b>")
        slices = top_level_nodes(tokens)
        assert len(slices) == 3
        starts = [tokens[s] for s, _ in slices]
        assert starts[0].name == "a"
        assert starts[1].kind == TokenKind.TEXT
        assert starts[2].name == "b"

    def test_top_level_nodes_empty(self):
        assert top_level_nodes([]) == []


class TestDepthProfileAndStrip:
    def test_depth_profile(self):
        tokens = tokenize_fragment("<a><b/>x</a>")
        assert depth_profile(tokens) == [0, 1, 1, 1, 0]

    def test_strip_document_tokens(self):
        doc = tokenize_document("<r/>")
        assert strip_document_tokens(doc) == tokenize_fragment("<r/>")

    def test_strip_is_noop_for_fragment(self):
        frag = tokenize_fragment("<r/>")
        assert strip_document_tokens(frag) == frag

    def test_comment_node_is_atomic(self):
        tokens = [comment("c")]
        assert node_end_offset(tokens, 0) == 1
