"""Unit tests for ORDPATH labels."""

import pytest

from repro.errors import IdExhaustedError, IdOrderError
from repro.ids.ordpath import OrdpathScheme


@pytest.fixture
def scheme():
    return OrdpathScheme()


class TestGeneration:
    def test_root(self, scheme):
        assert scheme.label_root() == (1,)

    def test_first_child(self, scheme):
        assert scheme.first_child((1,)) == (1, 1)

    def test_next_sibling_skips_to_next_odd(self, scheme):
        assert scheme.next_sibling((1, 1)) == (1, 3)
        assert scheme.next_sibling((1, 3)) == (1, 5)

    def test_previous_sibling_slot(self, scheme):
        assert scheme.previous_sibling_slot((1, 1)) == (1, -1)
        assert scheme.previous_sibling_slot((1, 5)) == (1, 3)

    def test_invalid_caret_terminated_label_rejected(self, scheme):
        with pytest.raises(IdExhaustedError):
            scheme.next_sibling((1, 4))


class TestBetween:
    def test_simple_gap_uses_odd(self, scheme):
        assert scheme.between((1, 1), (1, 5)) == (1, 3)

    def test_adjacent_odds_caret_in(self, scheme):
        label = scheme.between((1, 3), (1, 5))
        assert label == (1, 4, 1)
        assert (1, 3) < label < (1, 5)

    def test_between_caret_and_next_odd(self, scheme):
        left = (1, 4, 1)
        right = (1, 5)
        label = scheme.between(left, right)
        assert left < label < right
        assert label[-1] % 2 == 1

    def test_between_odd_and_caret(self, scheme):
        left = (1, 3)
        right = (1, 4, 1)
        label = scheme.between(left, right)
        assert left < label < right
        assert not scheme.is_ancestor(left, label)
        assert not scheme.is_ancestor(label, right)

    def test_repeated_splitting_always_fits(self, scheme):
        """Insert 200 times into the same gap; order must always hold and
        no label is ever an ancestor of its neighbours."""
        left, right = (1, 1), (1, 3)
        for _ in range(200):
            mid = scheme.between(left, right)
            assert left < mid < right
            assert not scheme.is_ancestor(left, mid)
            assert not scheme.is_ancestor(mid, right)
            assert not scheme.is_ancestor(mid, left)
            right = mid  # keep inserting before the previous insert

    def test_repeated_splitting_after(self, scheme):
        left, right = (1, 1), (1, 3)
        for _ in range(200):
            mid = scheme.between(left, right)
            assert left < mid < right
            left = mid  # keep inserting after the previous insert

    def test_unordered_arguments_rejected(self, scheme):
        with pytest.raises(IdOrderError):
            scheme.between((1, 5), (1, 3))

    def test_ancestor_argument_rejected(self, scheme):
        with pytest.raises(IdOrderError):
            scheme.between((1,), (1, 1))

    def test_relabel_cost_is_zero(self, scheme):
        assert scheme.relabel_cost([(1, 1), (1, 3), (1, 5)], (1, 3)) == 0


class TestOrderAndAncestry:
    def test_document_order_comparator(self, scheme):
        assert scheme.document_order((1, 1), (1, 3)) < 0
        assert scheme.document_order((1, 3), (1, 1)) > 0
        assert scheme.document_order((1, 3), (1, 3)) == 0

    def test_parent_before_children(self, scheme):
        assert scheme.document_order((1,), (1, 1)) < 0

    def test_careted_label_orders_between_odds(self, scheme):
        assert (1, 3) < (1, 4, 1) < (1, 5)

    def test_is_ancestor(self, scheme):
        assert scheme.is_ancestor((1,), (1, 5, 3))
        assert scheme.is_ancestor((1, 5), (1, 5, 3))
        assert not scheme.is_ancestor((1, 5), (1, 7))
        assert not scheme.is_ancestor((1, 5), (1, 5))

    def test_caret_does_not_create_false_children(self, scheme):
        # (1, 4, 1) sits between (1, 3) and (1, 5) but descends from
        # neither sibling, only from the shared parent (1,)
        assert not scheme.is_ancestor((1, 3), (1, 4, 1))
        assert not scheme.is_ancestor((1, 5), (1, 4, 1))
        assert scheme.is_ancestor((1,), (1, 4, 1))

    def test_depth_ignores_carets(self, scheme):
        assert scheme.depth((1,)) == 1
        assert scheme.depth((1, 3)) == 2
        assert scheme.depth((1, 4, 1)) == 2  # careted sibling, same depth
        assert scheme.depth((1, 4, 1, 7)) == 3


class TestEncoding:
    def test_roundtrip(self, scheme):
        for label in [(1,), (1, 4, 1), (1, -3, 5), (2**20, 1)]:
            assert scheme.decode(scheme.encode(label)) == label

    def test_encoding_is_byte_comparable(self, scheme):
        labels = [(1,), (1, 1), (1, 3), (1, 4, 1), (1, 5), (3,), (1, -1)]
        by_tuple = sorted(labels)
        by_bytes = sorted(labels, key=scheme.encode)
        assert by_tuple == by_bytes

    def test_bad_length_rejected(self, scheme):
        with pytest.raises(IdExhaustedError):
            scheme.decode(b"\x00\x01")
