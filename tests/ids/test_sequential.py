"""Unit tests for the sequential store id scheme."""

import pytest

from repro.errors import IdSchemeError
from repro.ids.sequential import SequentialIdScheme
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.tokens import text


class TestAllocation:
    def test_first_interval_starts_at_one(self):
        scheme = SequentialIdScheme()
        assert scheme.allocate_interval(100) == (1, 100)

    def test_intervals_are_dense_and_disjoint(self):
        scheme = SequentialIdScheme()
        first = scheme.allocate_interval(100)
        second = scheme.allocate_interval(40)
        assert first == (1, 100)
        assert second == (101, 140)  # the paper's §4.5 example allocation

    def test_single_id_interval(self):
        scheme = SequentialIdScheme()
        assert scheme.allocate_interval(1) == (1, 1)

    def test_zero_count_rejected(self):
        with pytest.raises(IdSchemeError):
            SequentialIdScheme().allocate_interval(0)

    def test_custom_start(self):
        scheme = SequentialIdScheme(next_id=500)
        assert scheme.allocate_interval(2) == (500, 501)

    def test_bad_start_rejected(self):
        with pytest.raises(IdSchemeError):
            SequentialIdScheme(next_id=0)

    def test_high_water_mark(self):
        scheme = SequentialIdScheme()
        scheme.allocate_interval(10)
        assert scheme.high_water_mark == 11


class TestIdFactory:
    def test_factory_increments(self):
        scheme = SequentialIdScheme()
        assert scheme.next_id(60, text("x")) == 61

    def test_regeneration_matches_allocation(self):
        """Scanning a range's node-starting tokens regenerates exactly the
        allocated interval — the paper's low-storage-overhead trick."""
        scheme = SequentialIdScheme()
        tokens = tokenize_fragment("<a><b>1</b><c x='y'>2</c></a>")
        node_starts = [t for t in tokens if t.starts_node]
        first, last = scheme.allocate_interval(len(node_starts))
        current = first
        regenerated = [first]
        for token in node_starts[1:]:
            current = scheme.next_id(current, token)
            regenerated.append(current)
        assert regenerated == list(range(first, last + 1))


class TestCodecAndCatalog:
    def test_encode_decode_roundtrip(self):
        scheme = SequentialIdScheme()
        for value in [1, 60, 2**40]:
            assert scheme.decode(scheme.encode(value)) == value

    def test_bad_encoding_rejected(self):
        with pytest.raises(IdSchemeError):
            SequentialIdScheme().decode(b"abc")

    def test_catalog_roundtrip(self):
        scheme = SequentialIdScheme()
        scheme.allocate_interval(140)
        state = scheme.to_catalog()
        restored = SequentialIdScheme()
        restored.restore_catalog(state)
        assert restored.allocate_interval(1) == (141, 141)
