"""Unit tests for Dewey and pre/post labeling schemes."""

import pytest

from repro.errors import IdExhaustedError
from repro.ids.dewey import DeweyScheme
from repro.ids.prepost import PrePostLabel, PrePostLabeler
from repro.xmltoken.parser import tokenize_fragment


@pytest.fixture
def dewey():
    return DeweyScheme()


class TestDeweyGeneration:
    def test_root_and_children(self, dewey):
        root = dewey.label_root()
        first = dewey.first_child(root)
        second = dewey.next_sibling(first)
        assert root == (1,)
        assert first == (1, 1)
        assert second == (1, 2)

    def test_root_has_no_sibling(self, dewey):
        with pytest.raises(IdExhaustedError):
            dewey.next_sibling(())

    def test_between_with_gap(self, dewey):
        assert dewey.between((1, 1), (1, 5)) == (1, 2)

    def test_between_adjacent_requires_renumbering(self, dewey):
        with pytest.raises(IdExhaustedError):
            dewey.between((1, 1), (1, 2))

    def test_between_non_siblings_rejected(self, dewey):
        with pytest.raises(IdExhaustedError):
            dewey.between((1, 1), (2, 5))

    def test_parent_and_depth(self, dewey):
        assert dewey.parent((1, 2, 3)) == (1, 2)
        assert dewey.depth((1, 2, 3)) == 3
        with pytest.raises(IdExhaustedError):
            dewey.parent((1,))


class TestDeweyOrderAncestry:
    def test_document_order(self, dewey):
        assert dewey.document_order((1, 1), (1, 2)) < 0
        assert dewey.document_order((1,), (1, 1)) < 0
        assert dewey.document_order((1, 2), (1, 2)) == 0

    def test_is_ancestor(self, dewey):
        assert dewey.is_ancestor((1,), (1, 2, 3))
        assert not dewey.is_ancestor((1, 2), (1, 3))
        assert not dewey.is_ancestor((1, 2), (1, 2))

    def test_encoding_is_byte_comparable(self, dewey):
        labels = [(1,), (1, 1), (1, 2), (1, 10), (2,), (1, 2, 1)]
        assert sorted(labels) == sorted(labels, key=dewey.encode)

    def test_encoding_roundtrip(self, dewey):
        for label in [(1,), (1, 2, 3), (100, 200)]:
            assert dewey.decode(dewey.encode(label)) == label


class TestDeweyRelabeling:
    SIBLINGS = [(1, 1), (1, 2), (1, 3), (1, 3, 1), (1, 4)]

    def test_relabel_cost_counts_following_subtrees(self, dewey):
        # inserting after (1,2): (1,3), its child (1,3,1) and (1,4) move
        assert dewey.relabel_cost(self.SIBLINGS, (1, 2)) == 3

    def test_relabel_cost_at_end_is_zero(self, dewey):
        assert dewey.relabel_cost(self.SIBLINGS, (1, 4)) == 0

    def test_renumber_after_produces_moves(self, dewey):
        new_label, moves = dewey.renumber_after(self.SIBLINGS, (1, 2))
        assert new_label == (1, 3)
        assert dict(moves) == {
            (1, 3): (1, 4),
            (1, 3, 1): (1, 4, 1),
            (1, 4): (1, 5),
        }

    def test_renumber_preserves_order(self, dewey):
        new_label, moves = dewey.renumber_after(self.SIBLINGS, (1, 1))
        mapping = dict(moves)
        relabeled = sorted(mapping.get(l, l) for l in self.SIBLINGS)
        assert new_label not in relabeled
        assert relabeled == sorted(relabeled)


class TestPrePost:
    def labels_for(self, xml):
        return PrePostLabeler().label_stream(tokenize_fragment(xml))

    def test_single_element(self):
        assert self.labels_for("<a/>") == [PrePostLabel(0, 0)]

    def test_figure_tree(self):
        # <a><b/><c><d/></c></a>
        labels = self.labels_for("<a><b/><c><d/></c></a>")
        a, b, c, d = labels
        assert a == PrePostLabel(0, 3)
        assert b == PrePostLabel(1, 0)
        assert c == PrePostLabel(2, 2)
        assert d == PrePostLabel(3, 1)

    def test_containment(self):
        a, b, c, d = self.labels_for("<a><b/><c><d/></c></a>")
        labeler = PrePostLabeler()
        assert labeler.is_ancestor(a, d)
        assert labeler.is_ancestor(c, d)
        assert not labeler.is_ancestor(b, d)
        assert not labeler.is_ancestor(d, c)

    def test_document_order_by_pre(self):
        labels = self.labels_for("<a><b/><c/></a>")
        labeler = PrePostLabeler()
        assert labeler.document_order(labels[0], labels[1]) < 0
        assert labeler.document_order(labels[2], labels[1]) > 0

    def test_unbalanced_stream_rejected(self):
        from repro.errors import IdSchemeError
        from repro.xmltoken.tokens import begin_element

        with pytest.raises(IdSchemeError):
            PrePostLabeler().label_stream([begin_element("a")])

    def test_relabel_cost_is_linear_in_following_nodes(self):
        labels = self.labels_for("<r><a/><b/><c/><d/></r>")
        labeler = PrePostLabeler()
        # insert right after <a/>: pre=2, and post shifts from a's post+1=1
        cost = labeler.relabel_cost(labels, insert_pre=2, insert_post=1)
        # b, c, d shift pre; r, b? -> count: labels with pre>=2: b(2),c(3),d(4)
        # labels with post>=1: r(4), b? b.post=1 -> yes, c=2, d=3
        assert cost == 4  # r, b, c, d all move in some coordinate

    def test_insert_leaf_keeps_labels_consistent(self):
        labels = self.labels_for("<r><a/><b/></r>")
        labeler = PrePostLabeler()
        new_label, relabeled = labeler.insert_leaf(labels, insert_pre=2, insert_post=1)
        all_labels = relabeled + [new_label]
        pres = sorted(l.pre for l in all_labels)
        posts = sorted(l.post for l in all_labels)
        assert pres == list(range(len(all_labels)))
        assert posts == list(range(len(all_labels)))

    def test_encode(self):
        data = PrePostLabeler.encode(PrePostLabel(1, 2))
        assert len(data) == 8
