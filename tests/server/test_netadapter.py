"""Asyncio socket adapter (repro.server.netadapter): the deterministic
core served over a real TCP socket, exercised with the blocking one-shot
client the CLI uses.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.core.store import XMLStore
from repro.server.netadapter import AsyncXMLServer, client_request
from repro.server.sessions import XMLServer

BASE = "<lib><a>one</a><b>two</b></lib>"


class ServerThread:
    """Run one AsyncXMLServer on a private event loop in a thread."""

    def __init__(self):
        store = XMLStore.open()
        store.load_document(BASE)
        self.store = store
        self.adapter = AsyncXMLServer(XMLServer(store))
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._serve())

    async def _serve(self):
        await self.adapter.start()
        self._ready.set()
        await self.adapter.serve_until_shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server did not come up"
        return self

    def __exit__(self, *exc_info):
        if self._thread.is_alive():
            try:
                client_request("127.0.0.1", self.adapter.port, {"cmd": "shutdown"})
            except OSError:  # pragma: no cover - already down
                pass
        self._thread.join(timeout=10)
        assert not self._thread.is_alive()

    def request(self, payload):
        return client_request("127.0.0.1", self.adapter.port, payload)


def test_ping_round_trip():
    with ServerThread() as server:
        assert server.request({"cmd": "ping"}) == {"ok": True, "pong": True}


def test_writer_session_commits_over_the_wire():
    with ServerThread() as server:
        response = server.request(
            {
                "cmd": "session",
                "ops": [
                    {"op": "insert_into_last", "node_id": 1, "xml": "<c>three</c>"},
                    {"op": "read", "node_id": 2},
                ],
            }
        )
        assert response["ok"] is True
        assert response["outcome"] == "committed"
        assert isinstance(response["results"][0], int)  # the new node's id
        assert response["results"][1] == "<a>one</a>"
        assert "<c>three</c>" in server.store.read()


def test_read_only_session_uses_a_snapshot():
    with ServerThread() as server:
        response = server.request(
            {"cmd": "session", "read_only": True, "ops": [{"op": "read"}]}
        )
        assert response["ok"] is True
        assert response["results"] == [BASE]
        stats = server.request({"cmd": "stats"})
        assert stats["stats"]["snapshot_reads"] == 1


def test_failing_session_reports_its_error():
    with ServerThread() as server:
        response = server.request(
            {
                "cmd": "session",
                "ops": [{"op": "delete_node", "node_id": 999}],
            }
        )
        assert response["ok"] is False
        assert response["outcome"] == "error"
        assert "NodeNotFoundError" in response["error"]


def test_stats_exposes_server_and_wal_counters():
    with ServerThread() as server:
        server.request(
            {
                "cmd": "session",
                "ops": [{"op": "insert_into_last", "node_id": 1, "xml": "<x>y</x>"}],
            }
        )
        stats = server.request({"cmd": "stats"})
        assert stats["ok"] is True
        assert stats["stats"]["sessions_committed"] == 1
        assert stats["wal"]["appends"] >= 1
        assert stats["requests_served"] == 2
        assert stats["batches_driven"] == 1


def test_unknown_command_is_rejected():
    with ServerThread() as server:
        response = server.request({"cmd": "defragment"})
        assert response["ok"] is False
        assert "unknown cmd" in response["error"]


def test_malformed_line_gets_a_bad_request_reply():
    with ServerThread() as server:
        with socket.create_connection(
            ("127.0.0.1", server.adapter.port), timeout=10
        ) as conn:
            conn.sendall(b"this is not json\n")
            raw = conn.makefile().readline()
        response = json.loads(raw)
        assert response["ok"] is False
        assert "bad request" in response["error"]


def test_shutdown_command_stops_the_loop():
    server = ServerThread()
    with server:
        response = server.request({"cmd": "shutdown"})
        assert response == {"ok": True, "stopping": True}
        server._thread.join(timeout=10)
        assert not server._thread.is_alive()
