"""XMLServer front-end: admission control, scheduling outcomes, and the
run report (repro.server.sessions + scheduler).
"""

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ConcurrencyError, SessionLimitError
from repro.server.sessions import Session, SessionOp, XMLServer

BASE = "<lib><a>one</a><b>two</b></lib>"
# ids: 1=lib, 2=a, 3=text, 4=b, 5=text


def make_server(**config_kwargs):
    store = XMLStore.open(StoreConfig(**config_kwargs))
    store.load_document(BASE)
    return store, XMLServer(store)


def write_program(tag="w"):
    return [SessionOp("insert_into_last", 1, f"<{tag}>x</{tag}>")]


class TestAdmission:
    def test_submissions_beyond_the_slots_queue_up(self):
        store, server = make_server(server_max_sessions=2, server_max_queue_depth=4)
        first = server.submit(write_program("p"))
        second = server.submit(write_program("q"))
        third = server.submit(write_program("r"))
        assert server.sessions == [first, second]
        assert server.backlog == [third]
        assert server.stats.sessions_admitted == 2
        assert server.stats.sessions_queued == 1

    def test_full_backlog_sheds_with_an_error(self):
        store, server = make_server(server_max_sessions=1, server_max_queue_depth=1)
        server.submit(write_program("p"))
        server.submit(write_program("q"))
        with pytest.raises(SessionLimitError):
            server.submit(write_program("r"))
        assert server.stats.sessions_shed == 1
        assert server.stats.sessions_submitted == 3

    def test_shed_session_never_runs(self):
        store, server = make_server(server_max_sessions=1, server_max_queue_depth=0)
        server.submit(write_program("p"))
        try:
            server.submit(write_program("dropped"))
        except SessionLimitError:
            pass
        report = server.run()
        assert report.outcomes == {1: "committed"}
        assert "dropped" not in store.read()

    def test_backlog_drains_as_slots_free_up(self):
        store, server = make_server(server_max_sessions=1, server_max_queue_depth=8)
        sessions = [server.submit(write_program(f"t{i}")) for i in range(4)]
        server.run()
        assert all(s.outcome == "committed" for s in sessions)
        assert server.stats.sessions_admitted == 4
        for i in range(4):
            assert f"<t{i}>" in store.read()


class TestOutcomes:
    def test_report_collects_outcomes_results_and_wal_counters(self):
        store, server = make_server()
        writer = server.submit(
            [SessionOp("insert_into_last", 1, "<c>three</c>"), SessionOp("read", 2)]
        )
        report = server.run()
        assert report.outcomes == {writer.session_id: "committed"}
        assert report.results[writer.session_id][1] == "<a>one</a>"
        assert report.stats["sessions_committed"] == 1
        assert report.sync_barriers == store.wal.sync_barriers
        data = report.to_dict()
        assert data["schema"] == "repro.server.report/v1"
        assert data["outcomes"] == {"1": "committed"}

    def test_explicit_abort_rolls_the_session_back(self):
        store, server = make_server()
        session = server.submit(
            [SessionOp("replace_content", 2, "DOOMED"), SessionOp("abort")]
        )
        server.run()
        assert session.outcome == "aborted"
        assert store.read() == BASE

    def test_store_error_aborts_only_the_failing_session(self):
        store, server = make_server()
        failing = server.submit(
            [
                SessionOp("replace_content", 2, "LOST"),
                SessionOp("delete_node", 999),
            ]
        )
        healthy = server.submit(write_program("ok"))
        server.run()
        assert failing.outcome == "error"
        assert "NodeNotFoundError" in failing.error
        assert healthy.outcome == "committed"
        assert "LOST" not in store.read()
        assert "<ok>" in store.read()
        assert server.stats.errors == 1

    def test_deadlock_victim_is_deterministic(self):
        def run_once():
            store, server = make_server()
            program = [SessionOp("read", 2), SessionOp("replace_content", 2, "MINE")]
            first = server.submit(list(program))
            second = server.submit(list(program))
            # strict alternation: both take S on the hot range, then both
            # try to widen to X — the second widening closes the cycle
            server.run(script=[0, 1] * 32)
            return first.outcome, second.outcome, server.stats.deadlocks

        outcomes = run_once()
        assert outcomes == run_once()  # same script, same victim
        first_outcome, second_outcome, deadlocks = outcomes
        assert deadlocks == 1
        assert sorted([first_outcome, second_outcome]) == ["committed", "deadlock"]

    def test_lock_wait_suspends_and_resumes_the_loser(self):
        store, server = make_server()
        first = server.submit(
            [SessionOp("replace_content", 2, "FIRST"), SessionOp("read", 4)]
        )
        second = server.submit([SessionOp("replace_content", 2, "SECOND")])
        server.run(script=[0, 1] * 64)
        assert first.outcome == "committed"
        assert second.outcome == "committed"
        assert server.stats.lock_waits >= 1
        # strict 2PL: the waiter ran after the holder committed
        assert "SECOND" in store.read()


class TestGroupCommitReporting:
    def test_report_shows_batched_commits(self):
        store, server = make_server(server_group_commit_max_batch=8)
        sessions = [server.submit(write_program(f"g{i}")) for i in range(3)]
        report = server.run()
        assert all(s.durable for s in sessions)
        assert report.group_commits >= 1
        assert sum(report.group_commit_batches) == 3

    def test_per_commit_mode_reports_no_groups(self):
        store, server = make_server(server_group_commit=False)
        [server.submit(write_program(f"g{i}")) for i in range(3)]
        report = server.run()
        assert report.group_commits == 0
        assert report.group_commit_batches == []

    def test_read_only_commit_skips_the_durability_wait(self):
        store, server = make_server()
        reader = server.submit([SessionOp("read")], read_only=True)
        writer_without_changes = server.submit([SessionOp("read", 2)])
        server.run()
        assert reader.outcome == "committed"
        assert writer_without_changes.outcome == "committed"
        # nothing was written: no commit frames, no barriers paid
        assert store.wal.group_commits == 0


class TestDeterminism:
    def test_same_script_gives_identical_traces(self):
        def run_once():
            store, server = make_server()
            server.submit(write_program("p"))
            server.submit(write_program("q"))
            report = server.run(script=[1, 0, 1, 1, 0, 0] * 8)
            return report.trace, store.wal.to_bytes(), store.read()

        assert run_once() == run_once()

    def test_seeded_runs_are_reproducible(self):
        def run_once(seed):
            store, server = make_server()
            server.submit(write_program("p"))
            server.submit(write_program("q"))
            report = server.run(seed=seed)
            return report.to_dict()

        assert run_once(5) == run_once(5)


class TestSessionValidation:
    def test_unknown_writer_op_is_rejected(self):
        store, server = make_server()
        server.submit([SessionOp("defragment")])
        # a malformed program is a harness bug, not a session outcome:
        # it surfaces loudly instead of silently aborting
        with pytest.raises(ConcurrencyError):
            server.run()

    def test_reader_program_rejects_mutations(self):
        store, server = make_server()
        server.submit(
            [SessionOp("insert_into_last", 1, "<x>no</x>")], read_only=True
        )
        with pytest.raises(ConcurrencyError):
            server.run()
        assert store.read() == BASE
