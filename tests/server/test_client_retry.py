"""Client reconnect (repro.server.netadapter.client_request): a real
server killed and restarted mid-batch, the capped retry/backoff budget,
and the typed exhaustion error — satellite of the replication PR's
fault-tolerance contract."""

import socket
import threading
import time

import pytest

from repro.core.store import XMLStore
from repro.errors import ServerUnavailableError
from repro.server.netadapter import AsyncXMLServer, client_request
from repro.server.sessions import XMLServer

BASE = "<lib><a>one</a></lib>"


def _free_port():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class RestartableServer:
    """A server pinned to one port so a restart lands where the client
    is already retrying."""

    def __init__(self, port):
        self.port = port
        self.store = XMLStore.open()
        self.store.load_document(BASE)
        self._thread = None

    def start(self):
        import asyncio

        adapter = AsyncXMLServer(XMLServer(self.store), port=self.port)
        ready = threading.Event()

        async def serve():
            await adapter.start()
            ready.set()
            await adapter.serve_until_shutdown()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(serve()), daemon=True
        )
        self._thread.start()
        assert ready.wait(timeout=10), "server did not come up"

    def stop(self):
        if self._thread is None or not self._thread.is_alive():
            return
        try:
            client_request("127.0.0.1", self.port, {"cmd": "shutdown"})
        except OSError:  # pragma: no cover - already down
            pass
        self._thread.join(timeout=10)
        assert not self._thread.is_alive()


@pytest.fixture
def server():
    instance = RestartableServer(_free_port())
    instance.start()
    yield instance
    instance.stop()


class TestReconnect:
    def test_client_survives_a_server_restart_mid_batch(self, server):
        # half the batch lands on the first incarnation
        for index in range(3):
            response = client_request(
                "127.0.0.1", server.port,
                {"cmd": "session", "ops": [
                    {"op": "insert_into_last", "node_id": 1,
                     "xml": f"<c>{index}</c>"},
                ]},
            )
            assert response["outcome"] == "committed"
        server.stop()

        # the server comes back on the same port while the client is
        # already inside its backoff loop
        restarter = threading.Timer(0.4, server.start)
        restarter.start()
        try:
            for index in range(3, 6):
                response = client_request(
                    "127.0.0.1", server.port,
                    {"cmd": "session", "ops": [
                        {"op": "insert_into_last", "node_id": 1,
                         "xml": f"<c>{index}</c>"},
                    ]},
                    retries=6, retry_backoff=0.1,
                )
                assert response["outcome"] == "committed"
        finally:
            restarter.join()

        # nothing was lost across the outage: the whole batch is there
        text = client_request(
            "127.0.0.1", server.port,
            {"cmd": "session", "read_only": True, "ops": [{"op": "read"}]},
        )["results"][0]
        assert all(f"<c>{index}</c>" in text for index in range(6))

    def test_exhausted_budget_is_typed_with_attempt_count(self):
        dead_port = _free_port()
        started = time.monotonic()
        with pytest.raises(ServerUnavailableError) as failure:
            client_request(
                "127.0.0.1", dead_port, {"cmd": "ping"},
                timeout=1.0, retries=3, retry_backoff=0.01,
            )
        assert failure.value.attempts == 4
        assert failure.value.exit_code == 1
        assert "4 attempt(s)" in str(failure.value)
        # backoff is real wall time but bounded: 0.01+0.02+0.04 plus slack
        assert time.monotonic() - started < 10

    def test_default_client_fails_fast_without_retries(self):
        with pytest.raises(ServerUnavailableError) as failure:
            client_request("127.0.0.1", _free_port(), {"cmd": "ping"})
        assert failure.value.attempts == 1
