"""Unit tests for XPath evaluation against the store."""

import pytest

from repro.core.store import XMLStore

CATALOG = """
<catalog>
  <book year="1994" id="b1">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
    <price>65.95</price>
  </book>
  <book year="2000" id="b2">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Buneman</author>
    <price>39.95</price>
  </book>
  <magazine id="m1">
    <title>National Geographic</title>
    <price>9.95</price>
  </magazine>
</catalog>
"""


@pytest.fixture
def store():
    s = XMLStore.open()
    s.load_document(CATALOG.strip())
    return s


def names(results):
    return [r.name for r in results]


def strings(results):
    return [r.string_value for r in results]


class TestSteps:
    def test_root_step(self, store):
        assert names(store.xpath("/catalog")) == ["catalog"]

    def test_child_path(self, store):
        assert len(store.xpath("/catalog/book")) == 2

    def test_descendant(self, store):
        assert len(store.xpath("//title")) == 3

    def test_descendant_from_element(self, store):
        assert len(store.xpath("/catalog/book//author")) == 3

    def test_wildcard(self, store):
        assert len(store.xpath("/catalog/*")) == 3

    def test_attribute_step(self, store):
        results = store.xpath("/catalog/book/@id")
        assert strings(results) == ["b1", "b2"]

    def test_attribute_wildcard(self, store):
        results = store.xpath("/catalog/book/@*")
        assert strings(results) == ["1994", "b1", "2000", "b2"]

    def test_text_step(self, store):
        results = store.xpath("/catalog/magazine/title/text()")
        assert strings(results) == ["National Geographic"]

    def test_parent_step(self, store):
        results = store.xpath("//author/..")
        assert set(names(results)) == {"book"}
        assert len(results) == 2  # de-duplicated

    def test_self_step(self, store):
        assert names(store.xpath("/catalog/.")) == ["catalog"]

    def test_no_match(self, store):
        assert store.xpath("/catalog/nothing") == []

    def test_results_in_document_order(self, store):
        results = store.xpath("//price")
        values = [float(r.string_value) for r in results]
        assert values == [65.95, 39.95, 9.95]


class TestPredicates:
    def test_positional(self, store):
        results = store.xpath("/catalog/book[2]")
        assert strings(store.xpath("/catalog/book[2]/title")) == ["Data on the Web"]
        assert len(results) == 1

    def test_position_function(self, store):
        results = store.xpath("/catalog/book[position() = 1]/title")
        assert strings(results) == ["TCP/IP Illustrated"]

    def test_last_function(self, store):
        results = store.xpath("/catalog/book[last()]/@id")
        assert strings(results) == ["b2"]

    def test_numeric_comparison(self, store):
        results = store.xpath("/catalog/book[price > 40]/title")
        assert strings(results) == ["TCP/IP Illustrated"]

    def test_numeric_comparison_lte(self, store):
        results = store.xpath("//book[price <= 39.95]/@id")
        assert strings(results) == ["b2"]

    def test_string_equality(self, store):
        results = store.xpath("/catalog/book[author = 'Stevens']/@id")
        assert strings(results) == ["b1"]

    def test_attribute_comparison(self, store):
        results = store.xpath("/catalog/book[@year = '2000']/title")
        assert strings(results) == ["Data on the Web"]

    def test_attribute_numeric_comparison(self, store):
        results = store.xpath("/catalog/book[@year < 1999]/@id")
        assert strings(results) == ["b1"]

    def test_existence(self, store):
        # both books have authors; the magazine does not
        assert len(store.xpath("/catalog/*[author]")) == 2

    def test_not_function(self, store):
        results = store.xpath("/catalog/*[not(author)]")
        assert names(results) == ["magazine"]

    def test_count_function(self, store):
        results = store.xpath("/catalog/book[count(author) = 2]/@id")
        assert strings(results) == ["b2"]

    def test_contains_function(self, store):
        results = store.xpath("/catalog/book[contains(title, 'Web')]/@id")
        assert strings(results) == ["b2"]

    def test_and_predicate(self, store):
        results = store.xpath("/catalog/book[price > 30 and @year = '2000']")
        assert len(results) == 1

    def test_or_predicate(self, store):
        results = store.xpath("/catalog/*[author = 'Stevens' or price < 10]")
        assert len(results) == 2

    def test_multiple_predicates_chain(self, store):
        results = store.xpath("/catalog/book[author][1]/@id")
        assert strings(results) == ["b1"]

    def test_set_comparison_any_semantics(self, store):
        # book 2 has two authors; = matches if ANY equals
        results = store.xpath("/catalog/book[author = 'Buneman']/@id")
        assert strings(results) == ["b2"]


class TestStoreIntegration:
    def test_results_carry_store_node_ids(self, store):
        result = store.xpath("/catalog/book[1]")[0]
        assert result.node_id is not None
        assert store.read(result.node_id).startswith('<book year="1994"')

    def test_xml_rendering(self, store):
        result = store.xpath("//magazine/title")[0]
        assert result.xml() == "<title>National Geographic</title>"

    def test_attribute_xml_rendering(self, store):
        result = store.xpath("/catalog/book[1]/@id")[0]
        assert result.xml() == 'id="b1"'

    def test_query_after_update(self, store):
        book_id = store.xpath("/catalog/book[1]")[0].node_id
        store.insert_into_last(book_id, "<price>99.00</price>")
        results = store.xpath("/catalog/book[price > 90]")
        assert len(results) == 1

    def test_query_after_delete(self, store):
        magazine = store.xpath("//magazine")[0]
        store.delete_node(magazine.node_id)
        assert store.xpath("//magazine") == []
        assert len(store.xpath("//title")) == 2

    def test_string_value_of_element(self, store):
        result = store.xpath("/catalog/magazine")[0]
        assert "National Geographic" in result.string_value
        assert "9.95" in result.string_value
