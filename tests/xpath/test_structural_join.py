"""Unit tests for the stack-based structural join."""

import pytest

from repro.core.store import XMLStore
from repro.ids.prepost import PrePostLabel
from repro.xpath.structural_join import (
    LabeledElement,
    containment_query,
    label_elements,
    stack_tree_desc,
)


def element(name, pre, post, node_id=0):
    return LabeledElement(name, PrePostLabel(pre, post), node_id)


class TestStackTreeDesc:
    # labels use region numbering: one counter ticking on begin AND end

    def test_simple_containment(self):
        # <a><b/></a>: a=(0,3), b=(1,2)
        a = element("a", 0, 3)
        b = element("b", 1, 2)
        pairs = stack_tree_desc([a], [b])
        assert pairs == [(a, b)]

    def test_no_containment(self):
        # <a/><b/>: a=(0,1), b=(2,3)
        a = element("a", 0, 1)
        b = element("b", 2, 3)
        assert stack_tree_desc([a], [b]) == []

    def test_nested_ancestors_all_pair(self):
        # <a><a><b/></a></a>: outer=(0,5), inner=(1,4), b=(2,3)
        outer = element("a", 0, 5, 1)
        inner = element("a", 1, 4, 2)
        b = element("b", 2, 3, 3)
        pairs = stack_tree_desc([outer, inner], [b])
        assert len(pairs) == 2
        assert {p[0].node_id for p in pairs} == {1, 2}

    def test_multiple_descendants(self):
        # <a><b/><c><b/></c></a>: a=(0,7), b1=(1,2), c=(3,6), b2=(4,5)
        a = element("a", 0, 7)
        b1 = element("b", 1, 2)
        b2 = element("b", 4, 5)
        pairs = stack_tree_desc([a], [b1, b2])
        assert len(pairs) == 2

    def test_empty_inputs(self):
        assert stack_tree_desc([], []) == []
        assert stack_tree_desc([element("a", 0, 1)], []) == []
        assert stack_tree_desc([], [element("b", 0, 1)]) == []

    def test_siblings_do_not_pair(self):
        # <r><a/><b/></r>: a=(1,2), b=(3,4)
        a = element("a", 1, 2)
        b = element("b", 3, 4)
        assert stack_tree_desc([a], [b]) == []


class TestLabelElements:
    def test_labels_match_store_scan(self):
        store = XMLStore.open()
        store.load_document("<a><b/><c><d/></c></a>")
        groups = label_elements(store)
        assert set(groups) == {"a", "b", "c", "d"}
        a = groups["a"][0]
        d = groups["d"][0]
        assert a.label.contains(d.label)
        assert not groups["b"][0].label.contains(d.label)

    def test_node_ids_are_store_ids(self):
        store = XMLStore.open()
        store.load_document("<a><b/></a>")
        groups = label_elements(store)
        assert store.read(groups["b"][0].node_id) == "<b/>"

    def test_groups_sorted_by_document_order(self):
        store = XMLStore.open()
        store.load_document("<r><x n='1'/><y><x n='2'/></y><x n='3'/></r>")
        xs = label_elements(store)["x"]
        ids = [e.node_id for e in xs]
        assert ids == sorted(ids)


class TestContainmentQuery:
    def test_matches_navigational_evaluation(self):
        store = XMLStore.open()
        store.load_document(
            "<lib><shelf><book><title/></book></shelf><book><title/></book></lib>"
        )
        join_pairs = containment_query(store, "book", "title")
        nav_titles = {r.node_id for r in store.xpath("//book//title")}
        assert {d for _, d in join_pairs} == nav_titles
        assert len(join_pairs) == 2

    def test_recursive_elements(self):
        store = XMLStore.open()
        store.load_document("<part><part><part/></part></part>")
        pairs = containment_query(store, "part", "part")
        # outer contains middle+inner, middle contains inner: 3 pairs
        assert len(pairs) == 3

    def test_missing_names(self):
        store = XMLStore.open()
        store.load_document("<a/>")
        assert containment_query(store, "a", "nope") == []
        assert containment_query(store, "nope", "a") == []
