"""Unit tests for the XPath parser."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    Axis,
    BooleanOp,
    Comparison,
    FunctionCall,
    NumberLiteral,
    Path,
    StringLiteral,
)
from repro.xpath.ast import TestKind as NodeTestKind
from repro.xpath.parser import parse


class TestPaths:
    def test_absolute_child_path(self):
        path = parse("/a/b/c")
        assert path.absolute
        assert [s.test.name for s in path.steps] == ["a", "b", "c"]
        assert all(s.axis is Axis.CHILD for s in path.steps)

    def test_relative_path(self):
        path = parse("a/b")
        assert not path.absolute

    def test_descendant_axis(self):
        path = parse("//item")
        assert path.steps[0].axis is Axis.DESCENDANT_OR_SELF
        assert path.steps[0].test.name == "item"

    def test_descendant_in_middle(self):
        path = parse("/a//b")
        assert path.steps[1].axis is Axis.DESCENDANT_OR_SELF

    def test_attribute_step(self):
        path = parse("/a/@id")
        assert path.steps[1].axis is Axis.ATTRIBUTE
        assert path.steps[1].test.name == "id"

    def test_wildcard(self):
        path = parse("/a/*")
        assert path.steps[1].test.kind is NodeTestKind.WILDCARD

    def test_text_node_test(self):
        path = parse("/a/text()")
        assert path.steps[1].test.kind is NodeTestKind.TEXT

    def test_dot_and_dotdot(self):
        path = parse("./../a")
        assert path.steps[0].axis is Axis.SELF
        assert path.steps[1].axis is Axis.PARENT

    def test_qname_with_prefix(self):
        path = parse("/ns:item")
        assert path.steps[0].test.name == "ns:item"

    def test_element_named_like_function(self):
        # "text" without parens is an ordinary element name
        path = parse("/text")
        assert path.steps[0].test.kind is NodeTestKind.NAME


class TestPredicates:
    def test_positional_predicate(self):
        path = parse("/a/b[2]")
        predicate = path.steps[1].predicates[0]
        assert isinstance(predicate, NumberLiteral)
        assert predicate.value == 2.0

    def test_comparison_predicate(self):
        path = parse("/a/b[price > 10]")
        predicate = path.steps[1].predicates[0]
        assert isinstance(predicate, Comparison)
        assert predicate.op == ">"
        assert isinstance(predicate.left, Path)
        assert isinstance(predicate.right, NumberLiteral)

    def test_string_comparison(self):
        path = parse("/a[b = 'x']")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate.right, StringLiteral)
        assert predicate.right.value == "x"

    def test_attribute_in_predicate(self):
        path = parse("/a[@id = '7']")
        predicate = path.steps[0].predicates[0]
        assert predicate.left.steps[0].axis is Axis.ATTRIBUTE

    def test_existence_predicate(self):
        path = parse("/a[b]")
        assert isinstance(path.steps[0].predicates[0], Path)

    def test_and_or(self):
        path = parse("/a[b and c or d]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, BooleanOp)
        assert predicate.op == "or"
        assert isinstance(predicate.operands[0], BooleanOp)

    def test_multiple_predicates(self):
        path = parse("/a/b[c][2]")
        assert len(path.steps[1].predicates) == 2

    def test_function_calls(self):
        path = parse("/a[position() < last()]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate.left, FunctionCall)
        assert predicate.left.name == "position"

    def test_count_function(self):
        path = parse("/a[count(b) = 2]")
        predicate = path.steps[0].predicates[0]
        assert predicate.left.name == "count"

    def test_contains_function(self):
        path = parse("/a[contains(name, 'Pa')]")
        predicate = path.steps[0].predicates[0]
        assert predicate.name == "contains"
        assert len(predicate.args) == 2

    def test_not_function(self):
        path = parse("/a[not(b)]")
        assert path.steps[0].predicates[0].name == "not"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "/a[",
            "/a]",
            "/a[b",
            "/a[]",
            "a b",
            "/a[count()]",
            "/a[contains(x)]",
            "//@id",
            "/a[$var]",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse(bad)

    def test_roundtrip_str(self):
        # ast __str__ gives something parseable for simple paths
        path = parse("/a/b[2]/@id")
        reparsed = parse(str(path))
        assert str(reparsed) == str(path)
