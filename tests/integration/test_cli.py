"""Integration tests for the command-line interface."""

import io

import pytest

from repro.cli import run


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


class TestCLI:
    def test_load_from_file_and_read(self, store_dir, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<r><a/></r>")
        out = run([store_dir, "load", str(doc)])
        assert "first node id = 1" in out
        assert run([store_dir, "read"]) == "<r><a/></r>"

    def test_load_from_stdin(self, store_dir):
        out = run([store_dir, "load", "-"], stdin=io.StringIO("<x>hi</x>"))
        assert "first node id" in out
        assert run([store_dir, "read"]) == "<x>hi</x>"

    def test_read_single_node(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>1</a></r>"))
        assert run([store_dir, "read", "2"]) == "<a>1</a>"

    def test_pretty_read(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a><b/></a></r>"))
        out = run([store_dir, "read", "--pretty"])
        assert "\n" in out

    def test_xpath(self, store_dir):
        run([store_dir, "load", "-"],
            stdin=io.StringIO("<r><a n='1'/><a n='2'/></r>"))
        out = run([store_dir, "xpath", "/r/a[@n = '2']"])
        assert out.startswith("1 match(es)")
        assert 'n="2"' in out

    def test_updates_persist_across_invocations(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<log/>"))
        run([store_dir, "insert-last", "1", "<e1/>"])
        run([store_dir, "insert-last", "1", "<e2/>"])
        run([store_dir, "insert-before", "2", "<e0/>"])
        assert run([store_dir, "read"]) == "<log><e0/><e1/><e2/></log>"

    def test_delete_and_replace(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/><b/></r>"))
        run([store_dir, "delete", "2"])
        run([store_dir, "replace", "3", "<B/>"])
        assert run([store_dir, "read"]) == "<r><B/></r>"

    def test_ranges_snapshot(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        out = run([store_dir, "ranges"])
        assert "RangeId" in out
        assert len(out.splitlines()) >= 2

    def test_stats(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "stats"])
        assert "operations" in out

    def test_compact(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        for index in range(4):
            run([store_dir, "insert-last", "1", f"<e{index}/>"])
        out = run([store_dir, "compact"])
        assert "compacted" in out
        assert run([store_dir, "verify"]) == "integrity ok"

    def test_verify(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        assert run([store_dir, "verify"]) == "integrity ok"

    def test_error_surfaces_as_repro_error(self, store_dir):
        from repro.errors import NodeNotFoundError

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        with pytest.raises(NodeNotFoundError):
            run([store_dir, "delete", "99"])
