"""Integration tests for the command-line interface."""

import io

import pytest

from repro.cli import run


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "store")


class TestCLI:
    def test_load_from_file_and_read(self, store_dir, tmp_path):
        doc = tmp_path / "doc.xml"
        doc.write_text("<r><a/></r>")
        out = run([store_dir, "load", str(doc)])
        assert "first node id = 1" in out
        assert run([store_dir, "read"]) == "<r><a/></r>"

    def test_load_from_stdin(self, store_dir):
        out = run([store_dir, "load", "-"], stdin=io.StringIO("<x>hi</x>"))
        assert "first node id" in out
        assert run([store_dir, "read"]) == "<x>hi</x>"

    def test_read_single_node(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>1</a></r>"))
        assert run([store_dir, "read", "2"]) == "<a>1</a>"

    def test_pretty_read(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a><b/></a></r>"))
        out = run([store_dir, "read", "--pretty"])
        assert "\n" in out

    def test_xpath(self, store_dir):
        run([store_dir, "load", "-"],
            stdin=io.StringIO("<r><a n='1'/><a n='2'/></r>"))
        out = run([store_dir, "xpath", "/r/a[@n = '2']"])
        assert out.startswith("1 match(es)")
        assert 'n="2"' in out

    def test_updates_persist_across_invocations(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<log/>"))
        run([store_dir, "insert-last", "1", "<e1/>"])
        run([store_dir, "insert-last", "1", "<e2/>"])
        run([store_dir, "insert-before", "2", "<e0/>"])
        assert run([store_dir, "read"]) == "<log><e0/><e1/><e2/></log>"

    def test_delete_and_replace(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/><b/></r>"))
        run([store_dir, "delete", "2"])
        run([store_dir, "replace", "3", "<B/>"])
        assert run([store_dir, "read"]) == "<r><B/></r>"

    def test_ranges_snapshot(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        out = run([store_dir, "ranges"])
        assert "RangeId" in out
        assert len(out.splitlines()) >= 2

    def test_stats(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "stats"])
        assert "operations" in out

    def test_stats_json(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        out = run([store_dir, "stats", "--json"])
        values = json.loads(out)
        # counters are per-invocation: this invocation only reopened the
        # store, so the open span fired and the Table-1 series sit at zero
        assert values['repro_spans_total{span="store.open"}'] == 1
        assert values['repro_spans_total{span="load_document"}'] == 0
        assert "repro_buffer_hit_rate" in values
        assert "repro_wal_appends_total" in values
        assert values['repro_disk_io_total{op="read",pattern="random"}'] >= 1

    def test_stats_prometheus(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "stats", "--prometheus"])
        assert "# TYPE repro_store_operations_total counter" in out
        assert "# TYPE repro_buffer_hit_rate gauge" in out
        assert "# TYPE repro_span_seconds histogram" in out

    def test_stats_top(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "stats", "--top"])
        assert "spans (by cumulative wall time)" in out
        assert "store.open" in out

    def test_trace_emits_json_lines(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "trace"])
        events = [json.loads(line) for line in out.splitlines()]
        assert any(e["name"] == "store.open" for e in events)
        for event in events:
            assert {"seq", "name", "depth", "wall_seconds"} <= event.keys()

    def test_trace_limit(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "trace", "--limit", "1"])
        assert len(out.splitlines()) == 1

    def test_trace_limit_must_be_positive(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit):
                run([store_dir, "trace", "--limit", bad])

    def test_compact(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        for index in range(4):
            run([store_dir, "insert-last", "1", f"<e{index}/>"])
        out = run([store_dir, "compact"])
        assert "compacted" in out
        assert run([store_dir, "verify"]).splitlines()[-1] == "integrity ok"

    def test_verify(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "verify"])
        # per-check report: one line per invariant, verdict last
        for name in ("layout", "range-index", "id-density", "partial-memo"):
            assert name in out
        assert out.splitlines()[-1] == "integrity ok"

    def test_verify_json(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        payload = json.loads(run([store_dir, "verify", "--json"]))
        assert payload["ok"] is True
        assert [c["name"] for c in payload["checks"]] == [
            "layout", "range-index", "id-density", "partial-memo",
            "block-checksum", "quarantine",
        ]

    def test_error_surfaces_as_repro_error(self, store_dir):
        from repro.errors import NodeNotFoundError

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        with pytest.raises(NodeNotFoundError):
            run([store_dir, "delete", "99"])


class TestExplainCommand:
    def test_explain_read(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "explain", "read", "2"])
        assert "EXPLAIN read 2" in out
        assert "access path:" in out
        assert "tokens: replayed=" in out

    def test_explain_xpath_distinguishes_miss_from_hit(self, store_dir):
        """The CLI acceptance path: the same query's second run within
        one invocation resolves through the partial index."""
        import json

        run([store_dir, "load", "-"],
            stdin=io.StringIO("<r>" + "".join(f"<a n='{i}'/>" for i in range(20)) + "</r>"))
        query = "/r/a[@n='7']"
        first = json.loads(run([store_dir, "explain", "xpath", query, "--json"]))
        assert first["access_path"] == "range-scan"
        assert first["partial"]["misses"] > 0
        # the store checkpoints between invocations but the partial index
        # is memory-only, so warm it and re-explain in one process
        from repro.core.config import StoreConfig
        from repro.core.filestore import close_directory, open_directory
        from repro.obs.explain import explain_operation

        store = open_directory(
            store_dir,
            config=StoreConfig(telemetry_enabled=True, events_enabled=True),
        )
        try:
            miss = explain_operation(store, "xpath", [query])
            hit = explain_operation(store, "xpath", [query])
        finally:
            close_directory(store_dir, store)
        assert miss.access_path == "range-scan"
        assert hit.access_path == "partial-hit"

    def test_explain_mutation(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "explain", "insert-last", "1", "<a/>"])
        assert "wal: appends=" in out
        assert run([store_dir, "read"]) == "<r><a/></r>"

    def test_explain_json(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        payload = json.loads(run([store_dir, "explain", "read", "--json"]))
        assert payload["operation"] == "read"
        assert "events" in payload

    def test_explain_unknown_op_fails(self, store_dir):
        from repro.errors import InvalidOperationError

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        with pytest.raises(InvalidOperationError):
            run([store_dir, "explain", "compact"])


class TestHeatmapCommand:
    def test_heatmap_renders_sections(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "heatmap"])
        assert "block heatmap" in out
        assert "hottest blocks" in out
        assert "partial-index efficacy" in out

    def test_heatmap_xpath_warms_the_map(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "heatmap", "--xpath", "/r/a", "--top", "2"])
        assert "hottest blocks (top 2)" in out

    def test_heatmap_json(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        payload = json.loads(run([store_dir, "heatmap", "--json"]))
        assert "blocks_touched" in payload


class TestProfileCommand:
    def test_profile_top(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "profile", "read", "2"])
        assert "PROFILE read" in out
        assert "components:" in out
        assert "token-emit" in out

    def test_profile_components_parse_back_exactly(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "profile", "read", "--format", "components"])
        values = {}
        for line in out.splitlines():
            component, value = line.rsplit(" ", 1)
            values[component] = float(value)
        assert values["token-emit"] > 0  # reading emits tokens
        assert "disk" in values

    def test_profile_collapsed(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "profile", "read", "--format", "collapsed"])
        for line in out.splitlines():
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0

    def test_profile_speedscope(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        payload = json.loads(
            run([store_dir, "profile", "read", "--format", "speedscope"])
        )
        assert payload["$schema"].startswith("https://www.speedscope.app/")
        assert len(payload["profiles"]) == 2

    def test_profile_json(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        payload = json.loads(
            run([store_dir, "profile", "read", "--format", "json"])
        )
        assert payload["operation"] == "read"
        assert payload["components"]
        assert "tree" in payload

    def test_profile_wall_axis(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        # wall-axis output renders without error (values are nondeterministic)
        run([store_dir, "profile", "read", "--format", "collapsed",
             "--axis", "wall"])

    def test_sample_requires_a_stack_format(self, store_dir):
        from repro.errors import ReproError

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        with pytest.raises(ReproError, match="--sample"):
            run([store_dir, "profile", "read", "--sample"])

    def test_sample_collapsed_runs(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "profile", "read", "--sample",
                   "--format", "collapsed"])
        # a fast op may yield zero samples; the command must still succeed
        assert isinstance(out, str)

    def test_sample_speedscope_runs(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        out = run([store_dir, "profile", "read", "--sample",
                   "--format", "speedscope"])
        payload = json.loads(out)
        assert payload["profiles"][0]["type"] == "sampled"

    def test_profile_unknown_op_fails(self, store_dir):
        from repro.errors import InvalidOperationError

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        with pytest.raises(InvalidOperationError):
            run([store_dir, "profile", "compact"])


class TestOutputOption:
    @pytest.mark.parametrize(
        "command",
        [
            ["trace"],
            ["explain", "read"],
            ["profile", "read"],
            ["heatmap"],
            ["verify"],
        ],
        ids=["trace", "explain", "profile", "heatmap", "verify"],
    )
    def test_output_writes_file(self, store_dir, tmp_path, command):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        target = tmp_path / "out.txt"
        out = run([store_dir] + command + ["--output", str(target)])
        assert out == f"wrote {target}"
        assert target.read_text().strip()

    @pytest.mark.parametrize(
        "command",
        [
            ["trace"],
            ["explain", "read"],
            ["profile", "read"],
            ["heatmap"],
            ["verify"],
        ],
        ids=["trace", "explain", "profile", "heatmap", "verify"],
    )
    def test_unwritable_output_exits_nonzero(self, store_dir, command, monkeypatch, capsys):
        from repro import cli

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a/></r>"))
        bad = "/nonexistent-dir/deeply/out.txt"
        monkeypatch.setattr(
            "sys.argv", ["repro.cli", store_dir] + command + ["--output", bad]
        )
        assert cli.main() == 1
        assert "cannot write" in capsys.readouterr().err


class TestVerboseFlag:
    def test_verbose_logs_lifecycle_to_stderr(self, store_dir, capsys):
        import logging

        from repro.log import get_logger

        run([store_dir, "--verbose", "load", "-"], stdin=io.StringIO("<r/>"))
        try:
            err = capsys.readouterr().err
            assert "repro.core.filestore" in err
        finally:
            # drop the handler --verbose installed so later tests stay quiet
            root = get_logger()
            for handler in list(root.handlers):
                if not isinstance(handler, logging.NullHandler):
                    root.removeHandler(handler)


class TestTortureCommand:
    def test_torture_reports_all_points_clean(self, store_dir):
        out = run([store_dir, "torture", "--seed", "3", "--ops", "6"])
        assert "crash points" in out
        assert "all tested crash points recovered verify-clean" in out

    def test_torture_never_touches_the_store_dir(self, store_dir):
        import os

        run([store_dir, "torture", "--ops", "5"])
        assert not os.path.exists(store_dir)

    def test_torture_json_and_cap(self, store_dir):
        import json

        payload = json.loads(
            run([store_dir, "torture", "--ops", "8", "--json",
                 "--crash-points", "6"])
        )
        assert payload["ok"] is True
        assert payload["tested_points"] == 6
        assert payload["failures"] == []

    def test_torture_insert_workload_and_fault_classes(self, store_dir):
        import json

        payload = json.loads(
            run([store_dir, "torture", "--ops", "6", "--workload", "insert",
                 "--fault-classes", "torn-wal,reorder", "--json",
                 "--crash-points", "5"])
        )
        assert payload["ok"] is True
        assert payload["workload"] == "insert"
        assert payload["fault_classes"]["torn_page_writes"] is False
        assert payload["fault_classes"]["torn_wal_appends"] is True

    def test_torture_output_file(self, store_dir, tmp_path):
        target = tmp_path / "torture.json"
        out = run([store_dir, "torture", "--ops", "5", "--json",
                   "--crash-points", "4", "--output", str(target)])
        assert out == f"wrote {target}"
        import json

        assert json.loads(target.read_text())["ok"] is True

    def test_torture_unknown_fault_class_fails(self, store_dir):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run([store_dir, "torture", "--fault-classes", "torn-floppy"])


class TestScrubRepairCLI:
    """The self-healing loop end to end, with the documented exit codes:
    0 clean, 1 degraded-but-working, 2 corrupt."""

    def _build_store(self, store_dir, orders=6):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        for index in range(orders):
            run([store_dir, "insert-last", "1", f"<e n='{index}'>tok-{index}</e>"])
        return run([store_dir, "read"])

    def _corrupt_chain_block(self, store_dir):
        import os

        from repro.core.config import StoreConfig
        from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
        from repro.core.store import XMLStore
        from repro.storage.disk import FileBlockDevice

        config = StoreConfig()
        with open(os.path.join(store_dir, CATALOG_FILE), "rb") as handle:
            catalog = handle.read()
        device = FileBlockDevice(
            os.path.join(store_dir, DEVICE_FILE), block_size=config.page_size
        )
        store = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        victim = next(iter(store.layout.chain.blocks()))
        image = bytearray(device.read_block(victim))
        image[-1] ^= 0x33
        device.write_block(victim, bytes(image))
        device.close()
        return victim

    def test_scrub_clean_store_exits_zero(self, store_dir):
        self._build_store(store_dir)
        out = run([store_dir, "scrub"])
        assert "scrub: OK" in out

    def test_scrub_finds_corruption_and_exits_two(self, store_dir):
        from repro.errors import StoreCorruptError

        self._build_store(store_dir)
        victim = self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError) as excinfo:
            run([store_dir, "scrub"])
        assert excinfo.value.exit_code == 2
        assert str(victim) in str(excinfo.value)

    def test_scrub_json_report_is_delivered_before_the_failure(
        self, store_dir, tmp_path
    ):
        import json

        from repro.errors import StoreCorruptError

        self._build_store(store_dir)
        victim = self._corrupt_chain_block(store_dir)
        target = tmp_path / "scrub.json"
        with pytest.raises(StoreCorruptError):
            run([store_dir, "scrub", "--json", "--output", str(target)])
        payload = json.loads(target.read_text())
        assert payload["ok"] is False
        assert victim in [issue["block_no"] for issue in payload["issues"]]

    def test_scrub_budget_flag(self, store_dir):
        self._build_store(store_dir)
        assert "scrub: OK" in run([store_dir, "scrub", "--budget", "1"])

    def test_repair_after_corruption_restores_verify_clean(self, store_dir):
        """The headline loop: corrupt, scrub refuses (2), repair
        full-log-rebuilds (0), verify comes back clean (0)."""
        from repro.errors import StoreCorruptError

        expected = self._build_store(store_dir)
        self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError):
            run([store_dir, "scrub"])
        out = run([store_dir, "repair"])
        assert "mode=wal-rebuild" in out
        assert run([store_dir, "verify"]).splitlines()[-1] == "integrity ok"
        assert run([store_dir, "read"]) == expected

    def test_degraded_repair_exits_one_and_verify_reports_the_sidecar(
        self, store_dir
    ):
        import os

        from repro.errors import StoreDegradedError

        self._build_store(store_dir, orders=10)
        self._corrupt_chain_block(store_dir)
        os.remove(os.path.join(store_dir, "store.wal"))  # salvage only
        try:
            run([store_dir, "repair"])
        except StoreDegradedError as error:
            # data really was lost: exit 1, and verify keeps saying so
            assert error.exit_code == 1
            assert os.path.exists(os.path.join(store_dir, "store.repair.json"))
            with pytest.raises(StoreDegradedError) as excinfo:
                run([store_dir, "verify"])
            assert excinfo.value.exit_code == 1
        else:
            # the dead block held no unique records: full recovery
            assert not os.path.exists(
                os.path.join(store_dir, "store.repair.json")
            )

    def test_exit_codes_are_documented_in_help(self, store_dir, capsys):
        for command in ("verify", "scrub", "repair", "diagnose", "bundle"):
            with pytest.raises(SystemExit):
                run([store_dir, command, "--help"])
            out = capsys.readouterr().out
            assert "exit codes" in out, f"{command} --help lost its exit codes"
            assert "README.md" in out, (
                f"{command} --help lost the canonical-table reference"
            )


class TestJSONSchemaStamp:
    """Every machine-readable payload the CLI emits carries the stamp —
    the contract downstream parsers (and CI's byte-diffs) key on."""

    CASES = {
        "stats": ["stats", "--json"],
        "ranges": ["ranges", "--json"],
        "verify": ["verify", "--json"],
        "explain": ["explain", "read", "--json"],
        "heatmap": ["heatmap", "--json"],
        "profile": ["profile", "read", "--format", "json"],
        "monitor": ["monitor", "--json"],
        "advise": ["advise", "--json"],
        "alerts": ["alerts", "--json"],
        "health": ["health", "--json"],
        "scrub": ["scrub", "--json"],
        "torture": ["torture", "--ops", "4", "--json", "--crash-points", "2"],
        "diagnose": ["diagnose", "--json"],
        "bundle": ["bundle", "--json"],
        "lag": ["lag", "--json"],
    }

    @pytest.mark.parametrize("command", sorted(CASES), ids=sorted(CASES))
    def test_json_output_is_stamped(self, store_dir, command):
        import json

        from repro.obs.schema import SCHEMA_VERSION

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        payload = json.loads(run([store_dir] + self.CASES[command]))
        assert payload["schema_version"] == SCHEMA_VERSION, command


class TestDiagnoseBundleCLI:
    """Post-mortem loop end to end: a quarantined scrub auto-dumps an
    incident bundle, ``diagnose`` reconstructs the story from the
    persisted artifacts alone (exit 2 unresolved / 1 resolved / 0
    clean), and ``bundle`` packs it all into a portable tarball."""

    # same store-building and fault-injection helpers as the scrub tests
    _build_store = TestScrubRepairCLI._build_store
    _corrupt_chain_block = TestScrubRepairCLI._corrupt_chain_block

    def test_clean_store_diagnoses_clean(self, store_dir):
        self._build_store(store_dir)
        out = run([store_dir, "diagnose"])
        assert "verdict: clean" in out

    def test_scrub_dumps_a_bundle_and_diagnose_reads_it_back(
        self, store_dir
    ):
        import os

        from repro.errors import StoreCorruptError

        self._build_store(store_dir)
        victim = self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError):
            run([store_dir, "scrub"])
        # the scrub auto-dumped an incident bundle...
        bundle = os.path.join(store_dir, "store.incidents", "incident-0")
        assert os.path.isdir(bundle)
        # ...and diagnose reconstructs the fault without opening the store
        with pytest.raises(StoreCorruptError) as excinfo:
            run([store_dir, "diagnose"])
        assert excinfo.value.exit_code == 2
        del victim

    def test_diagnose_json_is_delivered_before_the_failure(
        self, store_dir, tmp_path
    ):
        import json

        from repro.errors import StoreCorruptError

        self._build_store(store_dir)
        self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError):
            run([store_dir, "scrub"])
        target = tmp_path / "diagnosis.json"
        with pytest.raises(StoreCorruptError):
            run([store_dir, "diagnose", "--json", "--output", str(target)])
        payload = json.loads(target.read_text())
        assert payload["verdict"] == "unresolved"
        assert payload["root_cause"]["origin"] == "recorder"

    def test_repair_moves_the_verdict_to_resolved(self, store_dir):
        from repro.errors import StoreCorruptError, StoreDegradedError

        self._build_store(store_dir)
        self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError):
            run([store_dir, "scrub"])
        out = run([store_dir, "repair"])
        assert "mode=wal-rebuild" in out
        assert run([store_dir, "verify"]).splitlines()[-1] == "integrity ok"
        # incidents happened but the repair was clean: exit 1, not 2
        with pytest.raises(StoreDegradedError) as excinfo:
            run([store_dir, "diagnose"])
        assert excinfo.value.exit_code == 1

    def test_bundle_writes_a_deterministic_tarball(self, store_dir, tmp_path):
        import json
        import tarfile

        from repro.errors import StoreCorruptError

        self._build_store(store_dir)
        self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError):
            run([store_dir, "scrub"])
        first = tmp_path / "a.tar"
        second = tmp_path / "b.tar"
        manifest = json.loads(
            run([store_dir, "bundle", "--json", "--output", str(first)])
        )
        run([store_dir, "bundle", "--output", str(second)])
        assert manifest["verdict"] == "unresolved"
        assert first.read_bytes() == second.read_bytes()
        with tarfile.open(first) as archive:
            names = archive.getnames()
        assert "MANIFEST.json" in names
        assert "diagnosis.json" in names
        assert any(n.startswith("store.incidents/") for n in names)

    def test_bundle_default_output_lands_in_the_store_dir(self, store_dir):
        import os

        self._build_store(store_dir)
        out = run([store_dir, "bundle"])
        assert "support-bundle.tar" in out
        assert os.path.exists(os.path.join(store_dir, "support-bundle.tar"))

    def test_diagnose_unknown_incident_fails(self, store_dir):
        from repro.errors import ObservabilityError

        self._build_store(store_dir)
        with pytest.raises(ObservabilityError):
            run([store_dir, "diagnose", "--incident", "incident-99"])


class TestAlertsCommand:
    def test_clean_store_reports_nothing_firing(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "alerts"])
        assert out.startswith("alerts: 0 firing")

    def test_json_payload_shape(self, store_dir):
        import json

        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        payload = json.loads(run([store_dir, "alerts", "--json"]))
        assert payload["active"] == []
        assert payload["log"] == []
        assert "quarantined-blocks" in payload["rules"]
        assert payload["evaluations"] >= 1

    def test_restored_critical_alert_exits_two(self, store_dir):
        import os

        from repro.core.filestore import ALERTS_FILE
        from repro.errors import StoreCorruptError
        from repro.obs.alerts import AlertEngine, AlertRule

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        # a previous session recorded a critical transition; the engine
        # restores the active set from the log on reopen
        rule = AlertRule(
            "quarantined-blocks", "critical", "threshold", "seeded",
            metric="repro_storage_quarantined_blocks", op=">", bound=0,
            clear_after=3,
        )
        engine = AlertEngine(
            rules=(rule,), path=os.path.join(store_dir, ALERTS_FILE)
        )
        from repro.obs.alerts import AlertView

        engine.evaluate(AlertView(
            values={"repro_storage_quarantined_blocks": 1.0}
        ), label="seed")
        with pytest.raises(StoreCorruptError) as excinfo:
            run([store_dir, "alerts"])
        assert excinfo.value.exit_code == 2
        assert "quarantined-blocks" in str(excinfo.value)

    def test_identical_runs_emit_identical_json(self, tmp_path):
        def invocation(name):
            store_dir = str(tmp_path / name)
            run([store_dir, "load", "-"],
                stdin=io.StringIO("<r><a>x</a><b>y</b></r>"))
            run([store_dir, "xpath", "/r/a"])
            return run([store_dir, "alerts", "--json"])

        assert invocation("a") == invocation("b")

    def test_exit_codes_documented_in_help(self, store_dir, capsys):
        with pytest.raises(SystemExit):
            run([store_dir, "alerts", "--help"])
        out = capsys.readouterr().out
        assert "1 = warning" in out
        assert "critical alert(s) firing" in out


class TestWatchCommand:
    def test_one_frame_from_the_store_files(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "watch", "--iterations", "1", "--interval", "0"])
        assert out.startswith(f"watch {store_dir}  frame 1")
        assert "files: store.db" in out
        assert "history:" in out
        assert "alerts firing: none" in out
        assert "top counters" in out

    def test_watch_never_opens_the_store(self, store_dir):
        import os

        from repro.core.filestore import CATALOG_FILE

        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        before = os.path.getmtime(os.path.join(store_dir, CATALOG_FILE))
        run([store_dir, "watch", "--iterations", "1", "--interval", "0"])
        after = os.path.getmtime(os.path.join(store_dir, CATALOG_FILE))
        assert before == after  # no checkpoint, no catalog rewrite

    def test_watch_on_an_empty_directory(self, store_dir):
        import os

        os.makedirs(store_dir)
        out = run([store_dir, "watch", "--iterations", "2", "--interval", "0"])
        assert "frame 2" in out
        assert "no store files yet" in out
        assert "no snapshots yet" in out

    def test_top_bounds_the_counter_section(self, store_dir):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r><a>x</a></r>"))
        out = run([store_dir, "watch", "--iterations", "1",
                   "--interval", "0", "--top", "2"])
        counters = [line for line in out.splitlines()
                    if line.startswith("  repro_")]
        assert len(counters) == 2
