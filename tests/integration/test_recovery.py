"""Integration tests: checkpoint, crash, WAL replay."""

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.storage.disk import (
    DiskFaultError,
    FaultInjector,
    FileBlockDevice,
    InstrumentedDevice,
    MemoryBlockDevice,
)
from repro.storage.recovery import replay
from repro.storage.wal import WriteAheadLog


def crash_and_recover(store, catalog, config=None):
    """Simulate a crash: drop dirty pages, reopen from catalog, replay WAL."""
    store.pool.drop_all()
    recovered = XMLStore.from_catalog(
        store.device, catalog, config=config, wal=store.wal
    )
    replay(recovered, store.wal)
    return recovered


class TestCheckpointRecovery:
    def test_recover_checkpointed_state(self):
        store = XMLStore.open()
        store.load_document("<r><a/><b/></r>")
        catalog = store.checkpoint()
        recovered = crash_and_recover(store, catalog)
        assert recovered.read() == "<r><a/><b/></r>"
        recovered.check_integrity()

    def test_replay_operations_after_checkpoint(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        catalog = store.checkpoint()
        store.insert_into_last(root, "<after-checkpoint/>")
        store.insert_into_last(root, "<second/>")
        recovered = crash_and_recover(store, catalog)
        assert recovered.read() == "<r><after-checkpoint/><second/></r>"
        recovered.check_integrity()

    def test_replay_preserves_node_ids(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        catalog = store.checkpoint()
        new_id = store.insert_into_last(root, "<x/>")
        recovered = crash_and_recover(store, catalog)
        assert recovered.read(new_id) == "<x/>"

    def test_replay_deletes_and_replaces(self):
        store = XMLStore.open()
        store.load_document("<r><a/><b/><c/></r>")
        catalog = store.checkpoint()
        store.delete_node(2)
        store.replace_node(3, "<B/>")
        recovered = crash_and_recover(store, catalog)
        assert recovered.read() == "<r><B/><c/></r>"

    def test_recovery_without_checkpoint_replays_everything(self):
        """Crash before any checkpoint: full-log logical restore."""
        store = XMLStore.open()
        store.load_document("<r/>")
        store.insert_into_last(1, "<a/>")
        recovered = XMLStore.recover(store.wal)
        assert recovered.read() == "<r><a/></r>"
        recovered.check_integrity()

    def test_uncheckpointed_work_is_lost_without_wal(self):
        """Sanity check on the crash simulation itself."""
        store = XMLStore.open(wal=WriteAheadLog())
        store.load_document("<r/>")
        catalog = store.checkpoint()
        store.insert_into_last(1, "<lost/>")
        store.pool.drop_all()
        store.wal.truncate()  # "lose" the log too
        recovered = XMLStore.from_catalog(store.device, catalog, wal=store.wal)
        assert recovered.read() == "<r/>"

    def test_recovered_store_accepts_new_operations(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        catalog = store.checkpoint()
        store.insert_into_last(root, "<a/>")
        recovered = crash_and_recover(store, catalog)
        recovered.insert_into_last(root, "<b/>")
        assert recovered.read() == "<r><a/><b/></r>"
        recovered.check_integrity()

    def test_full_policy_recovery(self):
        config = StoreConfig(policy=IndexingPolicy.FULL)
        store = XMLStore.open(config)
        root = store.load_document("<r><a/></r>")
        catalog = store.checkpoint()
        store.insert_into_last(root, "<b/>")
        recovered = crash_and_recover(store, catalog, config=config)
        assert recovered.read() == "<r><a/><b/></r>"
        assert recovered.read(3) == "<b/>"


class TestFileBackedDurability:
    def test_clean_shutdown_reopens_from_catalog(self, tmp_path):
        path = str(tmp_path / "store.db")
        wal_path = str(tmp_path / "store.wal")
        device = InstrumentedDevice(FileBlockDevice(path))
        wal = WriteAheadLog(wal_path)
        store = XMLStore.open(device=device, wal=wal)
        root = store.load_document("<inventory/>")
        store.insert_into_last(root, "<item>widget</item>")
        store.insert_into_last(root, "<item>gadget</item>")
        catalog = store.checkpoint()  # clean shutdown: checkpoint is last
        wal.close()
        device.close()
        # "restart": fresh objects over the same files
        device2 = InstrumentedDevice(FileBlockDevice(path))
        wal2 = WriteAheadLog(wal_path)
        recovered = XMLStore.from_catalog(device2, catalog, wal=wal2)
        assert replay(recovered, wal2) == []  # nothing after the checkpoint
        text = recovered.read()
        assert "widget" in text and "gadget" in text
        recovered.check_integrity()
        device2.close()
        wal2.close()

    def test_crash_recovery_from_file_backed_wal(self, tmp_path):
        """Crash with a durable WAL: full-log restore onto a fresh device."""
        wal_path = str(tmp_path / "store.wal")
        wal = WriteAheadLog(wal_path)
        store = XMLStore.open(wal=wal)
        root = store.load_document("<inventory/>")
        widget_id = store.insert_into_last(root, "<item>widget</item>")
        store.insert_into_last(root, "<item>gadget</item>")
        store.delete_node(widget_id)
        wal.close()
        # process dies; only the WAL file survives
        wal2 = WriteAheadLog(wal_path)
        recovered = XMLStore.recover(wal2)
        assert recovered.read() == store.read()
        recovered.check_integrity()
        wal2.close()


class TestFaultInjection:
    def test_fault_during_insert_surfaces(self):
        boom = FaultInjector(
            lambda op, block, stats: op == "write" and stats.writes >= 20,
            message="disk died",
        )
        device = InstrumentedDevice(MemoryBlockDevice(), fault_injector=boom)
        store = XMLStore.open(device=device)
        root = store.load_document("<r/>")
        with pytest.raises(DiskFaultError):
            for index in range(500):
                store.insert_into_last(root, f"<e{index}/>")
                store.pool.flush_all()

    def test_state_recoverable_after_fault(self):
        """After a mid-operation disk fault, a full-log restore recovers
        every fully-applied operation."""
        fired = {"count": 0}

        def predicate(op, block, stats):
            if op == "write" and stats.writes == 25:
                fired["count"] += 1
                return fired["count"] == 1  # fire exactly once
            return False

        device = InstrumentedDevice(
            MemoryBlockDevice(), fault_injector=FaultInjector(predicate)
        )
        store = XMLStore.open(device=device)
        root = store.load_document("<r/>")
        applied = []
        try:
            for index in range(500):
                store.insert_into_last(root, f"<e{index}/>", log=True)
                store.pool.flush_all()
                applied.append(index)
        except DiskFaultError:
            pass
        assert applied, "the fault fired before any insert completed"
        recovered = XMLStore.recover(store.wal)
        recovered.check_integrity()
        text = recovered.read()
        # every fully-applied (logged + executed) operation must be present
        for index in applied:
            assert f"<e{index}/>" in text


class TestReplayIdempotency:
    """Replaying the same WAL twice must land in byte-identical states."""

    def _busy_store(self):
        store = XMLStore.open(StoreConfig(max_range_tokens=16))
        root = store.load_document("<r><a/><b>text</b><c x='1'/></r>")
        doomed = store.insert_into_last(root, "<d><e/></d>")
        store.checkpoint()
        replaced = store.insert_into_last(root, "<f/>")
        store.insert_before(replaced, "<before/>")
        store.delete_node(doomed)
        store.replace_node(replaced, "<B2>new</B2>")
        store.insert_into_last(root, "<tail/>")
        return store

    def _recover_once(self, store):
        wal = WriteAheadLog.from_bytes(store.wal.to_bytes())
        return XMLStore.recover(wal, config=StoreConfig(max_range_tokens=16))

    def test_two_recoveries_are_byte_identical(self):
        from repro.core.integrity import integrity_report

        store = self._busy_store()
        first = self._recover_once(store)
        second = self._recover_once(store)
        assert first.read() == second.read() == store.read()
        assert first.range_snapshot() == second.range_snapshot()
        assert first.to_catalog() == second.to_catalog()
        assert first.wal.to_bytes() == second.wal.to_bytes()
        assert integrity_report(first).ok and integrity_report(second).ok

    def test_recovering_a_recovered_wal_is_stable(self):
        """recover(recover(wal)) == recover(wal): replay reaches a fixpoint."""
        store = self._busy_store()
        once = self._recover_once(store)
        twice = self._recover_once(once)
        assert twice.read() == once.read()
        assert twice.to_catalog() == once.to_catalog()


class TestPartialIndexAfterRecovery:
    """Crash + recovery must leave no stale-but-current memo entries."""

    def _store_with_memos(self):
        config = StoreConfig(
            policy=IndexingPolicy.RANGE_PLUS_PARTIAL, max_range_tokens=16
        )
        store = XMLStore.open(config)
        root = store.load_document(
            "<r>" + "".join(f"<a n='{i}'><b/></a>" for i in range(8)) + "</r>"
        )
        for meta in store.ranges.in_order():
            if meta.has_interval:
                store.read(meta.start_id)  # memoize lookups across ranges
        assert len(store.partial_index) > 0
        return store, root, config

    def test_crashed_compaction_leaves_memos_consistent(self):
        """Die mid-compaction (ranges partially merged): the full-log
        restore rebuilds from scratch, and a *surviving* process's memos
        must be stale-or-correct — never current-and-wrong."""
        from repro.core.integrity import integrity_report

        store, root, config = self._store_with_memos()
        before = store.read()
        report = store.compact()
        assert report.merges > 0  # the scenario is real: ranges moved
        # survivors: probe every memoized node again after the merge
        assert store.read() == before
        assert integrity_report(store).ok
        # crash now; recovery replays the logical history (compaction is
        # metadata-only, so content must be unchanged) and repopulates
        # the memo table from scratch
        recovered = XMLStore.recover(
            WriteAheadLog.from_bytes(store.wal.to_bytes()), config=config
        )
        assert recovered.read() == before
        assert integrity_report(recovered).ok

    def test_post_recovery_memos_rebuild_and_verify(self):
        from repro.core.integrity import integrity_report

        store, root, config = self._store_with_memos()
        recovered = XMLStore.recover(
            WriteAheadLog.from_bytes(store.wal.to_bytes()), config=config
        )
        # exercise lookups so the recovered store memoizes fresh entries
        for meta in recovered.ranges.in_order():
            if meta.has_interval:
                recovered.read(meta.start_id)
        assert len(recovered.partial_index) > 0
        report = integrity_report(recovered)
        assert report.ok
        by_name = {check.name: check for check in report.checks}
        assert by_name["partial-memo"].detail["entries"] > 0
