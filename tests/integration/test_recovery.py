"""Integration tests: checkpoint, crash, WAL replay."""

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.storage.disk import (
    DiskFaultError,
    FaultInjector,
    FileBlockDevice,
    InstrumentedDevice,
    MemoryBlockDevice,
)
from repro.storage.recovery import replay
from repro.storage.wal import WriteAheadLog


def crash_and_recover(store, catalog, config=None):
    """Simulate a crash: drop dirty pages, reopen from catalog, replay WAL."""
    store.pool.drop_all()
    recovered = XMLStore.from_catalog(
        store.device, catalog, config=config, wal=store.wal
    )
    replay(recovered, store.wal)
    return recovered


class TestCheckpointRecovery:
    def test_recover_checkpointed_state(self):
        store = XMLStore.open()
        store.load_document("<r><a/><b/></r>")
        catalog = store.checkpoint()
        recovered = crash_and_recover(store, catalog)
        assert recovered.read() == "<r><a/><b/></r>"
        recovered.check_integrity()

    def test_replay_operations_after_checkpoint(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        catalog = store.checkpoint()
        store.insert_into_last(root, "<after-checkpoint/>")
        store.insert_into_last(root, "<second/>")
        recovered = crash_and_recover(store, catalog)
        assert recovered.read() == "<r><after-checkpoint/><second/></r>"
        recovered.check_integrity()

    def test_replay_preserves_node_ids(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        catalog = store.checkpoint()
        new_id = store.insert_into_last(root, "<x/>")
        recovered = crash_and_recover(store, catalog)
        assert recovered.read(new_id) == "<x/>"

    def test_replay_deletes_and_replaces(self):
        store = XMLStore.open()
        store.load_document("<r><a/><b/><c/></r>")
        catalog = store.checkpoint()
        store.delete_node(2)
        store.replace_node(3, "<B/>")
        recovered = crash_and_recover(store, catalog)
        assert recovered.read() == "<r><B/><c/></r>"

    def test_recovery_without_checkpoint_replays_everything(self):
        """Crash before any checkpoint: full-log logical restore."""
        store = XMLStore.open()
        store.load_document("<r/>")
        store.insert_into_last(1, "<a/>")
        recovered = XMLStore.recover(store.wal)
        assert recovered.read() == "<r><a/></r>"
        recovered.check_integrity()

    def test_uncheckpointed_work_is_lost_without_wal(self):
        """Sanity check on the crash simulation itself."""
        store = XMLStore.open(wal=WriteAheadLog())
        store.load_document("<r/>")
        catalog = store.checkpoint()
        store.insert_into_last(1, "<lost/>")
        store.pool.drop_all()
        store.wal.truncate()  # "lose" the log too
        recovered = XMLStore.from_catalog(store.device, catalog, wal=store.wal)
        assert recovered.read() == "<r/>"

    def test_recovered_store_accepts_new_operations(self):
        store = XMLStore.open()
        root = store.load_document("<r/>")
        catalog = store.checkpoint()
        store.insert_into_last(root, "<a/>")
        recovered = crash_and_recover(store, catalog)
        recovered.insert_into_last(root, "<b/>")
        assert recovered.read() == "<r><a/><b/></r>"
        recovered.check_integrity()

    def test_full_policy_recovery(self):
        config = StoreConfig(policy=IndexingPolicy.FULL)
        store = XMLStore.open(config)
        root = store.load_document("<r><a/></r>")
        catalog = store.checkpoint()
        store.insert_into_last(root, "<b/>")
        recovered = crash_and_recover(store, catalog, config=config)
        assert recovered.read() == "<r><a/><b/></r>"
        assert recovered.read(3) == "<b/>"


class TestFileBackedDurability:
    def test_clean_shutdown_reopens_from_catalog(self, tmp_path):
        path = str(tmp_path / "store.db")
        wal_path = str(tmp_path / "store.wal")
        device = InstrumentedDevice(FileBlockDevice(path))
        wal = WriteAheadLog(wal_path)
        store = XMLStore.open(device=device, wal=wal)
        root = store.load_document("<inventory/>")
        store.insert_into_last(root, "<item>widget</item>")
        store.insert_into_last(root, "<item>gadget</item>")
        catalog = store.checkpoint()  # clean shutdown: checkpoint is last
        wal.close()
        device.close()
        # "restart": fresh objects over the same files
        device2 = InstrumentedDevice(FileBlockDevice(path))
        wal2 = WriteAheadLog(wal_path)
        recovered = XMLStore.from_catalog(device2, catalog, wal=wal2)
        assert replay(recovered, wal2) == []  # nothing after the checkpoint
        text = recovered.read()
        assert "widget" in text and "gadget" in text
        recovered.check_integrity()
        device2.close()
        wal2.close()

    def test_crash_recovery_from_file_backed_wal(self, tmp_path):
        """Crash with a durable WAL: full-log restore onto a fresh device."""
        wal_path = str(tmp_path / "store.wal")
        wal = WriteAheadLog(wal_path)
        store = XMLStore.open(wal=wal)
        root = store.load_document("<inventory/>")
        widget_id = store.insert_into_last(root, "<item>widget</item>")
        store.insert_into_last(root, "<item>gadget</item>")
        store.delete_node(widget_id)
        wal.close()
        # process dies; only the WAL file survives
        wal2 = WriteAheadLog(wal_path)
        recovered = XMLStore.recover(wal2)
        assert recovered.read() == store.read()
        recovered.check_integrity()
        wal2.close()


class TestFaultInjection:
    def test_fault_during_insert_surfaces(self):
        boom = FaultInjector(
            lambda op, block, stats: op == "write" and stats.writes >= 20,
            message="disk died",
        )
        device = InstrumentedDevice(MemoryBlockDevice(), fault_injector=boom)
        store = XMLStore.open(device=device)
        root = store.load_document("<r/>")
        with pytest.raises(DiskFaultError):
            for index in range(500):
                store.insert_into_last(root, f"<e{index}/>")
                store.pool.flush_all()

    def test_state_recoverable_after_fault(self):
        """After a mid-operation disk fault, a full-log restore recovers
        every fully-applied operation."""
        fired = {"count": 0}

        def predicate(op, block, stats):
            if op == "write" and stats.writes == 25:
                fired["count"] += 1
                return fired["count"] == 1  # fire exactly once
            return False

        device = InstrumentedDevice(
            MemoryBlockDevice(), fault_injector=FaultInjector(predicate)
        )
        store = XMLStore.open(device=device)
        root = store.load_document("<r/>")
        applied = []
        try:
            for index in range(500):
                store.insert_into_last(root, f"<e{index}/>", log=True)
                store.pool.flush_all()
                applied.append(index)
        except DiskFaultError:
            pass
        assert applied, "the fault fired before any insert completed"
        recovered = XMLStore.recover(store.wal)
        recovered.check_integrity()
        text = recovered.read()
        # every fully-applied (logged + executed) operation must be present
        for index in applied:
            assert f"<e{index}/>" in text
