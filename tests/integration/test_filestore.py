"""Integration tests for directory-backed stores."""

import os

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.filestore import (
    StoreDirectory,
    close_directory,
    open_directory,
)


class TestOpenClose:
    def test_create_fresh_store(self, tmp_path):
        path = str(tmp_path / "orders")
        store = open_directory(path)
        assert store.is_empty
        assert os.path.exists(os.path.join(path, "store.db"))
        assert os.path.exists(os.path.join(path, "store.catalog"))
        close_directory(path, store)

    def test_clean_reopen_preserves_content(self, tmp_path):
        path = str(tmp_path / "orders")
        store = open_directory(path)
        root = store.load_document("<orders/>")
        store.insert_into_last(root, "<order no='1'/>")
        close_directory(path, store)
        reopened = open_directory(path)
        assert reopened.read() == '<orders><order no="1"/></orders>'
        reopened.check_integrity()
        close_directory(path, reopened)

    def test_ids_survive_reopen(self, tmp_path):
        path = str(tmp_path / "s")
        store = open_directory(path)
        store.load_document("<r><a/><b/></r>")
        close_directory(path, store)
        reopened = open_directory(path)
        assert reopened.read(2) == "<a/>"
        # the id allocator resumes exactly past the old ids (1..3 used)
        new_id = reopened.insert_into_last(1, "<c/>")
        assert new_id == 4
        assert reopened.read(4) == "<c/>"
        close_directory(path, reopened)

    def test_crash_between_checkpoints_recovers_via_wal(self, tmp_path):
        path = str(tmp_path / "s")
        store = open_directory(path)
        store.load_document("<ledger/>")
        catalog_checkpointed = store.checkpoint()
        from repro.core.filestore import _write_catalog, CATALOG_FILE

        _write_catalog(os.path.join(path, CATALOG_FILE), catalog_checkpointed)
        store.insert_into_last(1, "<entry>after checkpoint</entry>")
        # crash: no close_directory; just drop everything
        store.wal.close()
        store.device.close()
        recovered = open_directory(path)
        assert "after checkpoint" in recovered.read()
        recovered.check_integrity()
        close_directory(path, recovered)

    def test_custom_config(self, tmp_path):
        path = str(tmp_path / "s")
        config = StoreConfig(policy=IndexingPolicy.RANGE, page_size=1024)
        store = open_directory(path, config)
        store.load_document("<a/>")
        close_directory(path, store)
        reopened = open_directory(path, config)
        assert reopened.read() == "<a/>"
        close_directory(path, reopened)


class TestContextManager:
    def test_with_statement_round_trip(self, tmp_path):
        path = str(tmp_path / "cm")
        with StoreDirectory(path) as store:
            store.load_document("<r><x/></r>")
        with StoreDirectory(path) as store:
            assert store.read() == "<r><x/></r>"

    def test_exception_does_not_write_catalog(self, tmp_path):
        path = str(tmp_path / "cm")
        with StoreDirectory(path) as store:
            store.load_document("<r/>")
        catalog_mtime = os.path.getmtime(os.path.join(path, "store.catalog"))
        with pytest.raises(RuntimeError):
            with StoreDirectory(path) as store:
                store.insert_into_last(1, "<x/>")
                raise RuntimeError("boom")
        assert os.path.getmtime(os.path.join(path, "store.catalog")) == catalog_mtime
        # but the WAL carried the operation: reopening replays it
        with StoreDirectory(path) as store:
            assert "<x/>" in store.read()

    def test_updates_accumulate_across_sessions(self, tmp_path):
        path = str(tmp_path / "cm")
        for index in range(3):
            with StoreDirectory(path) as store:
                if store.is_empty:
                    store.load_document("<log/>")
                store.insert_into_last(1, f"<run n='{index}'/>")
        with StoreDirectory(path) as store:
            assert store.read().count("<run") == 3
            store.check_integrity()
