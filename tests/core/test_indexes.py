"""Unit tests for the range index, partial index and full index."""

import pytest

from repro.core.full_index import FullIndex
from repro.core.partial_index import LocationEntry, PartialIndex
from repro.core.range_index import RangeIndex
from repro.core.ranges import RangeTable
from repro.storage.buffer import BufferPool
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice
from repro.storage.heap import Position


def make_pool():
    device = InstrumentedDevice(MemoryBlockDevice())
    return BufferPool(device, capacity=32)


def make_table_with_paper_ranges():
    """Ranges of the paper's Table 3: [1,70], [101,140], [71,100]."""
    table = RangeTable()
    r1 = table.new_range(Position(1, 0), 140, 1, 70)
    r2 = table.new_range(Position(1, 70), 80, 101, 140, after=r1.range_id)
    r3 = table.new_range(Position(2, 0), 60, 71, 100, after=r2.range_id)
    return table, r1, r2, r3


class TestRangeIndex:
    def test_locate_inside_interval(self):
        table, r1, r2, r3 = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        for meta in (r1, r2, r3):
            index.register(meta)
        assert index.locate(60, table).range_id == r1.range_id
        assert index.locate(101, table).range_id == r2.range_id
        assert index.locate(140, table).range_id == r2.range_id
        assert index.locate(71, table).range_id == r3.range_id

    def test_locate_boundaries(self):
        table, r1, r2, r3 = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        for meta in (r1, r2, r3):
            index.register(meta)
        assert index.locate(1, table).range_id == r1.range_id
        assert index.locate(70, table).range_id == r1.range_id

    def test_locate_miss_below(self):
        table, r1, *_ = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        index.register(r1)
        assert index.locate(0, table) is None

    def test_locate_miss_in_gap(self):
        table = RangeTable()
        r1 = table.new_range(Position(0, 0), 10, 1, 10)
        r2 = table.new_range(Position(0, 10), 10, 100, 110, after=r1.range_id)
        index = RangeIndex(make_pool())
        index.register(r1)
        index.register(r2)
        assert index.locate(50, table) is None  # floor hits r1 but 50 > 10

    def test_empty_interval_not_registered(self):
        table = RangeTable()
        empty = table.new_range(Position(0, 0), 3, None, None)
        index = RangeIndex(make_pool())
        index.register(empty)
        assert len(index) == 0

    def test_unregister(self):
        table, r1, *_ = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        index.register(r1)
        index.unregister(r1.start_id)
        assert index.locate(60, table) is None
        index.unregister(None)  # no-op

    def test_rekey(self):
        table = RangeTable()
        meta = table.new_range(Position(0, 0), 10, 10, 20)
        index = RangeIndex(make_pool())
        index.register(meta)
        meta.start_id = 15
        index.rekey(10, meta)
        assert index.locate(16, table).range_id == meta.range_id
        assert dict(index.entries()) == {15: meta.range_id}

    def test_one_entry_per_range_not_per_node(self):
        """The paper's core claim: index size tracks ranges, not nodes."""
        table, r1, r2, r3 = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        for meta in (r1, r2, r3):
            index.register(meta)
        assert len(index) == 3  # 140 nodes but only 3 entries

    def test_stale_table_entry_ignored(self):
        table, r1, *_ = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        index.register(r1)
        table.drop(r1.range_id)
        assert index.locate(60, table) is None

    def test_check_integrity(self):
        table, r1, r2, r3 = make_table_with_paper_ranges()
        index = RangeIndex(make_pool())
        for meta in (r1, r2, r3):
            index.register(meta)
        index.check_integrity(table)


def entry(node_id, range_id, version=0, block=0, slot=0, offset=0):
    return LocationEntry(
        node_id=node_id,
        range_id=range_id,
        version=version,
        begin_pos=Position(block, slot),
        begin_offset=offset,
    )


class TestPartialIndex:
    def test_probe_miss_then_hit(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex()
        assert partial.probe(60, table) is None
        partial.remember(entry(60, r1.range_id, version=r1.version))
        hit = partial.probe(60, table)
        assert hit is not None and hit.node_id == 60
        assert partial.stats.hits == 1 and partial.stats.misses == 1

    def test_stale_entry_dropped_on_probe(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex()
        partial.remember(entry(60, r1.range_id, version=r1.version))
        r1.bump()
        assert partial.probe(60, table) is None
        assert partial.stats.stale_hits == 1
        assert len(partial) == 0

    def test_entry_for_dropped_range_is_stale(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex()
        partial.remember(entry(60, r1.range_id, version=r1.version))
        table.drop(r1.range_id)
        assert partial.probe(60, table) is None

    def test_lru_eviction(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex(capacity=2)
        for node_id in (1, 2, 3):
            partial.remember(entry(node_id, r1.range_id, version=r1.version))
        assert len(partial) == 2
        assert partial.probe(1, table) is None  # evicted
        assert partial.probe(3, table) is not None
        assert partial.stats.evictions == 1

    def test_probe_refreshes_lru_position(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex(capacity=2)
        partial.remember(entry(1, r1.range_id, version=r1.version))
        partial.remember(entry(2, r1.range_id, version=r1.version))
        partial.probe(1, table)  # 1 becomes MRU
        partial.remember(entry(3, r1.range_id, version=r1.version))
        assert partial.probe(2, table) is None  # 2 was evicted, not 1
        assert partial.probe(1, table) is not None

    def test_unbounded_capacity(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex(capacity=None)
        for node_id in range(1000):
            partial.remember(entry(node_id, r1.range_id, version=r1.version))
        assert len(partial) == 1000
        assert partial.stats.evictions == 0

    def test_remember_merges_end_knowledge(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex()
        rich = entry(60, r1.range_id, version=r1.version)
        rich.end_range_id = r1.range_id
        rich.end_version = r1.version
        rich.end_pos = Position(3, 4)
        rich.end_offset = 99
        partial.remember(rich)
        # a later begin-only memoization must not lose the end location
        partial.remember(entry(60, r1.range_id, version=r1.version))
        hit = partial.probe(60, table)
        assert hit.end_pos == Position(3, 4)

    def test_forget_range(self):
        table, r1, r2, _ = make_table_with_paper_ranges()
        partial = PartialIndex()
        partial.remember(entry(60, r1.range_id, version=r1.version))
        partial.remember(entry(101, r2.range_id, version=r2.version))
        partial.forget_range(r1.range_id)
        assert partial.probe(60, table) is None
        assert partial.probe(101, table) is not None

    def test_sweep_stale(self):
        table, r1, r2, _ = make_table_with_paper_ranges()
        partial = PartialIndex()
        partial.remember(entry(60, r1.range_id, version=r1.version))
        partial.remember(entry(101, r2.range_id, version=r2.version))
        r1.bump()
        assert partial.sweep_stale(table) == 1
        assert len(partial) == 1

    def test_clear(self):
        table, r1, *_ = make_table_with_paper_ranges()
        partial = PartialIndex()
        partial.remember(entry(60, r1.range_id, version=r1.version))
        partial.clear()
        assert len(partial) == 0


class TestFullIndex:
    def test_put_and_lookup(self):
        table, r1, *_ = make_table_with_paper_ranges()
        full = FullIndex(make_pool())
        full.put(60, r1.range_id, r1.version, Position(1, 59), 59)
        found = full.lookup(60, table)
        assert found is not None
        assert found.begin_pos == Position(1, 59)
        assert found.begin_offset == 59

    def test_stale_version_returns_none(self):
        table, r1, *_ = make_table_with_paper_ranges()
        full = FullIndex(make_pool())
        full.put(60, r1.range_id, r1.version, Position(1, 59), 59)
        r1.bump()
        assert full.lookup(60, table) is None
        assert full.stale_lookups == 1

    def test_missing_id(self):
        table, *_ = make_table_with_paper_ranges()
        full = FullIndex(make_pool())
        assert full.lookup(999, table) is None

    def test_remove(self):
        table, r1, *_ = make_table_with_paper_ranges()
        full = FullIndex(make_pool())
        full.put(60, r1.range_id, r1.version, Position(1, 59), 59)
        assert full.remove(60) is True
        assert full.remove(60) is False
        assert 60 not in full

    def test_remove_interval(self):
        table, r1, *_ = make_table_with_paper_ranges()
        full = FullIndex(make_pool())
        for node_id in range(1, 71):
            full.put(node_id, r1.range_id, r1.version, Position(1, node_id - 1), node_id - 1)
        removed = full.remove_interval(10, 20)
        assert removed == 11
        assert len(full) == 70 - 11
        assert 10 not in full and 15 not in full and 21 in full

    def test_entry_count_tracks_every_node(self):
        """The paper's complaint: one entry per node."""
        table, r1, r2, r3 = make_table_with_paper_ranges()
        full = FullIndex(make_pool())
        for meta in (r1, r2, r3):
            for node_id in range(meta.start_id, meta.end_id + 1):
                full.put(node_id, meta.range_id, meta.version, Position(0, 0), 0)
        assert len(full) == 140  # vs 3 range-index entries


class TestPartialIndexCompactionInvalidation:
    """Compaction moves tokens between ranges; memo entries for the moved
    ranges must go stale (version bump / range drop), never resolve to a
    wrong location — the invariant the crash-consistency torture harness
    leans on after recovering mid-compaction crashes."""

    def _compactable_store(self):
        from repro.core.config import IndexingPolicy, StoreConfig
        from repro.core.store import XMLStore

        store = XMLStore.open(
            StoreConfig(
                policy=IndexingPolicy.RANGE_PLUS_PARTIAL, max_range_tokens=16
            )
        )
        store.load_document(
            "<r>" + "".join(f"<a n='{i}'><b/></a>" for i in range(8)) + "</r>"
        )
        for meta in store.ranges.in_order():
            if meta.has_interval:
                store.read(meta.start_id)
        assert len(store.partial_index) > 1
        return store

    def test_memos_for_merged_ranges_go_stale_not_wrong(self):
        store = self._compactable_store()
        entries_before = {
            node_id: (entry.range_id, entry.version)
            for node_id, entry in store.partial_index._entries.items()
        }
        report = store.compact()
        assert report.merges > 0
        surviving_current = 0
        for node_id, (range_id, version) in entries_before.items():
            entry = store.partial_index._entries.get(node_id)
            if entry is None:
                continue  # dropped with its range: fine
            if entry.is_current(store.ranges):
                surviving_current += 1
        # whatever survived as "current" must agree with a fresh probe —
        # exactly the partial-memo integrity check
        from repro.core.integrity import integrity_report

        assert integrity_report(store).ok

    def test_reads_after_compaction_return_the_same_content(self):
        store = self._compactable_store()
        node_ids = []
        for meta in store.ranges.in_order():
            if meta.has_interval:
                node_ids.extend((meta.start_id, meta.end_id))
        before = {node_id: store.read(node_id) for node_id in node_ids}
        store.compact()
        for node_id, text in before.items():
            assert store.read(node_id) == text  # memo staleness is invisible
