"""Self-healing repair (repro.core.repair): structural salvage, full-log
rebuild, degraded reads and the directory-store repair entry point."""

import json
import os

import pytest

from repro.core.config import StoreConfig
from repro.core.repair import (
    SIDECAR_FILE,
    degraded_read,
    read_sidecar,
    rebuild_from_wal,
    repair_directory,
    repair_store,
)
from repro.core.store import XMLStore
from repro.errors import ChecksumError


def make_store(orders=8, checksums=True):
    store = XMLStore.open(
        StoreConfig(
            page_size=512, buffer_pool_capacity=8, checksums_enabled=checksums
        )
    )
    root = store.load_document("<r/>")
    for index in range(orders):
        store.insert_into_last(root, f"<e n='{index}'>tok-{index}</e>")
    store.checkpoint()
    return store, root


def corrupt_block(store, block_no):
    image = bytearray(store.device.read_block(block_no))
    image[-1] ^= 0x10
    store.device.write_block(block_no, bytes(image))


class TestRepairStore:
    def test_clean_store_repair_is_a_no_op(self):
        store, _ = make_store()
        before = store.read()
        report = repair_store(store)
        assert report.mode == "clean"
        assert not report.degraded
        assert report.integrity_ok
        assert store.read() == before

    def test_salvage_keeps_surviving_records_and_restores_integrity(self):
        store, root = make_store(orders=30)
        before = store.read()
        chain_blocks = list(store.layout.chain.blocks())
        assert len(chain_blocks) > 2
        victim = chain_blocks[len(chain_blocks) // 2]
        corrupt_block(store, victim)
        report = repair_store(store)
        assert report.mode == "salvage"
        assert victim in report.bad_blocks
        assert report.integrity_ok
        # the repaired store reads — strictly when nothing was lost,
        # through the tolerant path when the salvage was degraded — and
        # everything it returns is genuine
        if report.degraded:
            assert report.lost_intervals or report.records_dropped
            result = degraded_read(store)
            for index in range(30):
                fragment = f"tok-{index}"
                if fragment in result.text:
                    assert fragment in before
        else:
            assert store.read() == before

    def test_repaired_store_stays_writable_even_when_degraded(self):
        """Killing the *last* chain block loses the root's end tag — the
        most degraded salvage there is.  Targeted inserts into the
        unclosed node are legitimately refused, but the store itself
        must keep accepting work (the torture harness's leg-3 probe)."""
        store, root = make_store()
        victim = list(store.layout.chain.blocks())[-1]
        corrupt_block(store, victim)
        report = repair_store(store)
        assert report.integrity_ok
        probe = store.load_document("<post-repair-probe/>")
        assert probe is not None
        store.checkpoint()
        assert "<post-repair-probe/>" in degraded_read(store).text

    def test_quarantine_is_cleared_after_repair(self):
        store, _ = make_store()
        victim = list(store.layout.chain.blocks())[1]
        corrupt_block(store, victim)
        repair_store(store)
        assert store.pool.quarantined_blocks() == []

    def test_report_to_dict_is_json_ready(self):
        store, _ = make_store()
        victim = list(store.layout.chain.blocks())[0]
        corrupt_block(store, victim)
        payload = json.loads(json.dumps(repair_store(store).to_dict()))
        assert payload["mode"] == "salvage"
        assert isinstance(payload["degraded"], bool)
        assert payload["lost_ids"] == sum(
            high - low + 1 for low, high in payload["lost_intervals"]
        )


class TestRebuildFromWAL:
    def test_full_log_rebuild_restores_content_equality(self):
        store, _ = make_store()
        expected = store.read()
        rebuilt, replayed = rebuild_from_wal(
            store.wal, config=StoreConfig(page_size=512, buffer_pool_capacity=8)
        )
        assert replayed > 0
        assert rebuilt.read() == expected

    def test_rebuild_never_trusts_the_damaged_device(self):
        """The rebuild replays logged op *arguments* onto a fresh store,
        so content equality holds no matter how rotten the old device."""
        store, _ = make_store()
        expected = store.read()
        for block_no in store.layout.chain.blocks():
            corrupt_block(store, block_no)
        rebuilt, _ = rebuild_from_wal(
            store.wal, config=StoreConfig(page_size=512, buffer_pool_capacity=8)
        )
        assert rebuilt.read() == expected


class TestDegradedRead:
    def test_clean_store_reads_complete(self):
        store, _ = make_store()
        result = degraded_read(store)
        assert result.complete
        assert result.text == store.read()
        assert not result.lost_intervals

    def test_damage_shows_up_as_absence_never_wrong_answers(self):
        store, _ = make_store()
        full_text = store.read()
        victim = list(store.layout.chain.blocks())[1]
        corrupt_block(store, victim)
        store.pool.drop_all()
        result = degraded_read(store)
        assert not result.complete
        assert result.ranges_lost > 0
        # every surviving element the degraded read returns was really
        # in the document (genuine content, merely incomplete)
        for index in range(8):
            fragment = f"tok-{index}"
            if fragment in result.text:
                assert fragment in full_text

    def test_to_dict_is_json_ready(self):
        store, _ = make_store()
        payload = json.loads(json.dumps(degraded_read(store).to_dict()))
        assert payload["complete"] is True


class TestRepairDirectory:
    def _build(self, path, orders=6):
        from repro.core.filestore import open_directory, close_directory

        store = open_directory(path)
        root = store.load_document("<r/>")
        for index in range(orders):
            store.insert_into_last(root, f"<e n='{index}'>tok-{index}</e>")
        expected = store.read()
        close_directory(path, store)
        return expected

    def _corrupt_one_chain_block(self, path):
        from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
        from repro.storage.disk import FileBlockDevice

        config = StoreConfig()
        with open(os.path.join(path, CATALOG_FILE), "rb") as handle:
            catalog = handle.read()
        device = FileBlockDevice(
            os.path.join(path, DEVICE_FILE), block_size=config.page_size
        )
        store = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        victim = next(iter(store.layout.chain.blocks()))
        image = bytearray(device.read_block(victim))
        image[-1] ^= 0x10
        device.write_block(victim, bytes(image))
        device.close()
        return victim

    def test_wal_rebuild_recovers_everything(self, tmp_path):
        path = str(tmp_path / "store")
        expected = self._build(path)
        self._corrupt_one_chain_block(path)
        report = repair_directory(path)
        assert report.mode == "wal-rebuild"
        assert not report.degraded
        assert report.replayed_ops > 0
        assert not os.path.exists(os.path.join(path, SIDECAR_FILE))
        from repro.core.filestore import open_directory, close_directory

        store = open_directory(path)
        assert store.read() == expected
        close_directory(path, store)

    def test_salvage_fallback_writes_a_degraded_sidecar(self, tmp_path):
        from repro.core.filestore import WAL_FILE

        path = str(tmp_path / "store")
        self._build(path)
        self._corrupt_one_chain_block(path)
        os.remove(os.path.join(path, WAL_FILE))  # no log: salvage only
        report = repair_directory(path)
        assert report.mode == "salvage"
        assert report.integrity_ok
        if report.degraded:
            sidecar = read_sidecar(path)
            assert sidecar is not None
            assert sidecar["degraded"] is True
        else:
            assert read_sidecar(path) is None

    def test_read_sidecar_absent_is_none(self, tmp_path):
        assert read_sidecar(str(tmp_path)) is None
