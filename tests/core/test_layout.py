"""Unit tests for the physical token layout."""

import pytest

from repro.errors import StoreError
from repro.core.layout import TokenLayout
from repro.core.ranges import RangeTable
from repro.storage.buffer import BufferPool
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice
from repro.storage.heap import Position


def make_layout(block_size=128, capacity=16):
    device = InstrumentedDevice(MemoryBlockDevice(block_size=block_size))
    pool = BufferPool(device, capacity=capacity)
    ranges = RangeTable()
    return TokenLayout(pool, ranges), ranges


def contents(layout):
    return [record for _, record in layout.iter_from(None)]


class TestAppend:
    def test_empty_layout(self):
        layout, _ = make_layout()
        assert layout.is_empty
        assert contents(layout) == []

    def test_first_append(self):
        layout, _ = make_layout()
        result = layout.insert_before(None, [b"a", b"b"])
        assert contents(layout) == [b"a", b"b"]
        assert result.following is None
        assert len(result.positions) == 2

    def test_append_spills_blocks(self):
        layout, _ = make_layout(block_size=64)
        records = [bytes([65 + i]) * 20 for i in range(10)]
        layout.insert_before(None, records)
        assert contents(layout) == records
        assert layout.chain.num_blocks > 1

    def test_second_append_continues_at_tail(self):
        layout, _ = make_layout()
        layout.insert_before(None, [b"a"])
        result = layout.insert_before(None, [b"b"])
        assert contents(layout) == [b"a", b"b"]
        assert result.following is None

    def test_empty_records_rejected(self):
        layout, _ = make_layout()
        with pytest.raises(StoreError):
            layout.insert_before(None, [])


class TestInsertAtFront:
    def test_front_insert_does_not_move_displaced_record(self):
        layout, _ = make_layout()
        layout.insert_before(None, [b"x"])
        old_pos = next(layout.iter_from(None))[0]
        result = layout.insert_before(old_pos, [b"a", b"b"])
        assert contents(layout) == [b"a", b"b", b"x"]
        assert result.following == old_pos  # displaced record did not move

    def test_front_insert_mid_chain_uses_predecessor_tail(self):
        layout, _ = make_layout(block_size=64)
        layout.insert_before(None, [b"a" * 30, b"b" * 30])  # two blocks
        blocks = list(layout.chain.blocks())
        assert len(blocks) == 2
        result = layout.insert_before(Position(blocks[1], 0), [b"m" * 10])
        assert contents(layout) == [b"a" * 30, b"m" * 10, b"b" * 30]
        # the small record fit in the first block's tail
        assert result.positions[0].block_no == blocks[0]


class TestInteriorInsert:
    def test_interior_insert_splits_block(self):
        layout, ranges = make_layout()
        result0 = layout.insert_before(None, [b"a", b"c"])
        meta = ranges.new_range(result0.positions[0], 2, 1, 2)
        ranges.add_resident(result0.positions[0].block_no, meta.range_id)
        pos_c = result0.positions[1]
        result = layout.insert_before(pos_c, [b"b"])
        assert contents(layout) == [b"a", b"b", b"c"]
        assert result.following is not None
        assert layout.record_at(result.following) == b"c"

    def test_interior_insert_bumps_resident_versions(self):
        layout, ranges = make_layout()
        result0 = layout.insert_before(None, [b"a", b"c"])
        meta = ranges.new_range(result0.positions[0], 2, 1, 2)
        ranges.add_resident(result0.positions[0].block_no, meta.range_id)
        v = meta.version
        layout.insert_before(result0.positions[1], [b"b"])
        assert meta.version > v

    def test_interior_insert_fixes_relocated_range_starts(self):
        layout, ranges = make_layout()
        result0 = layout.insert_before(None, [b"a", b"b", b"c", b"d"])
        block = result0.positions[0].block_no
        first = ranges.new_range(result0.positions[0], 2, 1, 2)
        second = ranges.new_range(result0.positions[2], 2, 3, 4)
        for meta in (first, second):
            ranges.add_resident(block, meta.range_id)
        # insert before "c" (start of the second range)
        layout.insert_before(result0.positions[2], [b"x"])
        assert contents(layout) == [b"a", b"b", b"x", b"c", b"d"]
        # second range's start must still point at "c"
        assert layout.record_at(second.start) == b"c"
        assert layout.record_at(first.start) == b"a"

    def test_large_interior_insert(self):
        layout, ranges = make_layout(block_size=64)
        result0 = layout.insert_before(None, [b"HEAD" * 4, b"TAIL" * 4])
        meta = ranges.new_range(result0.positions[0], 2, 1, 2)
        ranges.add_resident(result0.positions[0].block_no, meta.range_id)
        run = [bytes([97 + i]) * 15 for i in range(12)]
        result = layout.insert_before(result0.positions[1], run)
        assert contents(layout) == [b"HEAD" * 4] + run + [b"TAIL" * 4]
        assert layout.record_at(result.following) == b"TAIL" * 4


class TestDeleteRun:
    def setup_layout(self, records, block_size=64):
        layout, ranges = make_layout(block_size=block_size)
        result = layout.insert_before(None, records)
        return layout, ranges, result.positions

    def test_delete_within_block(self):
        layout, _, positions = self.setup_layout([b"a", b"b", b"c", b"d"], 256)
        after = layout.delete_run(positions[1], 2)
        assert contents(layout) == [b"a", b"d"]
        assert layout.record_at(after) == b"d"

    def test_delete_to_end_returns_none(self):
        layout, _, positions = self.setup_layout([b"a", b"b"], 256)
        after = layout.delete_run(positions[0], 2)
        assert after is None
        assert contents(layout) == []

    def test_delete_across_blocks(self):
        records = [bytes([65 + i]) * 20 for i in range(8)]
        layout, _, positions = self.setup_layout(records)
        assert layout.chain.num_blocks > 2
        after = layout.delete_run(positions[1], 5)
        assert contents(layout) == [records[0]] + records[6:]
        assert layout.record_at(after) == records[6]

    def test_delete_removes_empty_blocks(self):
        records = [bytes([65 + i]) * 20 for i in range(8)]
        layout, _, positions = self.setup_layout(records)
        blocks_before = layout.chain.num_blocks
        layout.delete_run(positions[0], 7)
        assert layout.chain.num_blocks < blocks_before
        layout.chain.check_integrity()

    def test_delete_shifts_following_range_starts(self):
        layout, ranges, positions = self.setup_layout(
            [b"a", b"b", b"c", b"d"], block_size=256
        )
        block = positions[0].block_no
        tail_range = ranges.new_range(positions[3], 1, 10, 10)
        ranges.add_resident(block, tail_range.range_id)
        layout.delete_run(positions[1], 2)
        assert layout.record_at(tail_range.start) == b"d"

    def test_delete_bumps_versions(self):
        layout, ranges, positions = self.setup_layout([b"a", b"b"], block_size=256)
        meta = ranges.new_range(positions[0], 2, 1, 2)
        ranges.add_resident(positions[0].block_no, meta.range_id)
        v = meta.version
        layout.delete_run(positions[1], 1)
        assert meta.version > v

    def test_delete_zero_records_rejected(self):
        layout, _, positions = self.setup_layout([b"a"], block_size=256)
        with pytest.raises(StoreError):
            layout.delete_run(positions[0], 0)

    def test_delete_past_end_rejected(self):
        layout, _, positions = self.setup_layout([b"a"], block_size=256)
        with pytest.raises(StoreError):
            layout.delete_run(positions[0], 5)


class TestIntegrity:
    def test_check_integrity_passes_on_tiled_ranges(self):
        layout, ranges = make_layout()
        result = layout.insert_before(None, [b"a", b"b", b"c"])
        ranges.new_range(result.positions[0], 2, 1, 2)
        ranges.new_range(result.positions[2], 1, 3, 3)
        layout.check_integrity()

    def test_check_integrity_detects_bad_start(self):
        layout, ranges = make_layout()
        result = layout.insert_before(None, [b"a", b"b"])
        ranges.new_range(Position(99, 0), 2, 1, 2)
        with pytest.raises(StoreError):
            layout.check_integrity()

    def test_check_integrity_detects_uncovered_records(self):
        layout, ranges = make_layout()
        result = layout.insert_before(None, [b"a", b"b"])
        ranges.new_range(result.positions[0], 1, 1, 1)  # covers only "a"
        with pytest.raises(StoreError):
            layout.check_integrity()
