"""Edge-case coverage for the store: odd node kinds, odd sizes, limits."""

import pytest

from repro.errors import (
    InvalidOperationError,
    NodeNotFoundError,
    RecordTooLargeError,
)
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore


class TestAttributeAndNamespaceNodes:
    def test_read_attribute_node(self):
        store = XMLStore.open()
        store.load_document("<r a='1'><b/></r>")
        assert store.read(2) == 'a="1"'

    def test_read_attribute_escapes_value(self):
        store = XMLStore.open()
        store.load_document("<r a='x&quot;y'/>")
        assert store.read(2) == 'a="x&quot;y"'

    def test_read_namespace_node(self):
        store = XMLStore.open()
        store.load_document('<p:r xmlns:p="urn:x"/>')
        assert store.read(2) == 'xmlns:p="urn:x"'

    def test_read_default_namespace_node(self):
        store = XMLStore.open()
        store.load_document('<r xmlns="urn:y"/>')
        assert store.read(2) == 'xmlns="urn:y"'

    def test_delete_attribute_node(self):
        store = XMLStore.open()
        store.load_document("<r a='1' b='2'/>")
        store.delete_node(2)
        assert store.read() == '<r b="2"/>'
        store.check_integrity()

    def test_insert_sibling_of_attribute_rejected(self):
        store = XMLStore.open()
        store.load_document("<r a='1'/>")
        with pytest.raises(InvalidOperationError):
            store.insert_after(2, "<x/>")
        with pytest.raises(InvalidOperationError):
            store.insert_before(2, "<x/>")

    def test_namespaces_roundtrip_through_updates(self):
        store = XMLStore.open()
        store.load_document('<p:r xmlns:p="urn:x"><p:c/></p:r>')
        store.insert_into_last(1, "<p:d/>")
        assert store.read() == '<p:r xmlns:p="urn:x"><p:c/><p:d/></p:r>'


class TestCommentsAndPIs:
    def test_comment_node_operations(self):
        store = XMLStore.open()
        store.load_document("<r><!--note--><b/></r>")
        assert store.read(2) == "<!--note-->"
        store.delete_node(2)
        assert store.read() == "<r><b/></r>"

    def test_pi_node_operations(self):
        store = XMLStore.open()
        store.load_document("<r><?target data?></r>")
        assert store.read(2) == "<?target data?>"
        store.replace_node(2, "<!--was a pi-->")
        assert store.read() == "<r><!--was a pi--></r>"

    def test_top_level_comment(self):
        store = XMLStore.open()
        store.load_document("<!--prolog--><r/>")
        assert store.read() == "<!--prolog--><r/>"
        assert store.read(1) == "<!--prolog-->"


class TestSizesAndLimits:
    def test_text_larger_than_page_raises_cleanly(self):
        store = XMLStore.open(StoreConfig(page_size=512))
        with pytest.raises(RecordTooLargeError):
            store.load_document(f"<a>{'x' * 2000}</a>")

    def test_text_just_under_page_limit_works(self):
        store = XMLStore.open(StoreConfig(page_size=512))
        text = "x" * 400
        store.load_document(f"<a>{text}</a>")
        assert text in store.read()

    def test_unicode_heavy_content(self):
        store = XMLStore.open()
        xml = "<r>héllo wörld ✓ — ∀x∈X: ≤ 𝄞</r>"
        store.load_document(xml)
        assert store.read() == xml
        assert store.read(2) == "héllo wörld ✓ — ∀x∈X: ≤ 𝄞"

    def test_deep_nesting(self):
        store = XMLStore.open()
        depth = 200
        xml = "".join(f"<d{i}>" for i in range(depth)) + "".join(
            f"</d{i}>" for i in reversed(range(depth))
        )
        store.load_document(xml)
        assert store.read(depth) == f"<d{depth - 1}/>"  # the innermost node
        store.check_integrity()

    def test_wide_document(self):
        store = XMLStore.open(StoreConfig(page_size=1024, buffer_pool_capacity=8))
        children = "".join(f"<c{i}/>" for i in range(500))
        store.load_document(f"<r>{children}</r>")
        assert store.read(400) == "<c398/>"
        store.check_integrity()

    def test_many_attributes(self):
        store = XMLStore.open()
        attrs = " ".join(f'a{i}="{i}"' for i in range(50))
        store.load_document(f"<r {attrs}/>")
        assert store.read(25) == f'a{23}="{23}"'
        assert len(store.attributes_of(1)) == 50


class TestDegenerateOperations:
    def test_operations_on_empty_store(self):
        store = XMLStore.open()
        with pytest.raises(NodeNotFoundError):
            store.read(1)
        with pytest.raises(NodeNotFoundError):
            store.delete_node(1)
        assert store.read() == ""

    def test_load_markup_only_fragment(self):
        store = XMLStore.open()
        result = store.load_document("   ")
        assert result is None
        assert store.is_empty

    def test_replace_node_with_multiple_nodes(self):
        store = XMLStore.open()
        store.load_document("<r><a/></r>")
        store.replace_node(2, "<x/><y/>text")
        assert store.read() == "<r><x/><y/>text</r>"
        store.check_integrity()

    def test_alternating_insert_delete_churn(self):
        store = XMLStore.open(StoreConfig(page_size=512, buffer_pool_capacity=8))
        root = store.load_document("<r/>")
        live = []
        for index in range(60):
            live.append(store.insert_into_last(root, f"<e{index}/>"))
            if index % 3 == 2:
                store.delete_node(live.pop(0))
        store.check_integrity()
        text = store.read()
        for node_id in live:
            assert store.exists(node_id)

    def test_whole_document_rewrite_loop(self):
        store = XMLStore.open()
        store.load_document("<v n='0'/>")
        current_root = 1
        for version in range(1, 10):
            current_root = store.replace_node(current_root, f"<v n='{version}'/>")
        assert store.read() == '<v n="9"/>'
        store.check_integrity()

    def test_mixed_policies_same_answers_after_churn(self):
        outputs = set()
        for policy in IndexingPolicy:
            store = XMLStore.open(StoreConfig(policy=policy))
            root = store.load_document("<r><a/><b>t</b></r>")
            store.insert_into_first(root, "<first/>")
            store.delete_node(store.xpath("//b")[0].node_id)
            store.insert_after(store.xpath("//a")[0].node_id, "<after/>")
            outputs.add(store.read())
        assert len(outputs) == 1
