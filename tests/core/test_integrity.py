"""Structured integrity checking (repro.core.integrity)."""

import json

import pytest

from repro.core.config import StoreConfig
from repro.core.integrity import IntegrityCheck, IntegrityReport, integrity_report
from repro.core.store import XMLStore
from repro.errors import StoreError

CHECK_NAMES = (
    "layout",
    "range-index",
    "id-density",
    "partial-memo",
    "block-checksum",
    "quarantine",
)


def _store(max_range_tokens=32):
    store = XMLStore.open(StoreConfig(max_range_tokens=max_range_tokens))
    store.load_document(
        "<r>" + "".join(f"<a n='{i}'><b/></a>" for i in range(10)) + "</r>"
    )
    return store


class TestHealthyStore:
    def test_every_check_runs_and_passes(self):
        report = integrity_report(_store())
        assert report.ok
        assert [check.name for check in report.checks] == list(CHECK_NAMES)
        assert all(check.ok for check in report.checks)
        assert report.failed() == []

    def test_detail_counts_the_ranges(self):
        store = _store()
        report = integrity_report(store)
        by_name = {check.name: check for check in report.checks}
        assert by_name["layout"].detail["ranges"] == len(store.ranges)
        assert by_name["id-density"].detail["ranges"] == len(store.ranges)
        assert len(store.ranges) > 1  # granular config: a real multi-range store

    def test_empty_store_is_ok(self):
        report = integrity_report(XMLStore.open(StoreConfig()))
        assert report.ok

    def test_render_ends_with_verdict(self):
        text = integrity_report(_store()).render()
        lines = text.splitlines()
        assert lines[-1] == "integrity ok"
        # one line per check, each naming it and its status
        for name in CHECK_NAMES:
            assert any(line.startswith(name) and " ok " in line for line in lines)

    def test_to_dict_is_json_ready(self):
        payload = json.loads(json.dumps(integrity_report(_store()).to_dict()))
        assert payload["ok"] is True
        assert len(payload["checks"]) == len(CHECK_NAMES)
        assert all("error" not in check for check in payload["checks"])


class TestCorruptedStore:
    def _corrupt(self):
        """Widen one range's claimed id interval so replaying its tokens
        no longer regenerates [start_id..end_id]."""
        store = _store()
        meta = next(iter(store.ranges.in_order()))
        meta.end_id += 1
        return store

    def test_failure_lands_in_the_report(self):
        report = integrity_report(self._corrupt())
        assert not report.ok
        failed_names = [check.name for check in report.failed()]
        assert "id-density" in failed_names
        for check in report.failed():
            assert check.error  # the broken invariant is spelled out

    def test_all_checks_still_run(self):
        # one corrupted structure must not mask the state of the rest
        report = integrity_report(self._corrupt())
        assert [check.name for check in report.checks] == list(CHECK_NAMES)

    def test_render_names_the_failures(self):
        text = integrity_report(self._corrupt()).render()
        assert "integrity FAILED:" in text.splitlines()[-1]
        assert "FAILED" in text

    def test_to_dict_carries_the_errors(self):
        payload = integrity_report(self._corrupt()).to_dict()
        assert payload["ok"] is False
        failed = [c for c in payload["checks"] if not c["ok"]]
        assert failed and all(c["error"] for c in failed)

    def test_store_check_integrity_raises_naming_the_check(self):
        store = self._corrupt()
        with pytest.raises(StoreError) as excinfo:
            store.check_integrity()
        assert "integrity check" in str(excinfo.value)

    def test_healthy_check_integrity_is_quiet(self):
        _store().check_integrity()  # no exception


class TestPartialMemo:
    """The partial-memo check: current entries vs. a from-scratch probe."""

    def _store_with_memos(self):
        store = _store()
        node_ids = []
        for meta in store.ranges.in_order():
            if meta.has_interval:
                node_ids.extend(range(meta.start_id, meta.end_id + 1))
        for node_id in node_ids[:6]:
            store.read(node_id)  # memoize some lookups
        assert len(store.partial_index) > 1
        return store

    def test_healthy_memos_pass_and_are_counted(self):
        report = integrity_report(self._store_with_memos())
        by_name = {check.name: check for check in report.checks}
        assert by_name["partial-memo"].ok
        assert by_name["partial-memo"].detail["entries"] > 0

    def test_stale_entries_are_legal(self):
        # bump the version of every memoized range: the entries go stale,
        # which invalidation-by-version handles — not an integrity failure
        store = self._store_with_memos()
        for entry in store.partial_index._entries.values():
            store.ranges.get(entry.range_id).version += 1
        report = integrity_report(store)
        by_name = {check.name: check for check in report.checks}
        assert by_name["partial-memo"].ok
        assert by_name["partial-memo"].detail["stale"] > 0
        assert by_name["partial-memo"].detail["entries"] == 0

    def test_current_entry_at_wrong_offset_fails(self):
        store = self._store_with_memos()
        entry = next(iter(store.partial_index._entries.values()))
        meta = store.ranges.get(entry.range_id)
        entry.begin_offset = meta.token_count + 5  # points past the range
        report = integrity_report(store)
        failed_names = [check.name for check in report.failed()]
        assert failed_names == ["partial-memo"]

    def test_current_entry_naming_the_wrong_node_fails(self):
        store = self._store_with_memos()
        entries = list(store.partial_index._entries.values())
        a, b = entries[0], entries[1]
        # graft b's location onto a's entry: current version, wrong node
        a.range_id, a.version = b.range_id, b.version
        a.begin_pos, a.begin_offset = b.begin_pos, b.begin_offset
        report = integrity_report(store)
        assert [check.name for check in report.failed()] == ["partial-memo"]
        assert "resolves to node" in report.failed()[0].error

    def test_no_partial_index_reports_zero_entries(self):
        from repro.core.config import IndexingPolicy

        store = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE))
        store.load_document("<r><a/></r>")
        report = integrity_report(store)
        by_name = {check.name: check for check in report.checks}
        assert by_name["partial-memo"].ok
        assert by_name["partial-memo"].detail["entries"] == 0


class TestReportPlumbing:
    def test_ok_property_over_mixed_checks(self):
        report = IntegrityReport(
            checks=[
                IntegrityCheck("a", "first", ok=True),
                IntegrityCheck("b", "second", ok=False, error="boom"),
            ]
        )
        assert not report.ok
        assert [check.name for check in report.failed()] == ["b"]
        text = report.render()
        assert text.splitlines()[-1] == "integrity FAILED: b"
        assert "boom" in text
