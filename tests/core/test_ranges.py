"""Unit tests for range metadata and the range table."""

import pytest

from repro.errors import StoreError
from repro.core.ranges import RangeMeta, RangeTable
from repro.storage.heap import Position


def make_meta(table, start_id=1, end_id=10, count=20, block=0):
    return table.new_range(
        start=Position(block, 0), token_count=count, start_id=start_id, end_id=end_id
    )


class TestRangeMeta:
    def test_covers(self):
        table = RangeTable()
        meta = make_meta(table, 10, 20)
        assert meta.covers(10) and meta.covers(20) and meta.covers(15)
        assert not meta.covers(9) and not meta.covers(21)

    def test_empty_interval_covers_nothing(self):
        table = RangeTable()
        meta = table.new_range(Position(0, 0), 5, None, None)
        assert not meta.has_interval
        assert not meta.covers(1)

    def test_bump_increments_version(self):
        table = RangeTable()
        meta = make_meta(table)
        v = meta.version
        meta.bump()
        assert meta.version == v + 1


class TestOrdering:
    def test_append_order(self):
        table = RangeTable()
        a = make_meta(table, 1, 10)
        b = make_meta(table, 11, 20)
        assert [m.range_id for m in table.in_order()] == [a.range_id, b.range_id]

    def test_insert_after(self):
        table = RangeTable()
        a = make_meta(table, 1, 10)
        c = make_meta(table, 21, 30)
        b = table.new_range(Position(0, 5), 5, 11, 20, after=a.range_id)
        assert [m.range_id for m in table.in_order()] == [
            a.range_id, b.range_id, c.range_id
        ]

    def test_insert_before(self):
        table = RangeTable()
        b = make_meta(table, 11, 20)
        a = table.new_range(Position(0, 0), 5, 1, 10, before=b.range_id)
        assert [m.range_id for m in table.in_order()] == [a.range_id, b.range_id]

    def test_successor_predecessor(self):
        table = RangeTable()
        a = make_meta(table, 1, 10)
        b = make_meta(table, 11, 20)
        assert table.successor(a.range_id).range_id == b.range_id
        assert table.predecessor(b.range_id).range_id == a.range_id
        assert table.successor(b.range_id) is None
        assert table.predecessor(a.range_id) is None

    def test_first_last(self):
        table = RangeTable()
        assert table.first is None and table.last is None
        a = make_meta(table, 1, 10)
        b = make_meta(table, 11, 20)
        assert table.first.range_id == a.range_id
        assert table.last.range_id == b.range_id

    def test_drop(self):
        table = RangeTable()
        a = make_meta(table, 1, 10)
        b = make_meta(table, 11, 20)
        table.drop(a.range_id)
        assert len(table) == 1
        assert a.range_id not in table
        with pytest.raises(StoreError):
            table.get(a.range_id)

    def test_range_ids_never_reused(self):
        table = RangeTable()
        a = make_meta(table, 1, 10)
        table.drop(a.range_id)
        b = make_meta(table, 11, 20)
        assert b.range_id != a.range_id


class TestResidency:
    def test_add_and_query(self):
        table = RangeTable()
        a = make_meta(table)
        table.add_resident(5, a.range_id)
        assert a.range_id in table.residents(5)
        assert table.residents(6) == set()

    def test_bump_block_bumps_residents(self):
        table = RangeTable()
        a = make_meta(table, 1, 10)
        b = make_meta(table, 11, 20)
        table.add_resident(3, a.range_id)
        va, vb = a.version, b.version
        table.bump_block(3)
        assert a.version == va + 1
        assert b.version == vb

    def test_copy_residents(self):
        table = RangeTable()
        a = make_meta(table)
        table.add_resident(1, a.range_id)
        table.copy_residents(1, 2)
        assert a.range_id in table.residents(2)

    def test_blocks_of(self):
        table = RangeTable()
        a = make_meta(table)
        table.add_resident(1, a.range_id)
        table.add_resident(4, a.range_id)
        assert sorted(table.blocks_of(a.range_id)) == [1, 4]

    def test_drop_removes_residency(self):
        table = RangeTable()
        a = make_meta(table)
        table.add_resident(1, a.range_id)
        table.drop(a.range_id)
        assert table.residents(1) == set()

    def test_forget_block(self):
        table = RangeTable()
        a = make_meta(table)
        table.add_resident(1, a.range_id)
        table.forget_block(1)
        assert table.residents(1) == set()


class TestIntegrityAndCatalog:
    def test_disjoint_intervals_ok(self):
        table = RangeTable()
        make_meta(table, 1, 70)
        make_meta(table, 101, 140)
        make_meta(table, 71, 100)
        table.check_integrity()

    def test_overlapping_intervals_detected(self):
        table = RangeTable()
        make_meta(table, 1, 70)
        make_meta(table, 60, 100)
        with pytest.raises(StoreError, match="overlapping"):
            table.check_integrity()

    def test_catalog_roundtrip(self):
        table = RangeTable()
        a = make_meta(table, 1, 70, count=140, block=1)
        b = table.new_range(Position(2, 3), 80, 101, 140, after=a.range_id)
        empty = table.new_range(Position(3, 0), 2, None, None)
        a.bump()
        restored = RangeTable.from_catalog(table.to_catalog())
        assert [m.range_id for m in restored.in_order()] == [
            m.range_id for m in table.in_order()
        ]
        ra = restored.get(a.range_id)
        assert ra.start == Position(1, 0)
        assert ra.version == a.version
        assert (ra.start_id, ra.end_id) == (1, 70)
        re = restored.get(empty.range_id)
        assert not re.has_interval

    def test_catalog_preserves_next_range_id(self):
        table = RangeTable()
        a = make_meta(table)
        restored = RangeTable.from_catalog(table.to_catalog())
        b = make_meta(restored, 100, 110)
        assert b.range_id == a.range_id + 1

    def test_total_tokens(self):
        table = RangeTable()
        make_meta(table, 1, 10, count=20)
        make_meta(table, 11, 20, count=30)
        assert table.total_tokens == 50
