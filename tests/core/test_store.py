"""Unit tests for the XMLStore: the paper's Table-1 interface."""

import pytest

from repro.errors import InvalidOperationError, NodeNotFoundError, XMLSyntaxError
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore

ALL_POLICIES = [
    IndexingPolicy.FULL,
    IndexingPolicy.RANGE,
    IndexingPolicy.RANGE_PLUS_PARTIAL,
    IndexingPolicy.ADAPTIVE,
]


def make_store(policy=IndexingPolicy.RANGE_PLUS_PARTIAL, **kwargs):
    return XMLStore.open(StoreConfig(policy=policy, **kwargs))


@pytest.fixture(params=ALL_POLICIES, ids=[p.value for p in ALL_POLICIES])
def any_store(request):
    """The same behavioural contract must hold under every policy."""
    return make_store(policy=request.param)


class TestLoadAndRead:
    def test_load_returns_root_id(self, any_store):
        root = any_store.load_document("<a/>")
        assert root == 1

    def test_read_round_trips(self, any_store):
        xml = "<ticket><hour>15</hour><name>Paul</name></ticket>"
        any_store.load_document(xml)
        assert any_store.read() == xml

    def test_read_single_node(self, any_store):
        any_store.load_document("<ticket><hour>15</hour><name>Paul</name></ticket>")
        assert any_store.read(2) == "<hour>15</hour>"
        assert any_store.read(4) == "<name>Paul</name>"

    def test_read_text_node(self, any_store):
        any_store.load_document("<ticket><hour>15</hour></ticket>")
        assert any_store.read(3) == "15"

    def test_read_with_attributes(self, any_store):
        xml = '<order no="7"><item sku="x">2</item></order>'
        any_store.load_document(xml)
        assert any_store.read() == xml

    def test_figure1_node_ids(self, any_store):
        """Figure 1: ticket=1, hour=2, '15'=3, name=4, 'Paul'=5."""
        any_store.load_document("<ticket><hour>15</hour><name>Paul</name></ticket>")
        assert any_store.read(1).startswith("<ticket>")
        assert any_store.read(2) == "<hour>15</hour>"
        assert any_store.read(3) == "15"
        assert any_store.read(4) == "<name>Paul</name>"
        assert any_store.read(5) == "Paul"

    def test_missing_node_raises(self, any_store):
        any_store.load_document("<a/>")
        with pytest.raises(NodeNotFoundError):
            any_store.read(99)

    def test_empty_store(self, any_store):
        assert any_store.is_empty
        assert any_store.read() == ""

    def test_multiple_documents_in_order(self, any_store):
        any_store.load_document("<a/>")
        any_store.load_document("<b/>")
        assert any_store.read() == "<a/><b/>"

    def test_document_wrapper_stripped(self, any_store):
        any_store.load_document('<?xml version="1.0"?><r><x/></r>')
        assert any_store.read() == "<r><x/></r>"

    def test_bad_xml_rejected(self, any_store):
        with pytest.raises(XMLSyntaxError):
            any_store.load_document("<a><b></a>")

    def test_exists(self, any_store):
        any_store.load_document("<a><b/></a>")
        assert any_store.exists(2)
        assert not any_store.exists(5)


class TestInsertIntoLast:
    def test_insert_into_empty_element(self, any_store):
        root = any_store.load_document("<orders/>")
        any_store.insert_into_last(root, "<order>1</order>")
        assert any_store.read() == "<orders><order>1</order></orders>"

    def test_repeated_appends_preserve_order(self, any_store):
        root = any_store.load_document("<orders/>")
        for index in range(5):
            any_store.insert_into_last(root, f"<o{index}/>")
        assert any_store.read() == "<orders><o0/><o1/><o2/><o3/><o4/></orders>"
        any_store.check_integrity()

    def test_new_nodes_get_fresh_ids(self, any_store):
        root = any_store.load_document("<orders><a/></orders>")  # ids 1, 2
        new_id = any_store.insert_into_last(root, "<b/>")
        assert new_id == 3
        assert any_store.read(3) == "<b/>"

    def test_insert_into_nested_element(self, any_store):
        any_store.load_document("<r><mid><leaf/></mid></r>")
        any_store.insert_into_last(2, "<new/>")
        assert any_store.read() == "<r><mid><leaf/><new/></mid></r>"

    def test_insert_into_text_node_rejected(self, any_store):
        any_store.load_document("<a>text</a>")
        with pytest.raises(InvalidOperationError):
            any_store.insert_into_last(2, "<x/>")

    def test_insert_multi_node_fragment(self, any_store):
        root = any_store.load_document("<r/>")
        any_store.insert_into_last(root, "<a/>text<b/>")
        assert any_store.read() == "<r><a/>text<b/></r>"

    def test_paper_4_5_scenario_range_shape(self):
        """Tables 2–3: 100-node load + 40-node insert at node 60 gives
        three ranges with intervals [1..x], [101..140], [x+1..100]."""
        store = make_store()
        fragment = "".join(f"<c{i}/>" for i in range(49))
        store.load_document(f"<a>{fragment}</a><b>{fragment}</b>")  # 100 nodes
        snapshot = store.range_snapshot()
        assert len(snapshot) == 1
        assert snapshot[0][2:] == (1, 100)
        store.insert_into_last(60, "".join(f"<n{i}/>" for i in range(40)))
        snapshot = store.range_snapshot()
        assert len(snapshot) == 3
        intervals = [row[2:] for row in snapshot]
        assert intervals[0] == (1, 60)
        assert intervals[1] == (101, 140)
        assert intervals[2] == (61, 100)
        store.check_integrity()


class TestInsertIntoFirst:
    def test_insert_first_child(self, any_store):
        root = any_store.load_document("<r><old/></r>")
        any_store.insert_into_first(root, "<new/>")
        assert any_store.read() == "<r><new/><old/></r>"

    def test_insert_first_into_empty_element(self, any_store):
        root = any_store.load_document("<r/>")
        any_store.insert_into_first(root, "<only/>")
        assert any_store.read() == "<r><only/></r>"

    def test_insert_first_skips_attributes(self, any_store):
        root = any_store.load_document('<r a="1"><old/></r>')
        any_store.insert_into_first(root, "<new/>")
        assert any_store.read() == '<r a="1"><new/><old/></r>'

    def test_insert_first_into_attribute_only_element(self, any_store):
        root = any_store.load_document('<r a="1"/>')
        any_store.insert_into_first(root, "text")
        assert any_store.read() == '<r a="1">text</r>'


class TestInsertBeforeAfter:
    def test_insert_before_middle_sibling(self, any_store):
        any_store.load_document("<r><a/><c/></r>")
        any_store.insert_before(3, "<b/>")  # c has id 3
        assert any_store.read() == "<r><a/><b/><c/></r>"

    def test_insert_before_first_sibling(self, any_store):
        any_store.load_document("<r><a/></r>")
        any_store.insert_before(2, "<zero/>")
        assert any_store.read() == "<r><zero/><a/></r>"

    def test_insert_after_middle_sibling(self, any_store):
        any_store.load_document("<r><a/><c/></r>")
        any_store.insert_after(2, "<b/>")
        assert any_store.read() == "<r><a/><b/><c/></r>"

    def test_insert_after_last_sibling(self, any_store):
        any_store.load_document("<r><a/></r>")
        any_store.insert_after(2, "<b/>")
        assert any_store.read() == "<r><a/><b/></r>"

    def test_insert_after_subtree_skips_descendants(self, any_store):
        any_store.load_document("<r><a><deep><deeper/></deep></a></r>")
        any_store.insert_after(2, "<b/>")
        assert any_store.read() == "<r><a><deep><deeper/></deep></a><b/></r>"

    def test_insert_after_root(self, any_store):
        root = any_store.load_document("<a/>")
        any_store.insert_after(root, "<b/>")
        assert any_store.read() == "<a/><b/>"

    def test_insert_before_root(self, any_store):
        root = any_store.load_document("<b/>")
        any_store.insert_before(root, "<a/>")
        assert any_store.read() == "<a/><b/>"

    def test_insert_before_text_node(self, any_store):
        any_store.load_document("<r>tail</r>")
        any_store.insert_before(2, "<x/>")
        assert any_store.read() == "<r><x/>tail</r>"

    def test_empty_fragment_rejected(self, any_store):
        root = any_store.load_document("<a/>")
        with pytest.raises(InvalidOperationError):
            any_store.insert_after(root, "")


class TestDelete:
    def test_delete_leaf(self, any_store):
        any_store.load_document("<r><a/><b/></r>")
        any_store.delete_node(2)
        assert any_store.read() == "<r><b/></r>"
        any_store.check_integrity()

    def test_delete_subtree(self, any_store):
        any_store.load_document("<r><a><x/><y/></a><b/></r>")
        any_store.delete_node(2)
        assert any_store.read() == "<r><b/></r>"
        assert not any_store.exists(3)  # x went with its parent
        any_store.check_integrity()

    def test_delete_text_node(self, any_store):
        any_store.load_document("<r>text<b/></r>")
        any_store.delete_node(2)
        assert any_store.read() == "<r><b/></r>"

    def test_deleted_id_not_found(self, any_store):
        any_store.load_document("<r><a/><b/></r>")
        any_store.delete_node(2)
        with pytest.raises(NodeNotFoundError):
            any_store.read(2)

    def test_sibling_ids_survive_deletion(self, any_store):
        any_store.load_document("<r><a/><b/><c/></r>")
        any_store.delete_node(3)
        assert any_store.read(2) == "<a/>"
        assert any_store.read(4) == "<c/>"

    def test_delete_root_empties_store(self, any_store):
        root = any_store.load_document("<r><a/><b/></r>")
        any_store.delete_node(root)
        assert any_store.read() == ""
        assert any_store.is_empty
        any_store.check_integrity()

    def test_delete_node_spanning_inserted_range(self, any_store):
        """Delete a subtree that contains an earlier mid-insert (ids in the
        subtree are then non-contiguous)."""
        any_store.load_document("<r><a><x/></a><b/></r>")  # ids 1..4... a=2,x=3,b=4
        any_store.insert_into_last(2, "<late/>")  # id 5 inside a
        any_store.delete_node(2)
        assert any_store.read() == "<r><b/></r>"
        assert not any_store.exists(5)
        any_store.check_integrity()

    def test_reload_after_full_delete(self, any_store):
        root = any_store.load_document("<a/>")
        any_store.delete_node(root)
        new_root = any_store.load_document("<b/>")
        assert any_store.read() == "<b/>"
        assert new_root > root  # ids are never reused


class TestReplace:
    def test_replace_leaf_node(self, any_store):
        any_store.load_document("<r><a/><c/></r>")
        any_store.replace_node(2, "<b/>")
        assert any_store.read() == "<r><b/><c/></r>"
        any_store.check_integrity()

    def test_replace_subtree(self, any_store):
        any_store.load_document("<r><a><x/><y/></a><c/></r>")
        any_store.replace_node(2, "<b>done</b>")
        assert any_store.read() == "<r><b>done</b><c/></r>"

    def test_replace_returns_new_id(self, any_store):
        any_store.load_document("<r><a/></r>")
        new_id = any_store.replace_node(2, "<b/>")
        assert any_store.read(new_id) == "<b/>"
        with pytest.raises(NodeNotFoundError):
            any_store.read(2)

    def test_replace_last_node(self, any_store):
        any_store.load_document("<r><a/></r>")
        any_store.replace_node(1, "<s/>")
        assert any_store.read() == "<s/>"

    def test_replace_content_keeps_element_and_attributes(self, any_store):
        any_store.load_document('<r a="1"><old/>junk</r>')
        any_store.replace_content(1, "<new/>")
        assert any_store.read() == '<r a="1"><new/></r>'
        any_store.check_integrity()

    def test_replace_content_of_empty_element(self, any_store):
        any_store.load_document("<r/>")
        any_store.replace_content(1, "<child/>text")
        assert any_store.read() == "<r><child/>text</r>"

    def test_replace_content_with_empty(self, any_store):
        any_store.load_document("<r><a/><b/></r>")
        any_store.replace_content(1, "")
        assert any_store.read() == "<r/>"
        any_store.check_integrity()

    def test_replace_content_text_only(self, any_store):
        any_store.load_document("<price>10</price>")
        any_store.replace_content(1, "20")
        assert any_store.read() == "<price>20</price>"


class TestMixedWorkload:
    def test_interleaved_updates_and_reads(self, any_store):
        root = any_store.load_document("<log/>")
        ids = []
        for index in range(20):
            ids.append(any_store.insert_into_last(root, f"<e n='{index}'/>"))
        for index in (0, 5, 19):
            assert f"n=\"{index}\"" in any_store.read(ids[index])
        any_store.delete_node(ids[10])
        any_store.replace_node(ids[3], "<e n='three'/>")
        text = any_store.read()
        assert 'n="10"' not in text
        assert 'n="three"' in text
        any_store.check_integrity()

    def test_deep_nesting_growth(self, any_store):
        current = any_store.load_document("<d0/>")
        for depth in range(1, 15):
            current = any_store.insert_into_last(current, f"<d{depth}/>")
        text = any_store.read()
        assert "<d14/>" in text
        assert text.startswith("<d0><d1>")
        any_store.check_integrity()

    def test_many_small_documents(self, any_store):
        for index in range(30):
            any_store.load_document(f"<doc{index}/>")
        assert len(any_store.range_snapshot()) == 30
        assert any_store.read().count("<doc") == 30
        any_store.check_integrity()


class TestGranularity:
    def test_max_range_tokens_chunks_bulk_loads(self):
        store = make_store(max_range_tokens=10)
        fragment = "".join(f"<c{i}/>" for i in range(49))
        store.load_document(f"<a>{fragment}</a>")  # 100 tokens
        assert len(store.range_snapshot()) == 10
        store.check_integrity()
        assert store.read(25) == "<c23/>"

    def test_chunked_intervals_are_dense_and_disjoint(self):
        store = make_store(max_range_tokens=16)
        fragment = "".join(f"<c{i}/>" for i in range(49))
        store.load_document(f"<a>{fragment}</a>")
        rows = store.range_snapshot()
        previous_end = 0
        for _, _, start_id, end_id in rows:
            assert start_id == previous_end + 1
            previous_end = end_id
        assert previous_end == 50


class TestStatsAndSnapshots:
    def test_operation_counts(self):
        store = make_store()
        root = store.load_document("<r/>")
        store.insert_into_last(root, "<a/>")
        store.read()
        store.read(root)
        store.delete_node(2)
        ops = store.stats.operations
        assert ops.loads == 1
        assert ops.inserts == 1
        assert ops.reads == 1
        assert ops.node_reads == 1
        assert ops.deletes == 1

    def test_partial_index_populated_lazily(self):
        store = make_store()
        store.load_document("<r><a/><b/></r>")
        assert store.partial_snapshot() == []
        store.read(2)
        assert any(node_id == 2 for node_id, _ in store.partial_snapshot())

    def test_repeated_read_hits_partial_index(self):
        store = make_store()
        store.load_document("<r><a/><b/></r>")
        store.read(3)
        scans_before = store.locator.stats.scan_resolutions
        store.read(3)
        assert store.locator.stats.scan_resolutions == scans_before
        assert store.locator.stats.partial_resolutions >= 1

    def test_full_policy_resolves_through_full_index(self):
        store = make_store(policy=IndexingPolicy.FULL)
        store.load_document("<r><a/><b/></r>")
        store.read(3)
        assert store.locator.stats.full_resolutions >= 1
        assert store.locator.stats.scan_resolutions == 0

    def test_range_policy_always_scans(self):
        store = make_store(policy=IndexingPolicy.RANGE)
        store.load_document("<r><a/><b/></r>")
        store.read(3)
        store.read(3)
        assert store.locator.stats.scan_resolutions == 2

    def test_summary_renders(self):
        store = make_store()
        store.load_document("<r/>")
        text = store.stats.summary()
        assert "operations" in text and "partial index" in text
