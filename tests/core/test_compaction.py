"""Unit tests for range compaction (§9 extension)."""

import pytest

from repro.core.compaction import CompactionReport, can_merge, compact
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore


def fragmented_store(appends=10, policy=IndexingPolicy.RANGE_PLUS_PARTIAL):
    store = XMLStore.open(StoreConfig(policy=policy))
    root = store.load_document("<r/>")
    for index in range(appends):
        store.insert_into_last(root, f"<e{index}/>")
    return store


class TestCompaction:
    def test_appends_fragment_then_compact_merges(self):
        store = fragmented_store(10)
        before = len(store.range_snapshot())
        assert before > 5
        report = store.compact()
        assert report.ranges_after < report.ranges_before
        assert len(store.range_snapshot()) == report.ranges_after

    def test_content_unchanged(self):
        store = fragmented_store(8)
        text = store.read()
        store.compact()
        assert store.read() == text
        store.check_integrity()

    def test_node_ids_survive(self):
        store = fragmented_store(8)
        readable = {i: store.read(i) for i in range(1, 10) if store.exists(i)}
        store.compact()
        for node_id, xml in readable.items():
            assert store.read(node_id) == xml

    def test_updates_work_after_compaction(self):
        store = fragmented_store(6)
        store.compact()
        store.insert_into_last(1, "<after-compact/>")
        store.delete_node(2)
        assert "<after-compact/>" in store.read()
        store.check_integrity()

    def test_max_tokens_bounds_merges(self):
        store = fragmented_store(10)
        report = store.compact(max_tokens=4)
        # each appended element is 2 tokens; merges of more than 2 ranges
        # would exceed 4 tokens plus the root tokens
        for meta in store.ranges.in_order():
            assert meta.token_count <= 4 or meta.token_count == 0
        store.check_integrity()

    def test_compact_idempotent(self):
        store = fragmented_store(10)
        first = store.compact()
        second = store.compact()
        assert second.merges == 0
        assert second.ranges_before == first.ranges_after

    def test_compact_empty_store(self):
        store = XMLStore.open()
        report = store.compact()
        assert report.merges == 0

    def test_compact_single_range(self):
        store = XMLStore.open()
        store.load_document("<a><b/></a>")
        report = store.compact()
        assert report.merges == 0

    def test_id_gaps_block_merging(self):
        """Deleting from the middle leaves non-contiguous id intervals,
        which must not merge (regeneration would mis-assign ids)."""
        store = XMLStore.open()
        store.load_document("<r><a/><b/><c/></r>")   # ids 1..4, one range
        store.delete_node(3)                         # splits, gap at id 3
        snapshot_before = store.range_snapshot()
        store.compact()
        store.check_integrity()
        assert store.read(2) == "<a/>"
        assert store.read(4) == "<c/>"

    def test_compaction_shrinks_range_index(self):
        store = fragmented_store(10)
        entries_before = len(store.range_index)
        store.compact()
        assert len(store.range_index) < entries_before
        store.range_index.check_integrity(store.ranges)

    def test_lookup_still_correct_after_compaction(self):
        store = fragmented_store(10)
        store.compact()
        for node_id in range(2, 11):
            assert store.read(node_id).startswith("<e")

    def test_compaction_under_full_policy(self):
        store = fragmented_store(8, policy=IndexingPolicy.FULL)
        text = store.read()
        store.compact()
        assert store.read() == text
        assert store.read(3) is not None
        store.check_integrity()

    def test_report_fields(self):
        report = CompactionReport(ranges_before=10, ranges_after=3, merges=7)
        assert report.removed == 7


class TestCanMerge:
    def test_contiguous_intervals_merge(self):
        from repro.core.ranges import RangeTable
        from repro.storage.heap import Position

        table = RangeTable()
        left = table.new_range(Position(0, 0), 4, 1, 4)
        right = table.new_range(Position(0, 4), 4, 5, 8)
        assert can_merge(left, right)

    def test_gapped_intervals_do_not_merge(self):
        from repro.core.ranges import RangeTable
        from repro.storage.heap import Position

        table = RangeTable()
        left = table.new_range(Position(0, 0), 4, 1, 4)
        right = table.new_range(Position(0, 4), 4, 9, 12)
        assert not can_merge(left, right)

    def test_empty_interval_always_merges(self):
        from repro.core.ranges import RangeTable
        from repro.storage.heap import Position

        table = RangeTable()
        left = table.new_range(Position(0, 0), 4, 1, 4)
        empty = table.new_range(Position(0, 4), 2, None, None)
        assert can_merge(left, empty)
        assert can_merge(empty, left)
