"""Unit tests for statistics aggregation."""

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.locator import LocatorStats
from repro.core.partial_index import PartialIndexStats
from repro.core.stats import OperationCounts, StoreStatistics
from repro.core.store import XMLStore
from repro.storage.buffer import BufferStats
from repro.storage.disk import DiskStats


class TestOperationCounts:
    def test_updates_aggregate(self):
        counts = OperationCounts(loads=1, inserts=2, deletes=3, replaces=4)
        assert counts.updates == 10

    def test_read_ops_aggregate(self):
        counts = OperationCounts(reads=2, node_reads=5)
        assert counts.read_ops == 7

    def test_reset(self):
        counts = OperationCounts(loads=5, nodes_inserted=100)
        counts.reset()
        assert counts.loads == 0 and counts.nodes_inserted == 0

    def test_reset_zeroes_every_field(self):
        counts = OperationCounts(
            loads=1, reads=2, node_reads=3, inserts=4, deletes=5,
            replaces=6, ranges_created=7, ranges_split=8,
            ranges_dropped=9, nodes_inserted=10, nodes_deleted=11,
        )
        counts.reset()
        for name in counts.__dataclass_fields__:
            assert getattr(counts, name) == 0, name
        assert counts.updates == 0 and counts.read_ops == 0


class TestStoreStatistics:
    def _stats(self, with_partial=True):
        return StoreStatistics(
            operations=OperationCounts(loads=1, reads=2, inserts=3),
            locator=LocatorStats(scan_resolutions=4, tokens_scanned=50),
            disk=DiskStats(reads=6, writes=2, sequential_reads=5,
                           simulated_seconds=0.25),
            buffer=BufferStats(hits=3, misses=1, evictions=2),
            partial=PartialIndexStats(hits=3, misses=1, inserts=4)
            if with_partial else None,
        )

    def test_reset_cascades_to_every_layer(self):
        stats = self._stats()
        stats.reset()
        assert stats.operations.loads == 0
        assert stats.locator.scan_resolutions == 0
        assert stats.locator.tokens_scanned == 0
        assert stats.disk.reads == 0
        assert stats.disk.simulated_seconds == 0.0
        assert stats.buffer.hits == 0
        assert stats.partial.hits == 0 and stats.partial.inserts == 0

    def test_reset_tolerates_missing_partial_index(self):
        stats = self._stats(with_partial=False)
        stats.reset()  # must not raise
        assert stats.partial is None

    def test_summary_format_is_stable(self):
        # scripts parse these exact lines; the text is a contract
        expected = (
            "operations: 4 updates, 2 reads (0 ranges created, 0 split)\n"
            "locator: 0 via partial index, 0 via full index, "
            "4 via range scan (50 tokens scanned)\n"
            "disk: 6 reads (5 seq), 2 writes, 250.00 ms simulated\n"
            "buffer pool: 75.0% hit rate (3/4)\n"
            "partial index: 75.0% hit rate, 4 inserts, "
            "0 evictions, 0 stale"
        )
        assert self._stats().summary() == expected

    def test_summary_omits_partial_line_without_partial_index(self):
        text = self._stats(with_partial=False).summary()
        assert "partial index:" not in text
        assert text.startswith("operations: ")


class TestSimulatedClock:
    def test_clock_monotone_over_operations(self):
        store = XMLStore.open()
        t0 = store.simulated_seconds
        store.load_document("<r><a/></r>")
        t1 = store.simulated_seconds
        store.read(2)
        t2 = store.simulated_seconds
        assert t0 <= t1 <= t2

    def test_scan_tokens_cost_less_than_emitted(self):
        config = StoreConfig()
        assert config.cpu_cost_per_scan_token < config.cpu_cost_per_token

    def test_index_entries_counted_under_full_policy(self):
        store = XMLStore.open(StoreConfig(policy=IndexingPolicy.FULL))
        store.load_document("<r><a/><b/></r>")
        assert store.index_entries_loaded > 0

    def test_tokens_emitted_counts_serialization(self):
        store = XMLStore.open()
        store.load_document("<r><a/></r>")
        before = store.tokens_emitted
        store.read()
        assert store.tokens_emitted == before + 4  # r, a begins+ends

    def test_stats_object_reflects_policy(self):
        plain = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE))
        assert plain.stats.partial is None
        lazy = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE_PLUS_PARTIAL))
        assert lazy.stats.partial is not None

    def test_stats_reset(self):
        store = XMLStore.open()
        store.load_document("<r/>")
        store.read()
        store.stats.reset()
        assert store.operations.loads == 0
        assert store.locator.stats.tokens_scanned == 0
        assert store.pool.stats.accesses == 0
