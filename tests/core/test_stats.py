"""Unit tests for statistics aggregation."""

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.stats import OperationCounts
from repro.core.store import XMLStore


class TestOperationCounts:
    def test_updates_aggregate(self):
        counts = OperationCounts(loads=1, inserts=2, deletes=3, replaces=4)
        assert counts.updates == 10

    def test_read_ops_aggregate(self):
        counts = OperationCounts(reads=2, node_reads=5)
        assert counts.read_ops == 7

    def test_reset(self):
        counts = OperationCounts(loads=5, nodes_inserted=100)
        counts.reset()
        assert counts.loads == 0 and counts.nodes_inserted == 0


class TestSimulatedClock:
    def test_clock_monotone_over_operations(self):
        store = XMLStore.open()
        t0 = store.simulated_seconds
        store.load_document("<r><a/></r>")
        t1 = store.simulated_seconds
        store.read(2)
        t2 = store.simulated_seconds
        assert t0 <= t1 <= t2

    def test_scan_tokens_cost_less_than_emitted(self):
        config = StoreConfig()
        assert config.cpu_cost_per_scan_token < config.cpu_cost_per_token

    def test_index_entries_counted_under_full_policy(self):
        store = XMLStore.open(StoreConfig(policy=IndexingPolicy.FULL))
        store.load_document("<r><a/><b/></r>")
        assert store.index_entries_loaded > 0

    def test_tokens_emitted_counts_serialization(self):
        store = XMLStore.open()
        store.load_document("<r><a/></r>")
        before = store.tokens_emitted
        store.read()
        assert store.tokens_emitted == before + 4  # r, a begins+ends

    def test_stats_object_reflects_policy(self):
        plain = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE))
        assert plain.stats.partial is None
        lazy = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE_PLUS_PARTIAL))
        assert lazy.stats.partial is not None

    def test_stats_reset(self):
        store = XMLStore.open()
        store.load_document("<r/>")
        store.read()
        store.stats.reset()
        assert store.operations.loads == 0
        assert store.locator.stats.tokens_scanned == 0
        assert store.pool.stats.accesses == 0
