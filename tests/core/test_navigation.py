"""Unit tests for structural navigation (§9 extension)."""

import pytest

from repro.errors import NodeNotFoundError
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore


@pytest.fixture
def store():
    s = XMLStore.open()
    # ids: r=1, a=2(attr), x=3, y=4, 't'=5, z=6
    s.load_document("<r a='1'><x><y>t</y></x><z/></r>")
    return s


class TestParentOf:
    def test_parent_of_nested_element(self, store):
        assert store.parent_of(4) == 3
        assert store.parent_of(3) == 1

    def test_parent_of_root_is_none(self, store):
        assert store.parent_of(1) is None

    def test_parent_of_text_node(self, store):
        assert store.parent_of(5) == 4

    def test_parent_of_attribute(self, store):
        assert store.parent_of(2) == 1

    def test_parent_of_top_level_sibling(self, store):
        store.load_document("<second/>")
        second = store.xpath("//second")[0].node_id
        assert store.parent_of(second) is None

    def test_parent_of_missing_node_raises(self, store):
        with pytest.raises(NodeNotFoundError):
            store.parent_of(99)

    def test_parent_hints_are_memoized(self, store):
        store.parent_of(5)
        scans_before = store.locator.stats.tokens_scanned
        assert store.parent_of(5) == 4
        assert store.parent_of(4) == 3  # ancestor chain was hinted too
        assert store.locator.stats.tokens_scanned - scans_before < 10

    def test_parent_survives_sibling_inserts(self, store):
        store.parent_of(4)
        store.insert_before(3, "<newcomer/>")
        assert store.parent_of(4) == 3  # hint is id-based, still correct
        assert store.read(4) == "<y>t</y>"

    def test_parent_of_freshly_inserted_node(self, store):
        new_id = store.insert_into_last(3, "<fresh/>")
        assert store.parent_of(new_id) == 3


class TestChildrenAndAttributes:
    def test_children_excludes_attributes(self, store):
        assert store.children_of(1) == [3, 6]

    def test_children_of_leaf(self, store):
        assert store.children_of(6) == []

    def test_children_of_text_node(self, store):
        assert store.children_of(5) == []

    def test_children_includes_text_nodes(self, store):
        assert store.children_of(4) == [5]

    def test_attributes_of(self, store):
        assert store.attributes_of(1) == [2]
        assert store.attributes_of(3) == []

    def test_children_after_update(self, store):
        new_id = store.insert_into_last(1, "<w/>")
        assert store.children_of(1) == [3, 6, new_id]

    def test_children_hint_parents(self, store):
        store.children_of(1)
        scans = store.locator.stats.tokens_scanned
        assert store.parent_of(3) == 1  # no new full scan
        assert store.locator.stats.tokens_scanned - scans < 10


class TestSiblingsAndAncestors:
    def test_next_sibling(self, store):
        assert store.next_sibling_of(3) == 6

    def test_last_child_has_no_next_sibling(self, store):
        assert store.next_sibling_of(6) is None

    def test_next_sibling_sees_fresh_inserts(self, store):
        new_id = store.insert_after(3, "<mid/>")
        assert store.next_sibling_of(3) == new_id
        assert store.next_sibling_of(new_id) == 6

    def test_next_sibling_of_text(self, store):
        store.load_document("<m>one<b/></m>")
        text_id = store.xpath("//m/text()")[0].node_id
        b_id = store.xpath("//m/b")[0].node_id
        assert store.next_sibling_of(text_id) == b_id

    def test_ancestors(self, store):
        assert store.ancestors_of(5) == [4, 3, 1]
        assert store.ancestors_of(1) == []

    def test_next_sibling_across_top_level(self, store):
        store.load_document("<second/>")
        second = store.xpath("//second")[0].node_id
        assert store.next_sibling_of(1) == second
        assert store.next_sibling_of(second) is None


class TestAcrossPolicies:
    @pytest.mark.parametrize("policy", list(IndexingPolicy))
    def test_navigation_consistent_across_policies(self, policy):
        store = XMLStore.open(StoreConfig(policy=policy))
        store.load_document("<r><a><b/></a><c/></r>")
        assert store.parent_of(3) == 2
        assert store.children_of(1) == [2, 4]
        assert store.next_sibling_of(2) == 4
