"""Unit tests for the locator's scan and resolution machinery."""

import pytest

from repro.errors import NodeNotFoundError
from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.xmltoken.tokens import TokenKind


def make_store(**kwargs):
    return XMLStore.open(StoreConfig(**kwargs))


class TestScan:
    def test_scan_regenerates_ids_in_document_order(self):
        store = make_store()
        store.load_document("<ticket><hour>15</hour><name>Paul</name></ticket>")
        ids = [
            item.last_id
            for item in store.locator.scan()
            if item.token.starts_node
        ]
        assert ids == [1, 2, 3, 4, 5]

    def test_scan_tracks_offsets_and_ranges(self):
        store = make_store()
        store.load_document("<a><b/></a>")
        items = list(store.locator.scan())
        assert [item.offset for item in items] == [0, 1, 2, 3]
        assert all(item.meta.range_id == items[0].meta.range_id for item in items)

    def test_scan_across_ranges_resets_cursor(self):
        store = make_store()
        store.load_document("<a/>")           # range 1: id 1
        store.load_document("<b/><c/>")       # range 2: ids 2, 3
        items = list(store.locator.scan())
        node_items = [item for item in items if item.token.starts_node]
        assert [item.last_id for item in node_items] == [1, 2, 3]
        assert node_items[0].meta.range_id != node_items[1].meta.range_id

    def test_scan_empty_store(self):
        store = make_store()
        assert list(store.locator.scan()) == []

    def test_continue_scan_resumes_exactly(self):
        store = make_store()
        store.load_document("<r><a/><b/><c/></r>")
        items = list(store.locator.scan())
        resumed = list(store.locator.continue_scan(items[2]))
        assert [item.pos for item in resumed] == [item.pos for item in items[3:]]
        assert [item.last_id for item in resumed] == [
            item.last_id for item in items[3:]
        ]

    def test_scan_attribute_ids(self):
        store = make_store()
        store.load_document('<a x="1"><b/></a>')
        kinds_and_ids = [
            (item.token.kind, item.last_id)
            for item in store.locator.scan()
            if item.token.starts_node
        ]
        assert kinds_and_ids == [
            (TokenKind.BEGIN_ELEMENT, 1),
            (TokenKind.BEGIN_ATTRIBUTE, 2),
            (TokenKind.BEGIN_ELEMENT, 3),
        ]


class TestFindEnd:
    def test_end_of_leaf_element(self):
        store = make_store()
        store.load_document("<r><a/></r>")
        location = store.locator.locate(2)
        end = store.locator.find_end(location.begin)
        assert end.token.kind == TokenKind.END_ELEMENT
        assert end.offset == location.begin.offset + 1

    def test_end_of_subtree(self):
        store = make_store()
        store.load_document("<r><a><x/><y/></a></r>")
        location = store.locator.locate(2)
        end = store.locator.find_end(location.begin)
        # a's subtree: begin a, begin x, end x, begin y, end y, end a
        assert end.offset == location.begin.offset + 5

    def test_end_of_atomic_node_is_itself(self):
        store = make_store()
        store.load_document("<r>text</r>")
        location = store.locator.locate(2)
        end = store.locator.find_end(location.begin)
        assert end.pos == location.begin.pos


class TestResolutionPaths:
    def test_scan_then_partial(self):
        store = make_store()
        store.load_document("<r><a/><b/><c/></r>")
        store.locator.locate(3)
        assert store.locator.stats.scan_resolutions == 1
        store.locator.locate(3)
        assert store.locator.stats.scan_resolutions == 1
        assert store.locator.stats.partial_resolutions == 1

    def test_partial_entry_invalidated_by_update(self):
        store = make_store()
        root = store.load_document("<r><a/><b/></r>")
        store.locator.locate(3)
        # an interior insert splits the range and bumps versions
        store.insert_before(3, "<new/>")
        store.locator.locate(3)
        # the stale entry was dropped; resolution went through a scan again
        assert store.locator.stats.scan_resolutions >= 2
        assert store.read(3) == "<b/>"

    def test_locate_after_deletion_raises(self):
        store = make_store()
        store.load_document("<r><a/><b/></r>")
        store.locator.locate(2)
        store.delete_node(2)
        with pytest.raises(NodeNotFoundError):
            store.locator.locate(2)

    def test_full_index_repair_after_relocation(self):
        store = make_store(policy=IndexingPolicy.FULL)
        store.load_document("<r><a/><b/><c/></r>")
        store.insert_before(3, "<new/>")  # bumps versions -> entries stale
        assert store.read(4) == "<c/>"  # falls back to scan, then repairs
        scans = store.locator.stats.scan_resolutions
        assert store.read(4) == "<c/>"  # repaired entry serves this one
        assert store.locator.stats.scan_resolutions == scans

    def test_populate_partial_flag(self):
        store = make_store()
        store.load_document("<r><a/></r>")
        store.locator.populate_partial = False
        store.locator.locate(2)
        assert len(store.partial_index) == 0
        store.locator.populate_partial = True
        store.locator.locate(2)
        assert len(store.partial_index) == 1

    def test_memoized_end_within_same_range(self):
        store = make_store()
        store.load_document("<r><a/><b/></r>")
        store.read(2)  # locate_span memoizes begin and end
        entry = store.partial_index.probe(2, store.ranges)
        assert entry is not None
        assert entry.end_pos is not None

    def test_tokens_scanned_counter_grows(self):
        store = make_store()
        store.load_document("<r><a/><b/></r>")
        before = store.locator.stats.tokens_scanned
        store.read(3)
        assert store.locator.stats.tokens_scanned > before
