"""Unit tests for the adaptive controller (read- vs update-optimized)."""

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore


def make_adaptive_store(window=16, threshold=0.5):
    return XMLStore.open(
        StoreConfig(
            policy=IndexingPolicy.ADAPTIVE,
            adaptive_window=window,
            adaptive_read_threshold=threshold,
        )
    )


class TestAdaptiveSwitching:
    def test_starts_read_optimized(self):
        store = make_adaptive_store()
        assert store.adaptive is not None
        assert store.adaptive.read_optimized
        assert store.locator.populate_partial

    def test_update_heavy_workload_switches_off_population(self):
        store = make_adaptive_store(window=16)
        root = store.load_document("<r/>")
        for index in range(20):
            store.insert_into_last(root, f"<e{index}/>")
        assert not store.adaptive.read_optimized
        assert not store.locator.populate_partial
        assert store.adaptive.decisions
        assert store.adaptive.decisions[-1].read_optimized is False

    def test_read_heavy_workload_switches_back(self):
        store = make_adaptive_store(window=16)
        root = store.load_document("<r/>")
        for index in range(20):
            store.insert_into_last(root, f"<e{index}/>")
        assert not store.adaptive.read_optimized
        for _ in range(20):
            store.read(root)
        assert store.adaptive.read_optimized
        assert store.locator.populate_partial

    def test_read_fraction_tracks_window(self):
        store = make_adaptive_store(window=8)
        root = store.load_document("<r/>")
        for _ in range(4):
            store.read(root)
        # window so far: 1 load + 4 reads
        assert 0.5 < store.adaptive.read_fraction <= 1.0

    def test_update_mode_stops_memoizing(self):
        store = make_adaptive_store(window=8)
        root = store.load_document("<r/>")
        for index in range(12):
            store.insert_into_last(root, f"<e{index}/>")
        assert not store.locator.populate_partial
        entries_before = len(store.partial_index)
        store.locator.locate(5)
        assert len(store.partial_index) == entries_before

    def test_decisions_record_operation_numbers(self):
        store = make_adaptive_store(window=8)
        root = store.load_document("<r/>")
        for index in range(12):
            store.insert_into_last(root, f"<e{index}/>")
        first = store.adaptive.decisions[0]
        assert first.at_operation > 0
        assert 0.0 <= first.read_fraction <= 1.0


class TestAdaptiveCorrectness:
    def test_results_identical_to_static_policy(self):
        """Adaptivity must never change answers, only costs."""
        adaptive = make_adaptive_store(window=8)
        static = XMLStore.open(StoreConfig(policy=IndexingPolicy.RANGE))
        for store in (adaptive, static):
            root = store.load_document("<log/>")
            for index in range(10):
                store.insert_into_last(root, f"<entry n='{index}'/>")
            store.delete_node(5)
        assert adaptive.read() == static.read()
        adaptive.check_integrity()
