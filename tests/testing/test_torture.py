"""Crash-consistency torture harness (repro.testing.torture).

The acceptance bar: exhaustive crash-point enumeration over the Table-5
insert workload recovers verify-clean at **100%** of points, and the
fault layer costs nothing when disabled.
"""

import json

import pytest

from repro.storage.faults import FaultConfig, FaultyDisk, build_fault_harness
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice
from repro.testing.reference import ReferenceStore
from repro.testing.torture import (
    TortureConfig,
    apply_op,
    generate_workload,
    run_baseline,
    run_crash_point,
    run_torture,
    select_points,
    shrink_failing,
)


class TestWorkloadGeneration:
    def test_same_seed_same_ops(self):
        config = TortureConfig(seed=11, ops=12)
        assert generate_workload(config) == generate_workload(config)

    def test_different_seeds_differ(self):
        a = generate_workload(TortureConfig(seed=1, ops=12))
        b = generate_workload(TortureConfig(seed=2, ops=12))
        assert a != b

    def test_insert_workload_is_the_table5_stream(self):
        config = TortureConfig(seed=3, ops=9, workload="insert")
        ops = generate_workload(config)
        kinds = [op[0] for op in ops]
        assert kinds[0] == "load_document"
        assert set(kinds[1:]) <= {"insert_into_last", "checkpoint", "compact"}
        assert "checkpoint" in kinds  # checkpoint_every=7 < 9 ops

    def test_mixed_workload_replays_on_the_reference(self):
        """Every generated op is applicable in sequence — the guarantee
        that makes per-crash-point replays deterministic."""
        config = TortureConfig(seed=5, ops=25)
        model = ReferenceStore()
        for kind, args in generate_workload(config):
            if kind in ("checkpoint", "compact"):
                continue
            getattr(model, kind)(*args)

    def test_unknown_workload_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            generate_workload(TortureConfig(workload="chaos"))


class TestBaseline:
    def test_oracle_snapshots_line_up_with_ops(self):
        config = TortureConfig(seed=2, ops=10)
        trace = run_baseline(config)
        assert len(trace.snapshots) == len(trace.ops) + 1
        assert len(trace.appends_after) == len(trace.ops)
        assert trace.appends_after == sorted(trace.appends_after)
        assert trace.snapshots[0] == ""

    def test_fault_layer_is_pass_through(self):
        trace = run_baseline(TortureConfig(seed=2, ops=10))
        assert trace.passthrough_identical
        assert trace.oracle_simulated_seconds == trace.faulty_simulated_seconds

    def test_every_point_is_labelled(self):
        trace = run_baseline(TortureConfig(seed=2, ops=10))
        assert len(trace.point_labels) == trace.total_points
        sites = {label.split(":")[0] for label in trace.point_labels}
        assert sites <= {"write", "sync", "wal"}
        assert "wal" in sites  # ops always log


class TestExhaustiveEnumeration:
    def test_insert_workload_recovers_at_every_point(self):
        """The acceptance criterion: the Table-5 insert workload crashes
        at every WAL-record and page-write boundary and recovers
        verify-clean at 100% of them."""
        report = run_torture(TortureConfig(seed=0, ops=10, workload="insert"))
        assert report.tested_points == report.total_points > 0
        assert report.failures == []
        assert report.passthrough_identical
        assert report.ok
        sites = {result.label.split(":")[0] for result in report.results}
        assert sites == {"write", "sync", "wal"}

    def test_mixed_workload_recovers_at_every_point(self):
        report = run_torture(TortureConfig(seed=1, ops=10, workload="mixed"))
        assert report.tested_points == report.total_points > 0
        assert report.ok
        # checkpoints make the catalog-recovery path reachable too
        assert report.catalog_checked_points > 0

    def test_crash_point_is_reproducible(self):
        config = TortureConfig(seed=4, ops=8)
        trace = run_baseline(config)
        first = run_crash_point(config, 3, trace)
        second = run_crash_point(config, 3, trace)
        assert first.to_dict() == second.to_dict()

    def test_durable_ops_never_exceed_issued_ops(self):
        config = TortureConfig(seed=6, ops=8)
        trace = run_baseline(config)
        for point in range(0, trace.total_points, 5):
            result = run_crash_point(config, point, trace)
            assert 0 <= result.durable_ops <= len(trace.ops)
            assert result.ok


class TestSampling:
    def test_select_all_when_uncapped(self):
        assert select_points(5, None, seed=0) == [0, 1, 2, 3, 4]
        assert select_points(5, 9, seed=0) == [0, 1, 2, 3, 4]

    def test_capped_sample_is_seeded_and_sorted(self):
        sample = select_points(100, 10, seed=3)
        assert sample == select_points(100, 10, seed=3)
        assert sample == sorted(sample)
        assert len(sample) == 10
        assert select_points(100, 10, seed=4) != sample

    def test_cap_flows_through_run_torture(self):
        report = run_torture(TortureConfig(seed=0, ops=10, crash_points=5))
        assert report.tested_points == 5
        assert report.total_points > 5
        assert report.ok


class TestReportShape:
    def test_to_dict_is_json_ready(self):
        report = run_torture(TortureConfig(seed=0, ops=6, crash_points=4))
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True
        assert payload["seed"] == 0
        assert payload["total_points"] == report.total_points
        assert payload["failures"] == []
        assert set(payload["fault_classes"]) == {
            "torn_page_writes", "torn_wal_appends", "reorder_sync",
            "bitrot", "lost_writes", "misdirected_writes",
        }

    def test_render_summarizes_the_run(self):
        report = run_torture(TortureConfig(seed=0, ops=6, crash_points=4))
        text = report.render()
        assert "crash points" in text
        assert "byte-identical" in text
        assert "verify-clean" in text

    def test_render_names_failures(self):
        from repro.testing.torture import CrashPointResult, TortureReport

        report = TortureReport(
            config=TortureConfig(seed=9), total_points=10, tested_points=10,
            results=[
                CrashPointResult(
                    point=4, label="wal:frame=2", durable_ops=2,
                    full_restore_ok=False, catalog_checked=False,
                    catalog_ok=True, error="boom",
                )
            ],
        )
        assert not report.ok
        text = report.render()
        assert "FAILING" in text and "boom" in text
        assert "reproduce with" in text

    def test_shrink_returns_a_config_no_larger(self):
        # an all-passing run cannot shrink: the original comes back
        config = TortureConfig(seed=0, ops=4, crash_points=3)
        assert shrink_failing(config, rounds=1) == config


class TestFaultClassToggles:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(torn_page_writes=False),
            dict(torn_wal_appends=False),
            dict(reorder_sync=False),
            dict(
                torn_page_writes=False,
                torn_wal_appends=False,
                reorder_sync=False,
            ),
        ],
    )
    def test_each_class_subset_still_recovers(self, kwargs):
        report = run_torture(
            TortureConfig(seed=2, ops=8, crash_points=12, **kwargs)
        )
        assert report.ok


class TestZeroCostWhenDisabled:
    """Table-5 simulated numbers are byte-identical over a pass-through
    fault layer (ISSUE acceptance: 'fault layer zero-cost when disabled')."""

    MICRO = dict(
        base_orders=16,
        items_per_order=3,
        insert_orders=4,
        random_reads=40,
        hot_fraction=0.1,
        pool_capacity=8,
        granular_tokens=64,
    )

    def test_table5_numbers_are_byte_identical_over_a_faulty_disk(self):
        from repro.bench.reporting import format_table5
        from repro.bench.table5 import Table5Config, run_table5

        def faulty_backend(store_config):
            harness = build_fault_harness(
                FaultConfig(seed=0),
                MemoryBlockDevice(block_size=store_config.page_size),
                cost_model=store_config.cost_model,
            )
            return harness.device

        plain = run_table5(Table5Config(**self.MICRO))
        faulted = run_table5(
            Table5Config(backend_factory=faulty_backend, **self.MICRO)
        )
        assert format_table5(plain) == format_table5(faulted)
        for plain_row, faulted_row in zip(plain, faulted):
            for phase in ("insert", "seq_scan", "random_reads"):
                assert (
                    getattr(plain_row, phase).simulated_seconds
                    == getattr(faulted_row, phase).simulated_seconds
                ), f"{plain_row.approach} / {phase} drifted under the fault layer"

    def test_store_over_pass_through_disk_reads_identically(self):
        from repro.core.config import StoreConfig
        from repro.core.store import XMLStore

        config = StoreConfig(page_size=512, buffer_pool_capacity=8)
        plain = XMLStore.open(config)
        harness = build_fault_harness(
            FaultConfig(seed=0),
            MemoryBlockDevice(block_size=512),
            cost_model=config.cost_model,
        )
        faulted = XMLStore.open(config, device=harness.device)
        for store in (plain, faulted):
            root = store.load_document("<r/>")
            for index in range(20):
                store.insert_into_last(root, f"<e n='{index}'/>")
            store.checkpoint()
        assert faulted.read() == plain.read()
        assert faulted.simulated_seconds == plain.simulated_seconds


class TestMediaTorture:
    """Silent-corruption mode: the three-verdict media rounds."""

    def test_bitrot_rounds_pass_with_strict_content_equality(self):
        config = TortureConfig(
            seed=0, ops=8, bitrot=True, media_fault_rate=0.25, media_rounds=2
        )
        report = run_torture(config)
        assert report.ok
        assert report.failures == []
        assert report.tested_points == 2
        assert report.passthrough_identical

    def test_all_three_media_classes_pass(self):
        config = TortureConfig(
            seed=1, ops=8,
            bitrot=True, lost_writes=True, misdirected_writes=True,
            media_fault_rate=0.2, media_rounds=2,
        )
        report = run_torture(config)
        assert report.ok

    def test_dispatch_is_keyed_on_the_media_toggles(self):
        from repro.testing.torture import MediaTortureReport, TortureReport

        media = run_torture(
            TortureConfig(seed=0, ops=6, bitrot=True, media_rounds=1)
        )
        crash = run_torture(TortureConfig(seed=0, ops=6, crash_points=3))
        assert isinstance(media, MediaTortureReport)
        assert isinstance(crash, TortureReport)

    def test_media_report_shape_is_json_ready(self):
        config = TortureConfig(
            seed=3, ops=6, bitrot=True, media_fault_rate=0.25, media_rounds=2
        )
        payload = json.loads(json.dumps(run_torture(config).to_dict()))
        assert payload["mode"] == "media"
        assert payload["ok"] is True
        assert payload["failures"] == []
        assert payload["rounds"] and len(payload["rounds"]) == 2
        for round_payload in payload["rounds"]:
            assert {"round", "media_seed", "injected", "ok"} <= set(round_payload)
        assert payload["fault_classes"]["bitrot"] is True
        assert payload["fault_classes"]["lost_writes"] is False

    def test_media_render_names_the_verdict(self):
        config = TortureConfig(
            seed=3, ops=6, bitrot=True, media_fault_rate=0.25, media_rounds=1
        )
        text = run_torture(config).render()
        assert "no silent corruption reached a reader" in text

    def test_media_mode_requires_a_media_class(self):
        from repro.errors import StoreError
        from repro.testing.torture import run_media_torture

        with pytest.raises(StoreError):
            run_media_torture(TortureConfig(seed=0, ops=6))

    def test_rounds_are_reproducible(self):
        from repro.testing.torture import run_media_round

        config = TortureConfig(
            seed=5, ops=6, bitrot=True, media_fault_rate=0.25, media_rounds=1
        )
        from repro.testing.torture import run_baseline
        from dataclasses import replace

        trace = run_baseline(
            replace(config, bitrot=False, lost_writes=False,
                    misdirected_writes=False)
        )
        first = run_media_round(config, 0, trace)
        second = run_media_round(config, 0, trace)
        assert first.to_dict() == second.to_dict()

    def test_media_seed_flows_into_the_fault_config(self):
        config = TortureConfig(seed=2, ops=6, bitrot=True)
        assert config.fault_config(None).seed == 2
        assert config.fault_config(None, media_seed=77).seed == 77
        assert config.fault_config(None).bitrot
        assert not config.fault_config(None).lost_writes
