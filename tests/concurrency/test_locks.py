"""Unit tests for the hierarchical lock manager."""

import pytest

from repro.errors import ConcurrencyError, DeadlockError
from repro.concurrency.locks import (
    LockManager,
    LockMode,
    STORE_RESOURCE,
    compatible,
    parent_resource,
    range_resource,
    supremum,
    token_resource,
)


class TestModeLattice:
    def test_shared_locks_compatible(self):
        assert compatible(LockMode.S, LockMode.S)
        assert compatible(LockMode.IS, LockMode.S)

    def test_exclusive_conflicts_with_everything(self):
        for mode in LockMode:
            assert not compatible(LockMode.X, mode)
            assert not compatible(mode, LockMode.X)

    def test_intention_compatibility(self):
        assert compatible(LockMode.IX, LockMode.IX)
        assert compatible(LockMode.IX, LockMode.IS)
        assert not compatible(LockMode.IX, LockMode.S)

    def test_six_allows_only_is(self):
        assert compatible(LockMode.SIX, LockMode.IS)
        for mode in (LockMode.IX, LockMode.S, LockMode.SIX, LockMode.X):
            assert not compatible(LockMode.SIX, mode)

    def test_supremum_upgrades(self):
        assert supremum(LockMode.S, LockMode.IX) is LockMode.SIX
        assert supremum(LockMode.IS, LockMode.IX) is LockMode.IX
        assert supremum(LockMode.S, LockMode.X) is LockMode.X
        assert supremum(LockMode.S, LockMode.S) is LockMode.S

    def test_parent_resource(self):
        assert parent_resource(token_resource(3, 17)) == range_resource(3)
        assert parent_resource(range_resource(3)) == STORE_RESOURCE
        assert parent_resource(STORE_RESOURCE) is None


class TestBasicLocking:
    def test_grant_free_lock(self):
        lm = LockManager()
        assert lm.acquire(1, range_resource(1), LockMode.X)
        assert lm.held_mode(1, range_resource(1)) is LockMode.X

    def test_reacquire_same_mode_is_noop(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.S)
        assert lm.acquire(1, range_resource(1), LockMode.S)

    def test_compatible_locks_coexist(self):
        lm = LockManager()
        assert lm.acquire(1, range_resource(1), LockMode.S)
        assert lm.acquire(2, range_resource(1), LockMode.S)
        assert set(lm.holders(range_resource(1))) == {1, 2}

    def test_conflicting_lock_fails_fast(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        with pytest.raises(ConcurrencyError):
            lm.acquire(2, range_resource(1), LockMode.S, wait=False)

    def test_conflicting_lock_queues(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        assert lm.acquire(2, range_resource(1), LockMode.S, wait=True) is False
        assert lm.is_waiting(2, range_resource(1))

    def test_release_grants_waiter(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        lm.acquire(2, range_resource(1), LockMode.S, wait=True)
        lm.release(1, range_resource(1))
        assert lm.held_mode(2, range_resource(1)) is LockMode.S
        assert not lm.is_waiting(2, range_resource(1))

    def test_fifo_fairness(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        lm.acquire(2, range_resource(1), LockMode.X, wait=True)
        # txn 3's S would be compatible once 1 releases, but 2 queued first
        lm.acquire(3, range_resource(1), LockMode.S, wait=True)
        lm.release(1, range_resource(1))
        assert lm.held_mode(2, range_resource(1)) is LockMode.X
        assert lm.is_waiting(3, range_resource(1))

    def test_new_request_cannot_overtake_queue(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.S)
        lm.acquire(2, range_resource(1), LockMode.X, wait=True)  # waits
        # txn 3's S is compatible with txn 1's S, but must not starve txn 2
        assert lm.acquire(3, range_resource(1), LockMode.S, wait=True) is False

    def test_lock_upgrade(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.S)
        assert lm.acquire(1, range_resource(1), LockMode.X)
        assert lm.held_mode(1, range_resource(1)) is LockMode.X

    def test_upgrade_blocked_by_other_holder(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.S)
        lm.acquire(2, range_resource(1), LockMode.S)
        assert lm.acquire(1, range_resource(1), LockMode.X, wait=True) is False

    def test_release_unheld_lock_raises(self):
        lm = LockManager()
        with pytest.raises(ConcurrencyError):
            lm.release(1, range_resource(1))

    def test_release_all(self):
        lm = LockManager()
        lm.acquire(1, STORE_RESOURCE, LockMode.IX)
        lm.acquire(1, range_resource(1), LockMode.X)
        lm.acquire(2, range_resource(1), LockMode.S, wait=True)
        lm.release_all(1)
        assert lm.held_mode(1, range_resource(1)) is None
        assert lm.held_mode(2, range_resource(1)) is LockMode.S


class TestHierarchy:
    def test_lock_hierarchy_takes_intentions(self):
        lm = LockManager()
        assert lm.lock_hierarchy(1, token_resource(3, 17), LockMode.X)
        assert lm.held_mode(1, STORE_RESOURCE) is LockMode.IX
        assert lm.held_mode(1, range_resource(3)) is LockMode.IX
        assert lm.held_mode(1, token_resource(3, 17)) is LockMode.X

    def test_shared_hierarchy_uses_is(self):
        lm = LockManager()
        lm.lock_hierarchy(1, range_resource(3), LockMode.S)
        assert lm.held_mode(1, STORE_RESOURCE) is LockMode.IS

    def test_intention_conflict_blocks_table_lock(self):
        lm = LockManager()
        lm.lock_hierarchy(1, range_resource(3), LockMode.X)  # IX on store
        with pytest.raises(ConcurrencyError):
            lm.acquire(2, STORE_RESOURCE, LockMode.S, wait=False)

    def test_disjoint_ranges_do_not_conflict(self):
        lm = LockManager()
        assert lm.lock_hierarchy(1, range_resource(1), LockMode.X)
        assert lm.lock_hierarchy(2, range_resource(2), LockMode.X)

    def test_same_range_conflicts(self):
        lm = LockManager()
        lm.lock_hierarchy(1, range_resource(1), LockMode.X)
        with pytest.raises(ConcurrencyError):
            lm.lock_hierarchy(2, range_resource(1), LockMode.S, wait=False)

    def test_reader_and_writer_on_different_tokens(self):
        lm = LockManager()
        assert lm.lock_hierarchy(1, token_resource(1, 5), LockMode.X)
        assert lm.lock_hierarchy(2, token_resource(1, 9), LockMode.S)


class TestDeadlockDetection:
    def test_two_txn_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        lm.acquire(2, range_resource(2), LockMode.X)
        lm.acquire(1, range_resource(2), LockMode.X, wait=True)  # 1 waits on 2
        with pytest.raises(DeadlockError):
            lm.acquire(2, range_resource(1), LockMode.X, wait=True)

    def test_three_txn_cycle_detected(self):
        lm = LockManager()
        for txn, resource in ((1, 1), (2, 2), (3, 3)):
            lm.acquire(txn, range_resource(resource), LockMode.X)
        lm.acquire(1, range_resource(2), LockMode.X, wait=True)
        lm.acquire(2, range_resource(3), LockMode.X, wait=True)
        with pytest.raises(DeadlockError):
            lm.acquire(3, range_resource(1), LockMode.X, wait=True)

    def test_waiting_without_cycle_is_fine(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        assert lm.acquire(2, range_resource(1), LockMode.X, wait=True) is False
        assert lm.acquire(3, range_resource(1), LockMode.X, wait=True) is False

    def test_rejected_request_is_not_left_queued(self):
        lm = LockManager()
        lm.acquire(1, range_resource(1), LockMode.X)
        lm.acquire(2, range_resource(2), LockMode.X)
        lm.acquire(1, range_resource(2), LockMode.X, wait=True)
        with pytest.raises(DeadlockError):
            lm.acquire(2, range_resource(1), LockMode.X, wait=True)
        assert not lm.is_waiting(2, range_resource(1))
        # releasing 1's lock should now grant nothing to txn 2
        lm.release_all(1)
        assert lm.held_mode(2, range_resource(1)) is None
