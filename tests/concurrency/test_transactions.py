"""Unit tests for 2PL transactions with logical undo."""

import pytest

from repro.errors import ConcurrencyError, TransactionStateError
from repro.concurrency.transactions import TransactionManager, TxnState
from repro.core.store import XMLStore


@pytest.fixture
def store():
    s = XMLStore.open()
    s.load_document("<lib><book>one</book><book>two</book></lib>")
    return s


@pytest.fixture
def manager(store):
    return TransactionManager(store)


class TestCommit:
    def test_committed_insert_is_visible(self, store, manager):
        txn = manager.begin()
        txn.insert_into_last(1, "<book>three</book>")
        txn.commit()
        assert store.read().count("<book>") == 3
        assert txn.state is TxnState.COMMITTED

    def test_context_manager_commits_on_success(self, store, manager):
        with manager.begin() as txn:
            txn.insert_into_last(1, "<book>three</book>")
        assert "three" in store.read()

    def test_context_manager_aborts_on_exception(self, store, manager):
        with pytest.raises(RuntimeError):
            with manager.begin() as txn:
                txn.insert_into_last(1, "<book>three</book>")
                raise RuntimeError("boom")
        assert "three" not in store.read()

    def test_locks_released_at_commit(self, store, manager):
        txn1 = manager.begin()
        txn1.insert_into_last(1, "<book>x</book>")
        txn1.commit()
        txn2 = manager.begin()
        txn2.insert_into_last(1, "<book>y</book>")
        txn2.commit()
        assert store.read().count("<book>") == 4

    def test_operations_after_commit_rejected(self, manager):
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.read()


class TestAbortUndo:
    def test_abort_undoes_insert(self, store, manager):
        before = store.read()
        txn = manager.begin()
        txn.insert_into_last(1, "<book>three</book>")
        txn.abort()
        assert store.read() == before
        store.check_integrity()

    def test_abort_undoes_multi_node_insert(self, store, manager):
        before = store.read()
        txn = manager.begin()
        txn.insert_into_last(1, "<a/><b/>text")
        txn.abort()
        assert store.read() == before

    def test_abort_undoes_delete_of_middle_sibling(self, store, manager):
        before = store.read()
        txn = manager.begin()
        txn.delete_node(2)  # first <book>
        assert "one" not in store.read()
        txn.abort()
        assert store.read() == before
        store.check_integrity()

    def test_abort_undoes_delete_of_last_child(self, store, manager):
        before = store.read()
        txn = manager.begin()
        txn.delete_node(4)  # second <book>
        txn.abort()
        assert store.read() == before

    def test_abort_undoes_replace_node(self, store, manager):
        txn = manager.begin()
        txn.replace_node(2, "<book>uno</book>")
        assert "uno" in store.read()
        txn.abort()
        text = store.read()
        assert "uno" not in text and "one" in text

    def test_abort_undoes_replace_content(self, store, manager):
        txn = manager.begin()
        txn.replace_content(2, "ONE")
        txn.abort()
        assert "<book>one</book>" in store.read()

    def test_abort_undoes_mixed_sequence_in_reverse(self, store, manager):
        before = store.read()
        txn = manager.begin()
        new_id = txn.insert_into_last(1, "<book>three</book>")
        txn.replace_content(new_id, "THREE")
        txn.delete_node(2)
        txn.abort()
        assert store.read() == before
        store.check_integrity()

    def test_abort_undoes_load_document(self, store, manager):
        before = store.read()
        txn = manager.begin()
        txn.load_document("<extra/>")
        txn.abort()
        assert store.read() == before

    def test_abort_undoes_delete_of_top_level_node(self, manager, store):
        before = store.read()
        txn = manager.begin()
        txn.delete_node(1)
        txn.abort()
        assert store.read() == before


class TestIsolation:
    def test_write_write_conflict(self, manager):
        txn1 = manager.begin()
        txn2 = manager.begin()
        txn1.insert_into_last(1, "<book>x</book>")
        with pytest.raises(ConcurrencyError):
            txn2.insert_into_last(1, "<book>y</book>")

    def test_read_write_conflict(self, manager):
        txn1 = manager.begin()
        txn2 = manager.begin()
        txn1.read(2)
        with pytest.raises(ConcurrencyError):
            txn2.delete_node(2)

    def test_concurrent_reads_allowed(self, manager):
        txn1 = manager.begin()
        txn2 = manager.begin()
        assert "one" in txn1.read(2)
        assert "one" in txn2.read(2)
        txn1.commit()
        txn2.commit()

    def test_whole_store_read_blocks_writers(self, manager):
        txn1 = manager.begin()
        txn2 = manager.begin()
        txn1.read()  # S on the store root
        with pytest.raises(ConcurrencyError):
            txn2.insert_into_last(1, "<book>y</book>")

    def test_conflict_released_after_abort(self, manager, store):
        txn1 = manager.begin()
        txn1.insert_into_last(1, "<book>x</book>")
        txn1.abort()
        txn2 = manager.begin()
        txn2.insert_into_last(1, "<book>y</book>")
        txn2.commit()
        assert "y" in store.read()

    def test_xpath_takes_shared_store_lock(self, manager):
        txn1 = manager.begin()
        results = txn1.xpath("//book")
        assert len(results) == 2
        txn2 = manager.begin()
        with pytest.raises(ConcurrencyError):
            txn2.insert_into_last(1, "<book>z</book>")


class TestManagerBookkeeping:
    def test_txn_ids_increase(self, manager):
        a = manager.begin()
        b = manager.begin()
        assert b.txn_id > a.txn_id

    def test_active_set_tracks_lifecycle(self, manager):
        txn = manager.begin()
        assert txn.txn_id in manager.active
        txn.commit()
        assert txn.txn_id not in manager.active

    def test_double_commit_rejected(self, manager):
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.commit()
