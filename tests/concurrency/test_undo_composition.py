"""Undo composition (repro.concurrency.transactions._subtree_at_start).

A transaction that mutates *inside* a subtree and then runs a subtree
operation over it (delete / replace_node / replace_content) folds the
earlier undo entries into one transaction-start image.  Without the
fold, abort restored the outer image (re-allocating ids) and the older
entries then addressed dead ids — the interleaving harness caught a
session abort crashing exactly that way.
"""

import pytest

from repro.errors import NodeNotFoundError
from repro.concurrency.transactions import TransactionManager
from repro.core.store import XMLStore

BASE = "<lib><s1><item>seed</item></s1><s2><item>base</item></s2></lib>"
# ids: 1=lib, 2=s1, 3=item, 4=text, 5=s2, 6=item, 7=text


@pytest.fixture
def store():
    s = XMLStore.open()
    s.load_document(BASE)
    return s


@pytest.fixture
def manager(store):
    return TransactionManager(store)


class TestInsertThenSubtreeOp:
    def test_abort_after_insert_then_replace_content_of_ancestor(self, store, manager):
        txn = manager.begin()
        txn.insert_into_last(2, "<x>mine</x>")
        txn.replace_content(1, "FLAT")
        txn.abort()
        assert store.read() == BASE

    def test_abort_after_insert_then_replace_content_of_same_node(self, store, manager):
        txn = manager.begin()
        txn.insert_into_last(2, "<x>mine</x>")
        txn.replace_content(2, "FLAT")
        txn.abort()
        assert store.read() == BASE

    def test_abort_after_insert_then_delete_of_ancestor(self, store, manager):
        txn = manager.begin()
        txn.insert_into_last(2, "<x>mine</x>")
        txn.delete_node(2)
        txn.abort()
        assert store.read() == BASE

    def test_commit_keeps_the_composed_result(self, store, manager):
        txn = manager.begin()
        txn.insert_into_last(2, "<x>mine</x>")
        txn.replace_content(1, "FLAT")
        txn.commit()
        assert store.read() == "<lib>FLAT</lib>"


class TestOwnInsertions:
    def test_insert_then_delete_is_a_net_noop_on_abort(self, store, manager):
        txn = manager.begin()
        new_id = txn.insert_into_last(1, "<x>gone</x>")
        txn.delete_node(new_id)
        txn.abort()
        assert store.read() == BASE

    def test_insert_then_delete_is_a_net_noop_on_commit(self, store, manager):
        txn = manager.begin()
        new_id = txn.insert_into_last(1, "<x>gone</x>")
        txn.delete_node(new_id)
        txn.commit()
        assert store.read() == BASE

    def test_replace_content_of_own_insert_aborts_clean(self, store, manager):
        txn = manager.begin()
        new_id = txn.insert_into_last(1, "<x>orig</x>")
        txn.replace_content(new_id, "CHANGED")
        txn.abort()
        assert store.read() == BASE

    def test_replace_node_of_own_insert_aborts_clean(self, store, manager):
        txn = manager.begin()
        new_id = txn.insert_into_last(1, "<x>orig</x>")
        txn.replace_node(new_id, "<y>other</y>")
        txn.abort()
        assert store.read() == BASE


class TestIdentityChanges:
    def test_replace_node_then_replace_content_aborts_to_original_node(
        self, store, manager
    ):
        txn = manager.begin()
        new_id = txn.replace_node(2, "<s1b>swapped</s1b>")
        txn.replace_content(new_id, "FLAT")
        txn.abort()
        assert store.read() == BASE

    def test_replace_node_then_delete_aborts_to_original_node(self, store, manager):
        txn = manager.begin()
        new_id = txn.replace_node(2, "<s1b>swapped</s1b>")
        txn.delete_node(new_id)
        txn.abort()
        assert store.read() == BASE


class TestDeepCompositions:
    def test_delete_inside_then_replace_content_of_ancestor(self, store, manager):
        txn = manager.begin()
        txn.delete_node(3)  # <item>seed</item> inside s1
        txn.replace_content(1, "FLAT")
        txn.abort()
        assert store.read() == BASE

    def test_three_level_fold(self, store, manager):
        # insert inside s1, flatten s1, then flatten lib: the outermost
        # fold must consume the (already folded) middle entry
        txn = manager.begin()
        txn.insert_into_last(2, "<x>mine</x>")
        txn.replace_content(2, "MID")
        txn.replace_content(1, "OUTER")
        assert len(txn.undo_entries) == 1
        txn.abort()
        assert store.read() == BASE

    def test_fold_preserves_entries_outside_the_subtree(self, store, manager):
        txn = manager.begin()
        txn.insert_into_last(5, "<x>other-subtree</x>")  # outside s1
        txn.insert_into_last(2, "<x>mine</x>")  # inside s1
        txn.replace_content(2, "FLAT")  # folds only the s1 insert
        assert len(txn.undo_entries) == 2
        txn.abort()
        assert store.read() == BASE

    def test_sibling_reinsert_anchored_before_subtree_root_is_not_folded(
        self, store, manager
    ):
        # deleting s1 records "reinsert before s2"; a later subtree op on
        # s2 must NOT fold that entry — the content belongs outside s2
        txn = manager.begin()
        txn.delete_node(2)
        txn.replace_content(5, "FLAT")
        assert len(txn.undo_entries) == 2
        txn.abort()
        assert store.read() == BASE


class TestRecordedIds:
    def test_reinsert_entry_records_subtree_ids(self, store, manager):
        txn = manager.begin()
        txn.delete_node(2)
        [entry] = txn.undo_entries
        assert entry.kind == "reinsert"
        assert entry.args[3] == (2, 3, 4)  # s1, item, text — document order

    def test_restore_content_entry_records_content_ids(self, store, manager):
        txn = manager.begin()
        txn.replace_content(2, "FLAT")
        [entry] = txn.undo_entries
        assert entry.kind == "restore_content"
        assert entry.args[2] == (3, 4)  # the <item> element and its text

    def test_abort_still_reallocates_live_ids(self, store, manager):
        # recorded ids serve models (snapshots, composition); the live
        # store's contract is unchanged — content restored, ids fresh
        txn = manager.begin()
        txn.delete_node(3)
        txn.abort()
        assert store.read() == BASE
        with pytest.raises(NodeNotFoundError):
            store.read(3)
