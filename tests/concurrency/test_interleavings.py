"""Deterministic interleaving harness (repro.testing.schedules).

The CI ``concurrency`` job runs this module across its mix × seed
matrix (REPRO_INTERLEAVING_SEEDS selects the seeds; the default keeps
local runs fast).  Every sampled schedule must be serializable; a
failure ships its shrunk schedule script as a one-line reproducer.
"""

import os

import pytest

from repro.core.store import XMLStore
from repro.errors import ReproError
from repro.server.sessions import XMLServer
from repro.testing import schedules as schedules_module
from repro.testing.schedules import (
    MIXES,
    ScheduleConfig,
    generate_workload,
    run_schedule,
    run_schedules,
    shrink_script,
    _store_config,
)


def _seeds():
    raw = os.environ.get("REPRO_INTERLEAVING_SEEDS", "0,7")
    return [int(part) for part in raw.split(",") if part.strip()]


class TestSerializability:
    @pytest.mark.parametrize("mix", MIXES)
    @pytest.mark.parametrize("seed", _seeds())
    def test_sampled_schedules_are_serializable(self, mix, seed):
        config = ScheduleConfig(
            seed=seed, sessions=3, ops_per_session=3, mix=mix, schedules=4
        )
        report = run_schedules(config)
        assert report.schedules_run == 4
        assert report.ok, "\n" + report.render()
        assert report.serializable == report.schedules_run

    @pytest.mark.parametrize("sessions", [2, 4])
    def test_session_count_extremes(self, sessions):
        config = ScheduleConfig(
            seed=42, sessions=sessions, ops_per_session=2, mix="hotspot", schedules=3
        )
        report = run_schedules(config)
        assert report.ok, "\n" + report.render()

    def test_reader_views_are_commit_consistent(self):
        # the mixed workload carries a snapshot reader; its full-document
        # views must all have matched a serial-prefix state to pass
        config = ScheduleConfig(seed=7, sessions=3, mix="mixed", schedules=3)
        base, programs = generate_workload(config)
        assert any(program.read_only for program in programs)
        report = run_schedules(config)
        assert report.ok, "\n" + report.render()


class TestDeterminism:
    def test_same_script_replays_byte_identically(self):
        config = ScheduleConfig(seed=3, sessions=3, mix="hotspot", schedules=1)
        base, programs = generate_workload(config)
        script = list(range(24))

        def run_once():
            store = XMLStore.open(config=_store_config(config))
            store.load_document(base)
            server = XMLServer(store)
            for program in programs:
                server.submit(list(program.ops), read_only=program.read_only)
            report = server.run(script=script)
            return report, store.wal.to_bytes(), store.read()

        first_report, first_wal, first_doc = run_once()
        second_report, second_wal, second_doc = run_once()
        assert first_wal == second_wal
        assert first_doc == second_doc
        assert first_report.trace == second_report.trace
        assert first_report.outcomes == second_report.outcomes
        assert first_report.group_commit_batches == second_report.group_commit_batches

    def test_same_seed_produces_identical_reports(self):
        config = ScheduleConfig(seed=11, sessions=3, mix="mixed", schedules=3)
        first = run_schedules(config)
        second = run_schedules(config)
        assert first.to_dict() == second.to_dict()

    def test_outcome_object_is_replayable(self):
        config = ScheduleConfig(seed=5, sessions=2, mix="disjoint", schedules=1)
        base, programs = generate_workload(config)
        script = [1, 0, 1, 1, 0, 0, 1, 0] * 6
        outcome = run_schedule(base, programs, script, config)
        replayed = run_schedule(base, programs, list(outcome.script), config)
        assert replayed.observed == outcome.observed
        assert replayed.outcomes == outcome.outcomes


class TestShrinker:
    def test_passing_script_is_returned_unchanged(self):
        config = ScheduleConfig(seed=0, sessions=2, mix="disjoint", schedules=1)
        base, programs = generate_workload(config)
        script = [0, 1, 2, 3] * 8
        assert shrink_script(base, programs, script, config) == tuple(script)

    def test_failing_script_shrinks_to_the_culprit(self, monkeypatch):
        # substitute the schedule runner with a fake whose failure is
        # "script contains a 7": shrinking must keep a 7 and drop the rest
        config = ScheduleConfig(seed=0, sessions=2, mix="disjoint", schedules=1)
        base, programs = generate_workload(config)

        class FakeOutcome:
            def __init__(self, ok):
                self.ok = ok

        def fake_run(base_, programs_, script, config_):
            return FakeOutcome(ok=7 not in list(script))

        monkeypatch.setattr(schedules_module, "run_schedule", fake_run)
        script = [3, 1, 7, 0, 5, 2, 7, 4, 6, 1, 3, 0]
        shrunk = shrink_script(base, programs, script, config)
        assert 7 in shrunk
        assert len(shrunk) < len(script)
        # every surviving non-culprit entry was zeroed
        assert all(entry in (0, 7) for entry in shrunk)


class TestConfigValidation:
    def test_session_bounds_are_enforced(self):
        with pytest.raises(ReproError):
            ScheduleConfig(sessions=1)
        with pytest.raises(ReproError):
            ScheduleConfig(sessions=5)

    def test_unknown_mix_is_rejected(self):
        with pytest.raises(ReproError):
            ScheduleConfig(mix="chaotic")

    def test_report_dict_is_schema_stamped(self):
        report = run_schedules(
            ScheduleConfig(seed=1, sessions=2, mix="disjoint", schedules=1)
        )
        data = report.to_dict()
        assert data["schema"] == "repro.testing.schedules/v1"
        assert data["ok"] is True
