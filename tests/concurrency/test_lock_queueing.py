"""Queued-wait regressions (repro.concurrency.locks, wait=True path).

The fail-fast (``wait=False``) discipline was well covered; these pin
the queueing discipline the serving layer depends on: FIFO grant order,
no overtaking, deterministic deadlock victims, wait-for edges induced by
queue position, and queue cleanup on release_all.
"""

import pytest

from repro.errors import DeadlockError
from repro.concurrency.locks import LockManager, LockMode

R1 = ("store", "range", 1)
R2 = ("store", "range", 2)


class TestFifoGrantOrder:
    def test_waiters_granted_in_arrival_order(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.X)
        assert not locks.acquire(3, R1, LockMode.X)
        locks.release_all(1)
        # strict FIFO: txn 2 (first in line) holds, txn 3 still queued
        assert locks.held_mode(2, R1) is LockMode.X
        assert locks.held_mode(3, R1) is None
        assert locks.is_waiting(3, R1)
        locks.release_all(2)
        assert locks.held_mode(3, R1) is LockMode.X

    def test_compatible_waiters_drain_together(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.S)
        assert not locks.acquire(3, R1, LockMode.S)
        locks.release_all(1)
        # the grant loop walks the queue head-first; both S fit at once
        assert locks.held_mode(2, R1) is LockMode.S
        assert locks.held_mode(3, R1) is LockMode.S

    def test_no_overtaking_a_queued_stranger(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.S)
        assert not locks.acquire(2, R1, LockMode.X)
        # S is compatible with the holder, but granting it would starve
        # the queued X writer — it must wait its turn
        assert not locks.acquire(3, R1, LockMode.S)
        locks.release_all(1)
        assert locks.held_mode(2, R1) is LockMode.X
        assert locks.held_mode(3, R1) is None
        locks.release_all(2)
        assert locks.held_mode(3, R1) is LockMode.S

    def test_requeue_while_suspended_keeps_position(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.S)
        assert not locks.acquire(3, R1, LockMode.S)
        # txn 2 retries (a suspended session re-running its op): no
        # duplicate entry, original FIFO position kept
        assert not locks.acquire(2, R1, LockMode.S)
        locks.release_all(1)
        assert locks.held_mode(2, R1) is LockMode.S
        assert locks.held_mode(3, R1) is LockMode.S


class TestDeadlockDetection:
    def test_victim_is_the_requester_closing_the_cycle(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert locks.acquire(2, R2, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.X)
        with pytest.raises(DeadlockError):
            locks.acquire(1, R2, LockMode.X)
        # determinism: the requester dies, the earlier waiter survives
        assert locks.is_waiting(2, R1)
        assert not locks.is_waiting(1, R2)

    def test_queue_position_edges_are_part_of_the_wait_graph(self):
        # FIFO means a queued request waits on every earlier queued
        # stranger; omitting those edges let this 3-txn shape stall the
        # scheduler forever (the interleaving harness found it):
        #   txn1 holds R1; txn2 queues on R1; txn3 holds R2, queues on R1
        #   *behind* txn2; then txn2 requests R2 -> txn2 waits txn3 waits
        #   (queue) txn2
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.X)
        assert locks.acquire(3, R2, LockMode.X)
        assert not locks.acquire(3, R1, LockMode.X)
        with pytest.raises(DeadlockError):
            locks.acquire(2, R2, LockMode.X)

    def test_mode_widening_that_closes_a_cycle_is_refused(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert locks.acquire(2, R2, LockMode.S)
        assert not locks.acquire(2, R1, LockMode.S)
        # txn1 queues an S on R2 — compatible with txn2's S hold... but
        # blocked behind nothing; grantable, so acquire succeeds
        assert locks.acquire(1, R2, LockMode.S)
        # widening txn1's interest to X on R2 must now wait on txn2,
        # which waits on txn1: refused as a deadlock
        with pytest.raises(DeadlockError):
            locks.acquire(1, R2, LockMode.X)


class TestReleaseAllQueueCleanup:
    def test_dequeue_exposes_grantable_head(self):
        # txn2's queued X blocks txn3's compatible S behind it; when txn2
        # aborts (never having held R1), txn3 must be granted — formerly
        # release_all only re-examined resources the txn *held*
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.S)
        assert not locks.acquire(2, R1, LockMode.X)
        assert not locks.acquire(3, R1, LockMode.S)
        locks.release_all(2)
        assert locks.held_mode(3, R1) is LockMode.S
        assert not locks.is_waiting(3, R1)

    def test_release_all_drops_all_queued_requests(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert locks.acquire(1, R2, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.X)
        assert not locks.acquire(2, R2, LockMode.X)
        locks.release_all(2)
        assert locks.waiting_resources(2) == []
        locks.release_all(1)
        # nobody left to grant; both resources are free
        assert locks.acquire(3, R1, LockMode.X)
        assert locks.acquire(3, R2, LockMode.X)

    def test_waiting_resources_reports_queued_requests(self):
        locks = LockManager()
        assert locks.acquire(1, R1, LockMode.X)
        assert not locks.acquire(2, R1, LockMode.S)
        assert locks.waiting_resources(2) == [R1]
        locks.release_all(1)
        assert locks.waiting_resources(2) == []
