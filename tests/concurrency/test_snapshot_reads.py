"""Snapshot-read isolation (repro.server.snapshot + sessions).

A reader session opened before a writer's commit must never observe the
writer's uncommitted tokens — across aborts, mixed op kinds, and a store
reopen — and a snapshot over a quarantined block reports absence (an
explicit error result), never a wrong answer.
"""

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ChecksumError
from repro.server.sessions import SessionOp, XMLServer
from repro.server.snapshot import SnapshotManager
from repro.storage.scrub import scrub_store
from repro.storage.wal import WriteAheadLog

BASE = "<lib><a>one</a><b>two</b></lib>"


def make_server(**config_kwargs):
    store = XMLStore.open(StoreConfig(**config_kwargs))
    store.load_document(BASE)
    return store, XMLServer(store)


def reader_first_script(steps=64):
    """Open the reader (session 0) first, then drive the writer to
    completion; trailing zeros let the reader finish once the writer is
    no longer runnable."""
    return [0] + [1] * steps


class TestReaderNeverSeesUncommitted:
    def test_reader_opened_before_commit_sees_base(self):
        store, server = make_server()
        reader = server.submit(
            [SessionOp("read"), SessionOp("read")], read_only=True
        )
        server.submit(
            [
                SessionOp("insert_into_last", 1, "<x>new</x>"),
                SessionOp("replace_content", 4, "CHANGED"),
            ]
        )
        server.run(script=reader_first_script())
        assert reader.outcome == "committed"
        assert reader.results == [BASE, BASE]
        # the writer did commit — only the snapshot stayed pinned
        assert "CHANGED" in store.read()
        assert "<x>new</x>" in store.read()

    def test_reader_is_isolated_from_aborted_writer(self):
        store, server = make_server()
        reader = server.submit([SessionOp("read")], read_only=True)
        writer = server.submit(
            [
                SessionOp("replace_content", 2, "DOOMED"),
                SessionOp("abort"),
            ]
        )
        server.run(script=reader_first_script())
        assert writer.outcome == "aborted"
        assert reader.results == [BASE]
        assert store.read() == BASE

    def test_reader_is_isolated_from_mixed_replace_and_insert(self):
        store, server = make_server()
        reader = server.submit(
            [SessionOp("read"), SessionOp("read", 2), SessionOp("exists", 2)],
            read_only=True,
        )
        server.submit(
            [
                SessionOp("replace_node", 2, "<a2>swapped</a2>"),
                SessionOp("insert_into_last", 1, "<c>three</c>"),
                SessionOp("replace_content", 1, "FLATTENED"),
            ]
        )
        server.run(script=reader_first_script())
        assert reader.results == [BASE, "<a>one</a>", True]
        assert store.read() == "<lib>FLATTENED</lib>"

    def test_snapshot_opened_mid_transaction_sees_committed_state(self):
        # the eager path: the snapshot opens while a writer already holds
        # uncommitted changes and must rewind them via the undo entries
        store = XMLStore.open()
        store.load_document(BASE)
        server = XMLServer(store)
        txn = server.transactions.begin()
        txn.insert_into_last(1, "<x>dirty</x>")
        txn.replace_content(2, "DIRTY")
        snapshot = server.snapshots.open(server.transactions.active.values())
        assert snapshot.materialized
        assert snapshot.read() == BASE
        txn.commit()

    def test_reader_views_survive_store_reopen(self):
        # replaying the WAL after the run reproduces exactly the state the
        # live store (not the snapshot) held: commits are durable, the
        # snapshot was a view, not a fork
        store, server = make_server()
        reader = server.submit([SessionOp("read")], read_only=True)
        server.submit([SessionOp("insert_into_last", 1, "<x>durable</x>")])
        server.run(script=reader_first_script())
        assert reader.results == [BASE]
        reopened = XMLStore.recover(WriteAheadLog.from_bytes(store.wal.to_bytes()))
        assert reopened.read() == store.read()
        assert "durable" in reopened.read()


class TestLazyDiscipline:
    def test_snapshot_stays_lazy_until_a_writer_mutates(self):
        store, server = make_server()
        manager = server.snapshots
        snapshot = manager.open(server.transactions.active.values())
        assert not snapshot.materialized
        assert manager.lazy_opens == 1
        assert manager.materializations == 0
        # a read-only workload never pays the copy
        assert snapshot.read() == BASE
        assert manager.materializations == 0

    def test_mutation_promotes_lazy_snapshots(self):
        store, server = make_server()
        manager = server.snapshots
        snapshot = manager.open(server.transactions.active.values())
        manager.before_mutation()
        store.replace_content(2, "AFTER")
        assert snapshot.materialized
        assert manager.materializations == 1
        assert snapshot.read() == BASE

    def test_snapshot_reads_disabled_falls_back_to_locking_reader(self):
        store, server = make_server(server_snapshot_reads=False)
        reader = server.submit([SessionOp("read")], read_only=True)
        server.run()
        assert reader.outcome == "committed"
        assert reader.snapshot is None  # ran as a plain (locking) session
        assert reader.results == [BASE]


class TestDegradedReads:
    def _quarantined_server(self):
        store = XMLStore.open(
            StoreConfig(page_size=512, buffer_pool_capacity=8, checksums_enabled=True)
        )
        root = store.load_document("<r/>")
        for index in range(6):
            store.insert_into_last(root, f"<e n='{index}'>payload-{index}</e>")
        store.checkpoint()
        victim = next(iter(store.layout.chain.blocks()))
        image = bytearray(store.device.read_block(victim))
        image[-1] ^= 0x20
        store.device.write_block(victim, bytes(image))
        report = scrub_store(store)
        assert not report.ok and store.pool.is_quarantined(victim)
        return store

    def test_snapshot_over_quarantined_block_fails_loudly(self):
        store = self._quarantined_server()
        manager = SnapshotManager(store)
        snapshot = manager.open([])  # lazy: reads hit the store directly
        with pytest.raises(ChecksumError):
            snapshot.read()

    def test_reader_session_reports_absence_not_wrong_answers(self):
        store = self._quarantined_server()
        server = XMLServer(store)
        reader = server.submit([SessionOp("read")], read_only=True)
        server.run()
        assert reader.outcome == "committed"
        [result] = reader.results
        assert result == ("error", "ChecksumError")
