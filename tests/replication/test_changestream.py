"""Logical decoding (repro.replication.changestream): the WAL as a
stream of committed change records, durable-prefix-only."""

import pytest

from repro.core.store import XMLStore
from repro.errors import ChangeStreamError
from repro.replication.changestream import (
    NO_TXN,
    ChangeStream,
    decode_frames,
    encode_batch,
)
from repro.storage.txnlog import CommitOp, decode_commit, encode_commit
from repro.storage.wal import RecordType, WriteAheadLog
from repro.testing.repltorture import frame_layout, truncation_points


def _store_with_ops():
    store = XMLStore.open()
    store.load_document("<r><a>one</a></r>")
    store.insert_into_last(1, "<b>two</b>")
    store.checkpoint()
    store.insert_into_last(1, "<c>three</c>")
    return store


def _commit_payload(txn_id=7):
    ops = [
        CommitOp(
            record_type=RecordType.INSERT_INTO_LAST,
            payload=b"\x00" * 8,
            id_cursor_before=10,
            id_cursor_after=12,
        )
    ]
    return encode_commit(txn_id, ops)


class TestStream:
    def test_checkpoints_are_skipped_and_seq_is_dense(self):
        store = _store_with_ops()
        records = list(ChangeStream(store.wal).records())
        assert [r.seq for r in records] == [0, 1, 2]
        assert all(r.record_type != RecordType.CHECKPOINT for r in records)
        # lsn stays sparse: the checkpoint consumed one
        assert [r.lsn for r in records] == [0, 1, 3]

    def test_length_and_batch(self):
        store = _store_with_ops()
        stream = ChangeStream(store.wal)
        assert stream.length() == 3
        assert [r.seq for r in stream.batch(1, 5)] == [1, 2]
        assert stream.batch(3, 5) == []

    def test_negative_cursor_is_typed(self):
        store = _store_with_ops()
        with pytest.raises(ChangeStreamError):
            list(ChangeStream(store.wal).records(start_seq=-1))

    def test_txn_commit_frames_stay_whole_with_txn_id(self):
        store = _store_with_ops()
        payload = _commit_payload(txn_id=7)
        store.wal.append(RecordType.TXN_COMMIT, payload, sync=True)
        record = list(ChangeStream(store.wal).records())[-1]
        assert record.record_type == RecordType.TXN_COMMIT
        assert record.txn_id == 7
        assert record.op_count == 1
        # id-cursor pinning rides along untouched
        assert decode_commit(record.payload).ops[0].id_cursor_before == 10

    def test_plain_records_carry_no_txn(self):
        store = _store_with_ops()
        assert all(
            r.txn_id == NO_TXN for r in ChangeStream(store.wal).records()
        )


class TestWire:
    def test_round_trip(self):
        store = _store_with_ops()
        records = list(ChangeStream(store.wal).records())
        decoded, clean = decode_frames(encode_batch(records))
        assert clean is True
        assert decoded == records

    def test_truncated_tail_is_a_transport_fault(self):
        store = _store_with_ops()
        records = list(ChangeStream(store.wal).records())
        data = encode_batch(records)
        decoded, clean = decode_frames(data[:-3])
        assert clean is False
        assert decoded == records[:-1]  # the intact prefix survives

    def test_bit_flip_fails_the_crc(self):
        store = _store_with_ops()
        data = bytearray(encode_batch(list(ChangeStream(store.wal).records())))
        data[10] ^= 0xFF
        decoded, clean = decode_frames(bytes(data))
        assert clean is False
        assert decoded == []

    def test_wrong_schema_version_is_unretriable(self):
        store = _store_with_ops()
        record = next(ChangeStream(store.wal).records())
        import struct
        import zlib

        from repro.replication.changestream import _WIRE

        header = _WIRE.pack(
            0, len(record.payload), 999, record.seq, record.lsn,
            record.record_type, record.txn_id,
        )
        body = header[4:] + record.payload
        frame = struct.pack("<I", zlib.crc32(body)) + body
        with pytest.raises(ChangeStreamError, match="schema_version=999"):
            decode_frames(frame)


class TestDurablePrefixOnly:
    """A transaction whose commit frame has not reached its sync barrier
    must never be emitted — under deferred group commit and across the
    whole crash-point truncation matrix."""

    def test_pending_group_commit_frames_are_invisible(self):
        store = _store_with_ops()
        stream = ChangeStream(store.wal)
        head_before = stream.length()
        # deferred commit: the frame sits in the volatile buffer until
        # the shared barrier (the server's group-commit discipline)
        store.wal.append(
            RecordType.TXN_COMMIT, _commit_payload(txn_id=1), sync=False
        )
        store.wal.append(
            RecordType.TXN_COMMIT, _commit_payload(txn_id=2), sync=False
        )
        assert store.wal.pending_frames == 2
        assert stream.length() == head_before
        assert all(r.txn_id == NO_TXN for r in stream.records())
        # the captured durable image agrees: a crash here loses both
        image_stream = ChangeStream(WriteAheadLog.from_bytes(store.wal.to_bytes()))
        assert image_stream.length() == head_before
        # the barrier lands: both commits appear, in order, at the head
        store.wal.sync()
        tail = list(stream.records(start_seq=head_before))
        assert [r.txn_id for r in tail] == [1, 2]

    def test_durable_prefix_pinned_across_every_truncation_point(self):
        store = _store_with_ops()
        store.wal.append(
            RecordType.TXN_COMMIT, _commit_payload(txn_id=9), sync=True
        )
        image = store.wal.to_bytes()
        full = list(ChangeStream(WriteAheadLog.from_bytes(image)).records())
        for offset, kind, durable_changes in truncation_points(image):
            truncated = image[:offset]
            records = list(
                ChangeStream(WriteAheadLog.from_bytes(truncated)).records()
            )
            # exactly the durable prefix — a torn frame never leaks
            assert len(records) == durable_changes, (offset, kind)
            assert records == full[:durable_changes], (offset, kind)
            # every emitted commit frame is whole and decodable
            for record in records:
                if record.record_type == RecordType.TXN_COMMIT:
                    assert decode_commit(record.payload).txn_id == 9

    def test_frame_layout_walks_the_image_exactly(self):
        store = _store_with_ops()
        image = store.wal.to_bytes()
        layout = frame_layout(image)
        assert len(layout) == sum(1 for _ in store.wal.records())
        assert layout[0][0] == 0
