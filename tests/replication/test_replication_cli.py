"""`repro replicate` / `repro lag` end to end, plus the staleness
surfacing contract: a configured replica whose checkpoint shows no
apply progress must degrade `health` and `diagnose` — never "clean"."""

import io
import json

import pytest

from repro.cli import run
from repro.core.filestore import StoreDirectory
from repro.errors import ReplicaDivergenceError, ReproError, StoreDegradedError
from repro.obs.schema import SCHEMA_VERSION


@pytest.fixture
def primary(tmp_path):
    path = str(tmp_path / "primary")
    run([path, "load", "-"], stdin=io.StringIO("<lib><a>one</a></lib>"))
    run([path, "insert-last", "1", "<b>two</b>"])
    return path


@pytest.fixture
def replica(tmp_path):
    return str(tmp_path / "replica")


def _advance(primary, ops):
    with StoreDirectory(primary) as store:
        for index in range(ops):
            store.insert_into_last(1, f"<e>{index}</e>")


class TestReplicate:
    def test_replica_serves_the_primary_document(self, primary, replica):
        out = run([primary, "replicate", replica])
        assert "caught up" in out and "digest ok" in out
        # the replica is a standard store: every read surface works
        assert run([replica, "read"]) == run([primary, "read"])
        assert "match(es)" in run([replica, "xpath", "/lib/b"])

    def test_catch_up_resumes_incrementally(self, primary, replica):
        run([primary, "replicate", replica])
        _advance(primary, 3)
        out = run([primary, "replicate", replica])
        assert "applied 3" in out
        assert run([replica, "read"]) == run([primary, "read"])

    def test_faulty_channel_converges_deterministically(
        self, primary, replica
    ):
        _advance(primary, 6)
        out = run(
            [
                primary, "replicate", replica,
                "--channel-faults", "all", "--seed", "3",
                "--fault-rate", "0.8", "--max-attempts", "20",
            ]
        )
        assert "digest ok" in out
        assert run([replica, "read"]) == run([primary, "read"])

    def test_json_report_is_stamped(self, primary, replica):
        payload = json.loads(run([primary, "replicate", replica, "--json"]))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["converged"] is True
        assert payload["digest_match"] is True
        assert payload["lag_trace"]

    def test_force_diverge_is_detected_and_healed(self, primary, replica):
        run([primary, "replicate", replica])
        out = run([primary, "replicate", replica, "--force-diverge"])
        assert "1 resync(s)" in out and "digest ok" in out
        # the healed replica is byte-identical AND still reopenable —
        # the resync rebuilt catalog and device, not just the WAL
        assert run([replica, "read"]) == run([primary, "read"])
        assert "healthy" in run([replica, "health"])

    def test_force_diverge_without_resync_is_typed(self, primary, replica):
        run([primary, "replicate", replica])
        with pytest.raises(ReplicaDivergenceError) as failure:
            run([primary, "replicate", replica, "--force-diverge", "--no-resync"])
        assert failure.value.exit_code == 2

    def test_replica_must_differ_from_primary(self, primary):
        with pytest.raises(ReproError, match="must differ"):
            run([primary, "replicate", primary])


class TestLag:
    def test_fresh_replica_exits_zero(self, primary, replica):
        run([primary, "replicate", replica])
        out = run([primary, "lag"])
        assert "lag      0" in out and "[fresh]" in out

    def test_no_replicas_is_not_an_error(self, primary):
        assert "no replicas configured" in run([primary, "lag"])

    def test_stale_replica_exits_one(self, primary, replica):
        run([primary, "replicate", replica])
        _advance(primary, 4)
        with pytest.raises(StoreDegradedError, match="stale"):
            run([primary, "lag", "--stale-after", "2"])

    def test_json_is_stamped_with_rows(self, primary, replica):
        run([primary, "replicate", replica])
        payload = json.loads(run([primary, "lag", "--json"]))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["stale_count"] == 0
        (row,) = payload["replicas"]
        assert row["name"] == "replica"
        assert row["lag"] == 0 and row["has_checkpoint"] is True


class TestStalenessSurfacing:
    """Satellite contract: a stale replication checkpoint must surface
    in health (9th component) and diagnose (verdict degraded, exit 1) —
    the absence of progress is the alert, not an exception."""

    def test_health_gains_a_replication_component(self, primary, replica):
        run([primary, "replicate", replica])
        payload = json.loads(run([primary, "health", "--json"]))
        component = next(
            c for c in payload["components"] if c["name"] == "replication"
        )
        assert component["status"] == "healthy"
        assert component["detail"]["replicas"][0]["lag"] == 0

    def test_stale_checkpoint_degrades_health(self, primary, replica):
        run([primary, "replicate", replica])
        _advance(primary, 130)  # past replication_stale_after_ops (128)
        with pytest.raises(StoreDegradedError, match="replication"):
            run([primary, "health"])

    def test_stale_checkpoint_degrades_diagnose(self, primary, replica, tmp_path):
        run([primary, "replicate", replica])
        _advance(primary, 130)
        report_path = str(tmp_path / "diag.json")
        with pytest.raises(StoreDegradedError, match="replication stale"):
            run([primary, "diagnose", "--json", "--output", report_path])
        payload = json.load(open(report_path))
        assert payload["verdict"] == "degraded"
        assert payload["exit_code"] == 1
        (stale,) = payload["replication"]["stale_replicas"]
        assert stale["name"] == "replica"
        # and catching the replica up clears the verdict back to clean
        run([primary, "replicate", replica])
        assert "verdict: clean" in run([primary, "diagnose"])

    def test_fresh_replicas_leave_diagnose_clean(self, primary, replica):
        run([primary, "replicate", replica])
        out = run([primary, "diagnose"])
        assert "verdict: clean" in out

    def test_lag_gauges_and_stale_alert(self, primary, replica):
        from repro.obs.alerts import default_rules, evaluate_rule, store_view
        from repro.obs.bridge import store_registry
        from repro.obs.metrics import sample_key

        run([primary, "replicate", replica])
        _advance(primary, 130)
        with StoreDirectory(primary) as store:
            store.read()  # absence rules stay silent on zero-op stores
            values = {
                sample_key(sample): sample.value
                for family in store_registry(store).collect()
                for sample in family.samples
            }
            assert values["repro_replication_replicas"] == 1.0
            assert values["repro_replication_lag_ops"] > 128.0
            # stalled: the absence-rule sentinel value
            assert values["repro_replication_apply_progress"] == -1.0
            view = store_view(store)
            firing = {
                rule.name
                for rule in default_rules()
                if evaluate_rule(rule, view)[0]
            }
        assert "replication-stale" in firing

    def test_progressing_replica_does_not_fire_the_alert(
        self, primary, replica
    ):
        from repro.obs.alerts import default_rules, evaluate_rule, store_view
        from repro.obs.bridge import store_registry
        from repro.obs.metrics import sample_key

        run([primary, "replicate", replica])
        with StoreDirectory(primary) as store:
            values = {
                sample_key(sample): sample.value
                for family in store_registry(store).collect()
                for sample in family.samples
            }
            assert values["repro_replication_apply_progress"] > 0.0
            view = store_view(store)
            firing = {
                rule.name
                for rule in default_rules()
                if evaluate_rule(rule, view)[0]
            }
        assert "replication-stale" not in firing
        assert "replication-lag" not in firing
