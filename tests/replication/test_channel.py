"""The replication channel (repro.replication.channel): six seeded
fault classes, a bounded budget, deterministic backoff."""

import pytest

from repro.core.store import XMLStore
from repro.errors import ReplicationChannelError, ReplicationError
from repro.replication.changestream import ChangeStream, decode_frames
from repro.replication.channel import (
    CHANNEL_FAULT_NAMES,
    ChannelFaultConfig,
    ReplicationChannel,
    RetryPolicy,
    channel_fault_classes_help,
)


def _stream(changes=6):
    store = XMLStore.open()
    store.load_document("<r/>")
    for index in range(changes - 1):
        store.insert_into_last(1, f"<c>{index}</c>")
    return ChangeStream(store.wal)


def _channel(classes, seed=0, fault_rate=1.0, max_faults=16):
    return ReplicationChannel(
        _stream(),
        ChannelFaultConfig.from_classes(
            classes, seed=seed, fault_rate=fault_rate, max_faults=max_faults
        ),
    )


class TestFaultConfig:
    def test_from_classes_all_none_and_unknown(self):
        assert not ChannelFaultConfig.from_classes("none").any_enabled
        assert not ChannelFaultConfig.from_classes("").any_enabled
        every = ChannelFaultConfig.from_classes("all")
        assert every.any_enabled
        assert all(
            getattr(every, name) for name in CHANNEL_FAULT_NAMES
        )
        picked = ChannelFaultConfig.from_classes("drop,delay")
        assert picked.drop and picked.delay and not picked.reorder
        with pytest.raises(ReplicationError, match="unknown channel fault"):
            ChannelFaultConfig.from_classes("gremlins")

    def test_help_text_derives_from_the_registry(self):
        text = channel_fault_classes_help()
        for name in CHANNEL_FAULT_NAMES:
            assert name in text


class TestRetryPolicy:
    def test_deterministic_exponential_backoff_with_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.05
        )
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]


class TestChannel:
    def test_honest_channel_round_trips(self):
        channel = _channel("none")
        records, clean = decode_frames(channel.fetch(0, 10))
        assert clean is True
        assert [r.seq for r in records] == list(range(channel.head()))
        assert channel.faults_injected == 0

    def test_same_seed_same_bytes(self):
        first = _channel("all", seed=3)
        second = _channel("all", seed=3)
        for cursor in (0, 2, 4):
            try:
                bytes_a = first.fetch(cursor, 3)
            except ReplicationChannelError:
                bytes_a = b"<disconnect>"
            try:
                bytes_b = second.fetch(cursor, 3)
            except ReplicationChannelError:
                bytes_b = b"<disconnect>"
            assert bytes_a == bytes_b
        assert first.injected_by_class == second.injected_by_class

    def test_fault_budget_bounds_the_hostility(self):
        channel = _channel("delay", fault_rate=1.0, max_faults=3)
        for _ in range(3):
            assert channel.fetch(0, 4) == b""
        # the budget is spent: the channel turns honest forever
        records, clean = decode_frames(channel.fetch(0, 4))
        assert clean and len(records) == 4
        assert channel.faults_injected == 3

    def test_drop_removes_a_record(self):
        records, clean = decode_frames(_channel("drop").fetch(0, 4))
        assert clean is True
        assert len(records) == 3

    def test_duplicate_redelivers_a_record(self):
        records, clean = decode_frames(_channel("duplicate").fetch(0, 4))
        assert clean is True
        assert len(records) == 5
        assert len({r.seq for r in records}) == 4

    def test_reorder_keeps_the_set(self):
        channel = _channel("reorder", seed=1)
        records, clean = decode_frames(channel.fetch(0, 6))
        assert clean is True
        assert sorted(r.seq for r in records) == list(range(6))

    def test_truncate_fails_the_frame_crc(self):
        records, clean = decode_frames(_channel("truncate").fetch(0, 4))
        assert clean is False
        assert len(records) < 4

    def test_disconnect_is_typed(self):
        with pytest.raises(ReplicationChannelError, match="disconnected"):
            _channel("disconnect").fetch(0, 4)

    def test_counters_attribute_the_injections(self):
        channel = _channel("drop,delay", seed=5, max_faults=6)
        for _ in range(6):
            channel.fetch(0, 4)
        assert channel.fetches == 6
        assert channel.faults_injected == sum(
            channel.injected_by_class.values()
        )
        assert channel.faults_injected == 6
        assert set(
            name for name, count in channel.injected_by_class.items() if count
        ) <= {"drop", "delay"}
