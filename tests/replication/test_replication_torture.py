"""Replication torture (repro.testing.repltorture): every channel fault
class and every enumerated crash point — converge byte-identical or
fail typed, never a silently divergent replica."""

import json

import pytest

from repro.obs.schema import SCHEMA_VERSION
from repro.replication.channel import CHANNEL_FAULT_NAMES
from repro.testing.repltorture import (
    ReplicationTortureConfig,
    build_primary,
    run_fault_class,
    run_replication_torture,
    truncation_points,
)

#: Small but complete: every fault class, every truncation point.
CONFIG = ReplicationTortureConfig(seed=0, ops=8, txns=1)


@pytest.fixture(scope="module")
def report():
    return run_replication_torture(CONFIG)


class TestFullRun:
    def test_no_silently_divergent_replica(self, report):
        assert report.failures == []
        assert report.ok, report.render()

    def test_stream_carries_transactions(self, report):
        assert report.stream_length > 0

    def test_byte_determinism_gate(self, report):
        assert report.byte_deterministic

    def test_every_fault_class_was_exercised(self, report):
        tested = {result.classes for result in report.fault_results}
        assert tested == set(CHANNEL_FAULT_NAMES) | {"all"}
        # hostility actually happened — this was not a friendly run
        assert sum(r.faults_injected for r in report.fault_results) > 0

    def test_crash_matrix_covers_boundaries_and_torn_frames(self, report):
        kinds = {result.kind for result in report.crash_results}
        assert kinds == {"boundary", "torn"}
        assert len(report.crash_results) == report.crash_points_total
        # every tested channel behavior appears in the matrix
        assert {r.classes for r in report.crash_results} == set(
            CONFIG.crash_fault_classes
        )

    def test_divergence_drill(self, report):
        assert report.divergence_typed
        assert report.divergence_healed
        assert report.divergence_error is None

    def test_report_is_stamped_and_json_clean(self, report):
        payload = report.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["ok"] is True
        assert payload["crash_failures"] == []
        json.dumps(payload)  # fully serializable
        assert "no silently divergent replica" in report.render()


class TestDeterminism:
    def test_same_seed_same_report(self):
        config = ReplicationTortureConfig(seed=3, ops=5, txns=1)
        first = run_replication_torture(config).to_dict()
        second = run_replication_torture(config).to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


class TestPieces:
    def test_primary_is_deterministic(self):
        config = ReplicationTortureConfig(seed=5, ops=5, txns=2)
        assert (
            build_primary(config).wal.to_bytes()
            == build_primary(config).wal.to_bytes()
        )

    def test_truncation_points_enumerate_every_frame(self):
        config = ReplicationTortureConfig(seed=0, ops=4, txns=0)
        image = build_primary(config).wal.to_bytes()
        points = truncation_points(image)
        offsets = [offset for offset, _, _ in points]
        assert offsets[0] == 0
        assert offsets[-1] == len(image)
        assert offsets == sorted(offsets)
        # durable counts are monotone and end at the stream length
        durables = [durable for _, _, durable in points]
        assert durables == sorted(durables)

    def test_single_fault_class_verdict(self):
        config = ReplicationTortureConfig(seed=2, ops=5, txns=1)
        primary = build_primary(config)
        result = run_fault_class(
            config, "drop", primary, primary.wal.to_bytes()
        )
        assert result.ok, result.error
        assert result.converged or result.resumed

    def test_crash_point_sampling_cap(self):
        config = ReplicationTortureConfig(
            seed=1, ops=4, txns=0, crash_points=5,
            crash_fault_classes=("none",),
        )
        report = run_replication_torture(config)
        assert len(report.crash_results) == 5
        assert report.crash_points_total > 5
        assert report.ok, report.render()
