"""The replica (repro.replication.replica): idempotent apply, durable
checkpoints, crash recovery from the WAL image, resync."""

import os

import pytest

from repro.core.filestore import close_directory, open_directory
from repro.core.store import XMLStore
from repro.errors import ReplicationGapError
from repro.obs.schema import SCHEMA_VERSION
from repro.replication.changestream import ChangeStream
from repro.replication.channel import ChannelFaultConfig, ReplicationChannel
from repro.replication.digest import (
    digest_chunks,
    first_divergent_chunk,
    state_digest,
)
from repro.replication.replica import (
    CHECKPOINT_FILE,
    Replica,
    read_checkpoint,
    wal_change_count,
)
from repro.replication.service import catch_up
from repro.storage.wal import WriteAheadLog
from repro.testing.repltorture import truncation_points


def _primary(changes=5):
    store = XMLStore.open()
    store.load_document("<r/>")
    for index in range(changes - 1):
        store.insert_into_last(1, f"<c>{index}</c>")
    return store


def _records(primary):
    return list(ChangeStream(primary.wal).records())


class TestApply:
    def test_apply_advances_cursor_and_state(self):
        primary = _primary()
        replica = Replica(XMLStore.open())
        for record in _records(primary):
            assert replica.apply(record) is True
        assert replica.cursor == 5
        assert replica.applied == 5
        assert replica.store.read() == primary.read()
        assert state_digest(replica.store) == state_digest(primary)

    def test_duplicates_are_skipped_idempotently(self):
        primary = _primary()
        replica = Replica(XMLStore.open())
        records = _records(primary)
        for record in records:
            replica.apply(record)
        before = replica.store.read()
        assert replica.apply(records[1]) is False
        assert replica.duplicates_skipped == 1
        assert replica.store.read() == before
        assert replica.cursor == 5

    def test_a_gap_is_a_typed_retriable_error(self):
        primary = _primary()
        replica = Replica(XMLStore.open())
        records = _records(primary)
        replica.apply(records[0])
        with pytest.raises(ReplicationGapError, match="1 record\\(s\\) missing"):
            replica.apply(records[2])
        # the gap did not corrupt the cursor: the right record still lands
        assert replica.apply(records[1]) is True

    def test_cursor_is_derived_from_the_wal(self):
        primary = _primary()
        replica = Replica(XMLStore.open())
        for record in _records(primary)[:3]:
            replica.apply(record)
        assert wal_change_count(replica.store.wal) == 3
        # a second Replica over the same store sees the same cursor
        assert Replica(replica.store).cursor == 3


class TestCheckpoint:
    def test_checkpoint_is_stamped_and_atomic(self, tmp_path):
        directory = str(tmp_path)
        primary = _primary()
        replica = Replica(XMLStore.open(), directory=directory, name="r1")
        for record in _records(primary):
            replica.apply(record)
        payload = replica.write_checkpoint(source="prim")
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["cursor"] == 5
        assert payload["digest"] == state_digest(replica.store)
        on_disk = read_checkpoint(directory)
        assert on_disk == payload
        # tmp + rename: no temporary file survives the commit
        assert os.listdir(directory) == [CHECKPOINT_FILE]

    def test_read_checkpoint_tolerates_garbage(self, tmp_path):
        assert read_checkpoint(str(tmp_path)) is None
        (tmp_path / CHECKPOINT_FILE).write_text("not json {")
        assert read_checkpoint(str(tmp_path)) is None


class TestCrashRecovery:
    """Crash at any apply point: the WAL image alone rebuilds exactly
    the durable prefix, and catch-up resumes to byte identity."""

    def test_every_truncation_point_recovers_the_durable_prefix(self):
        primary = _primary(changes=6)
        replica = Replica(XMLStore.open())
        for record in _records(primary):
            replica.apply(record)
        image = replica.store.wal.to_bytes()
        for offset, kind, durable in truncation_points(image):
            recovered = Replica.recover_from_image(image[:offset])
            assert recovered.cursor == durable, (offset, kind)
            # resume over an honest channel: byte-identical convergence
            channel = ReplicationChannel(
                ChangeStream(WriteAheadLog.from_bytes(primary.wal.to_bytes())),
                ChannelFaultConfig(),
            )
            report = catch_up(channel, recovered, primary_store=primary)
            assert report.converged and report.digest_match
            assert recovered.store.read() == primary.read()

    def test_recovered_replica_skips_redelivered_records(self):
        primary = _primary()
        replica = Replica(XMLStore.open())
        records = _records(primary)
        for record in records[:3]:
            replica.apply(record)
        recovered = Replica.recover_from_image(replica.store.wal.to_bytes())
        assert recovered.apply(records[0]) is False  # duplicate
        assert recovered.apply(records[3]) is True  # next needed


class TestReseed:
    def test_in_memory_reseed_restores_byte_identity(self):
        primary = _primary()
        replica = Replica(XMLStore.open())
        for record in _records(primary)[:2]:
            replica.apply(record)
        replica.store.load_document("<diverged/>")
        assert state_digest(replica.store) != state_digest(primary)
        replica.reseed(primary.wal.to_bytes())
        assert replica.cursor == 5
        assert replica.store.read() == primary.read()
        assert state_digest(replica.store) == state_digest(primary)

    def test_directory_reseed_leaves_a_reopenable_store(self, tmp_path):
        # the regression the force-diverge drill caught: a resync must
        # rebuild the catalog and device files too, not just the WAL
        primary = _primary()
        directory = str(tmp_path / "replica")
        store = open_directory(directory)
        replica = Replica(store, directory=directory, name="r1")
        for record in _records(primary):
            replica.apply(record)
        replica.store.load_document("<diverged/>")
        replica.reseed(primary.wal.to_bytes(), source="prim")
        assert replica.store.read() == primary.read()
        checkpoint = read_checkpoint(directory)
        assert checkpoint["cursor"] == replica.cursor == 5
        close_directory(directory, replica.store)
        reopened = open_directory(directory)
        try:
            assert reopened.read() == primary.read()
        finally:
            close_directory(directory, reopened)


class TestDigest:
    def test_digest_is_chunked_and_localizes_divergence(self):
        primary = _primary()
        twin = XMLStore.recover(WriteAheadLog.from_bytes(primary.wal.to_bytes()))
        assert state_digest(twin) == state_digest(primary)
        assert first_divergent_chunk(primary, twin) is None
        twin.load_document("<diverged/>")
        assert state_digest(twin) != state_digest(primary)
        assert first_divergent_chunk(primary, twin) is not None

    def test_digest_covers_the_id_high_water_mark(self):
        # two stores with equal text but different id cursors must differ:
        # replayed inserts would allocate different ids
        first = XMLStore.open()
        first.load_document("<r/>")
        second = XMLStore.open()
        second.load_document("<r/>")
        second.insert_into_last(1, "<x/>")
        second.delete_node(2)
        assert first.read() == second.read()
        assert digest_chunks(first) == digest_chunks(second)
        assert state_digest(first) != state_digest(second)
