"""Property: kill any interior block of the data chain, repair, and the
survivors iterate cleanly — no dangling links, no invented content.

The ISSUE's link-repair bar for :func:`repro.core.repair.repair_store`:
after quarantining a random chain block the rebuilt
:class:`~repro.storage.heap.ChainedFile` must pass its own integrity
walk, never reference the dead block, and every record it serves must
be byte-identical to one the store really held before the damage.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StoreConfig
from repro.core.repair import repair_store
from repro.core.store import XMLStore

FRAGMENTS = [
    "<a/>",
    "<b>text</b>",
    "<c x='1'>more text here</c>",
    "<d><e/><f>nested</f></d>",
]


def build_seeded_store(seed):
    rng = random.Random(seed)
    store = XMLStore.open(
        StoreConfig(page_size=512, buffer_pool_capacity=8, checksums_enabled=True)
    )
    root = store.load_document("<r/>")
    for _ in range(rng.randint(12, 40)):
        store.insert_into_last(root, rng.choice(FRAGMENTS))
    store.checkpoint()
    return store, rng


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_chain_survives_losing_any_interior_block(seed):
    store, rng = build_seeded_store(seed)
    original_records = {
        bytes(record) for _, record in store.layout.chain.records()
    }
    chain_blocks = list(store.layout.chain.blocks())
    victim = rng.choice(chain_blocks)

    image = bytearray(store.device.read_block(victim))
    image[rng.randrange(len(image))] ^= 1 << rng.randrange(8)
    store.device.write_block(victim, bytes(image))

    report = repair_store(store)
    assert report.integrity_ok

    # the rebuilt chain's own walk passes: every link resolves, forward
    # and backward traversal agree, no cycles
    chain = store.layout.chain
    chain.check_integrity()
    rebuilt_blocks = list(chain.blocks())
    assert victim not in rebuilt_blocks
    assert len(rebuilt_blocks) == len(set(rebuilt_blocks))

    # survivors iterate cleanly end to end, and nothing was invented:
    # every served record is byte-identical to one the store really held
    survivors = [bytes(record) for _, record in chain.records()]
    assert set(survivors) <= original_records
    # the dead block held at most one page of records; the bulk survives
    assert len(survivors) >= report.records_kept
