"""Model-based tests for the storage substrates: B+-tree vs dict,
chained file vs list, ORDPATH ordering under random insertion."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.index.bptree import INT_KEY_CODEC, PagedBPlusTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice
from repro.storage.heap import ChainedFile, Position


class BPlusTreeAgreesWithDict(RuleBasedStateMachine):
    """Insert/delete/lookup/scan against a dict oracle."""

    @initialize(order=st.sampled_from([3, 4, 8, 32]))
    def setup(self, order):
        device = InstrumentedDevice(MemoryBlockDevice())
        pool = BufferPool(device, capacity=64)
        self.tree = PagedBPlusTree(pool, INT_KEY_CODEC, order=order)
        self.model = {}

    @rule(key=st.integers(-100, 100), value=st.binary(max_size=8))
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=st.integers(-100, 100))
    def delete(self, key):
        removed = self.tree.delete(key)
        assert removed == (key in self.model)
        self.model.pop(key, None)

    @rule(key=st.integers(-120, 120))
    def lookup(self, key):
        assert self.tree.get(key) == self.model.get(key)

    @rule(key=st.integers(-120, 120))
    def floor(self, key):
        eligible = [k for k in self.model if k <= key]
        found = self.tree.floor_item(key)
        if eligible:
            best = max(eligible)
            assert found == (best, self.model[best])
        else:
            assert found is None

    @rule(key=st.integers(-120, 120))
    def ceiling(self, key):
        eligible = [k for k in self.model if k >= key]
        found = self.tree.ceiling_item(key)
        if eligible:
            best = min(eligible)
            assert found == (best, self.model[best])
        else:
            assert found is None

    @rule(low=st.integers(-120, 120), span=st.integers(0, 60))
    def range_scan(self, low, span):
        high = low + span
        expected = sorted(
            (k, v) for k, v in self.model.items() if low <= k <= high
        )
        assert list(self.tree.items(low=low, high=high)) == expected

    @invariant()
    def tree_is_structurally_sound(self):
        self.tree.check_integrity()

    @invariant()
    def full_scan_matches(self):
        assert list(self.tree.items()) == sorted(self.model.items())


TestBPlusTree = BPlusTreeAgreesWithDict.TestCase
TestBPlusTree.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


class ChainAgreesWithList(RuleBasedStateMachine):
    """Chained-file record operations against a Python list oracle."""

    @initialize(block_size=st.sampled_from([64, 128, 512]))
    def setup(self, block_size):
        device = InstrumentedDevice(MemoryBlockDevice(block_size=block_size))
        pool = BufferPool(device, capacity=16)
        self.chain = ChainedFile(pool)
        self.model = []

    def _contents(self):
        return [record for _, record in self.chain.records()]

    def _position_of(self, index):
        """Physical position of the index-th record."""
        for count, (pos, _) in enumerate(self.chain.records()):
            if count == index:
                return pos
        raise AssertionError("index out of range")

    @rule(records=st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=5))
    def append(self, records):
        self.chain.append_records(records)
        self.model.extend(records)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), records=st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=4))
    def insert_at(self, data, records):
        index = data.draw(st.integers(0, len(self.model) - 1))
        self.chain.insert_records(self._position_of(index), records)
        self.model[index:index] = records

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_at(self, data):
        index = data.draw(st.integers(0, len(self.model) - 1))
        removed = self.chain.delete_record(self._position_of(index))
        assert removed == self.model.pop(index)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), record=st.binary(min_size=1, max_size=30))
    def replace_at(self, data, record):
        index = data.draw(st.integers(0, len(self.model) - 1))
        self.chain.replace_record(self._position_of(index), record)
        self.model[index] = record

    @invariant()
    def same_sequence(self):
        assert self._contents() == self.model

    @invariant()
    def chain_is_sound(self):
        self.chain.check_integrity()


TestChainedFile = ChainAgreesWithList.TestCase
TestChainedFile.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)


class OrdpathOrderInvariants(RuleBasedStateMachine):
    """Random sibling insertions: order always strict and stable, no label
    ever becomes an ancestor of a sibling."""

    def __init__(self):
        super().__init__()
        from repro.ids.ordpath import OrdpathScheme

        self.scheme = OrdpathScheme()
        self.labels = [(1, 1), (1, 3)]

    @rule(data=st.data())
    def insert_between(self, data):
        index = data.draw(st.integers(0, len(self.labels) - 2))
        left, right = self.labels[index], self.labels[index + 1]
        new_label = self.scheme.between(left, right)
        assert left < new_label < right
        self.labels.insert(index + 1, new_label)

    @rule()
    def append_sibling(self):
        self.labels.append(self.scheme.next_sibling(self.labels[-1]))

    @rule()
    def prepend_sibling(self):
        self.labels.insert(0, self.scheme.previous_sibling_slot(self.labels[0]))

    @invariant()
    def strictly_ordered(self):
        for left, right in zip(self.labels, self.labels[1:]):
            assert left < right

    @invariant()
    def no_sibling_ancestry(self):
        for left, right in zip(self.labels, self.labels[1:]):
            assert not self.scheme.is_ancestor(left, right)
            assert not self.scheme.is_ancestor(right, left)

    @invariant()
    def labels_end_odd(self):
        for label in self.labels:
            assert label[-1] % 2 == 1

    @invariant()
    def byte_encoding_preserves_order(self):
        encoded = [self.scheme.encode(label) for label in self.labels]
        assert encoded == sorted(encoded)


TestOrdpathInvariants = OrdpathOrderInvariants.TestCase
TestOrdpathInvariants.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


@given(st.lists(st.binary(min_size=1, max_size=10), max_size=30))
def test_slotted_page_roundtrip_property(records):
    from repro.storage.pages import SlottedPage

    page = SlottedPage(4096, records)
    assert SlottedPage.from_bytes(page.to_bytes()).records() == records
