"""Property: after any operation sequence, a full-log restore reproduces
the exact store content — under every indexing policy."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.errors import NodeNotFoundError, InvalidOperationError

FRAGMENTS = ["<a/>", "<b>t</b>", "<c x='1'/>", "<d><e/></d>"]

operations = st.lists(
    st.tuples(
        st.sampled_from(
            ["load", "into_last", "before", "after", "delete", "replace"]
        ),
        st.integers(1, 30),
        st.sampled_from(FRAGMENTS),
    ),
    min_size=1,
    max_size=25,
)


@given(
    ops=operations,
    policy=st.sampled_from([IndexingPolicy.RANGE_PLUS_PARTIAL, IndexingPolicy.FULL]),
)
@settings(max_examples=40, deadline=None)
def test_full_log_restore_reproduces_content(ops, policy):
    config = StoreConfig(policy=policy, buffer_pool_capacity=8)
    store = XMLStore.open(config)
    for kind, node_id, fragment in ops:
        try:
            if kind == "load":
                store.load_document(fragment)
            elif kind == "into_last":
                store.insert_into_last(node_id, fragment)
            elif kind == "before":
                store.insert_before(node_id, fragment)
            elif kind == "after":
                store.insert_after(node_id, fragment)
            elif kind == "delete":
                store.delete_node(node_id)
            elif kind == "replace":
                store.replace_node(node_id, fragment)
        except (NodeNotFoundError, InvalidOperationError):
            # invalid targets are fine — they must not reach the WAL
            continue
    recovered = XMLStore.recover(store.wal, config=config)
    assert recovered.read() == store.read()
    recovered.check_integrity()


@given(ops=operations)
@settings(max_examples=25, deadline=None)
def test_checkpoint_plus_replay_reproduces_content(ops):
    """Checkpoint mid-history, crash at the end, recover from catalog."""
    store = XMLStore.open(StoreConfig(buffer_pool_capacity=64))
    half = len(ops) // 2
    catalog = None

    def apply(sequence):
        for kind, node_id, fragment in sequence:
            try:
                if kind == "load":
                    store.load_document(fragment)
                elif kind == "into_last":
                    store.insert_into_last(node_id, fragment)
                elif kind == "before":
                    store.insert_before(node_id, fragment)
                elif kind == "after":
                    store.insert_after(node_id, fragment)
                elif kind == "delete":
                    store.delete_node(node_id)
                elif kind == "replace":
                    store.replace_node(node_id, fragment)
            except (NodeNotFoundError, InvalidOperationError):
                continue

    apply(ops[:half])
    catalog = store.checkpoint()
    apply(ops[half:])
    expected = store.read()
    store.pool.drop_all()  # crash (pool large enough that no dirty
    # post-checkpoint page was evicted; see recovery contract)
    recovered = XMLStore.from_catalog(store.device, catalog, wal=store.wal)
    from repro.storage.recovery import replay

    replay(recovered, store.wal)
    assert recovered.read() == expected
    recovered.check_integrity()
