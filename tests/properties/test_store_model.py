"""Model-based testing of the store against a reference implementation.

The reference keeps the document as a plain token list with its own id
assignment, sharing nothing with the store except the parser.  Hypothesis
drives random operation sequences against both under every indexing
policy and checks they agree on content, node lookup, and errors — the
strongest statement that laziness never changes answers.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.errors import NodeNotFoundError
from repro.storage.wal import WriteAheadLog
from repro.testing.reference import ReferenceStore


FRAGMENTS = [
    "<a/>",
    "<b>text</b>",
    "<c x='1'><d/></c>",
    "<e><f>deep</f><g/></e>",
    "plain text",
    "<h/><i/>",
]

POLICIES = [
    IndexingPolicy.FULL,
    IndexingPolicy.RANGE,
    IndexingPolicy.RANGE_PLUS_PARTIAL,
    IndexingPolicy.ADAPTIVE,
]


class StoreAgreesWithModel(RuleBasedStateMachine):
    """Random Table-1 operation sequences: store == reference, always."""

    @initialize(
        policy=st.sampled_from(POLICIES),
        page_size=st.sampled_from([512, 4096]),
        granularity=st.sampled_from([None, 8, 64]),
    )
    def setup(self, policy, page_size, granularity):
        self.config_kwargs = dict(
            policy=policy,
            page_size=page_size,
            buffer_pool_capacity=8,
            max_range_tokens=granularity,
        )
        self.store = XMLStore.open(StoreConfig(**self.config_kwargs))
        self.model = ReferenceStore()

    # -- operations ------------------------------------------------------------

    @rule(fragment=st.sampled_from(FRAGMENTS))
    def load(self, fragment):
        got = self.store.load_document(fragment)
        expected = self.model.load_document(fragment)
        assert got == expected

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_before(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.insert_before(node_id, fragment)
        self.model.insert_before(node_id, fragment)

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_after(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.insert_after(node_id, fragment)
        self.model.insert_after(node_id, fragment)

    @precondition(lambda self: self.model.element_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_into_last(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.element_ids()))
        self.store.insert_into_last(node_id, fragment)
        self.model.insert_into_last(node_id, fragment)

    @precondition(lambda self: self.model.element_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_into_first(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.element_ids()))
        self.store.insert_into_first(node_id, fragment)
        self.model.insert_into_first(node_id, fragment)

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data())
    def delete_node(self, data):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.delete_node(node_id)
        self.model.delete_node(node_id)

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def replace_node(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.replace_node(node_id, fragment)
        self.model.replace_node(node_id, fragment)

    @rule()
    def crash_recover(self):
        """Kill the store and rebuild it from its own WAL: the recovered
        store must serialize identically, keep the same id assignment
        (checked implicitly — later rules target model-chosen ids), and
        carry on accepting operations."""
        wal_bytes = self.store.wal.to_bytes()
        self.store = XMLStore.recover(
            WriteAheadLog.from_bytes(wal_bytes),
            config=StoreConfig(**self.config_kwargs),
        )
        assert self.store.read() == self.model.read()

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data())
    def read_node(self, data):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        assert self.store.read(node_id) == self.model.read(node_id)

    @rule()
    def read_missing_id_raises(self):
        import pytest

        missing = self.model._next_id + 100
        with pytest.raises(NodeNotFoundError):
            self.store.read(missing)

    def _is_attribute(self, node_id: int) -> bool:
        return self.model.is_attribute(node_id)

    # -- invariants -----------------------------------------------------------------

    @invariant()
    def same_document(self):
        assert self.store.read() == self.model.read()

    @invariant()
    def store_invariants_hold(self):
        self.store.check_integrity()


TestStoreAgreesWithModel = StoreAgreesWithModel.TestCase
TestStoreAgreesWithModel.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
