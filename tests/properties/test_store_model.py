"""Model-based testing of the store against a reference implementation.

The reference keeps the document as a plain token list with its own id
assignment, sharing nothing with the store except the parser.  Hypothesis
drives random operation sequences against both under every indexing
policy and checks they agree on content, node lookup, and errors — the
strongest statement that laziness never changes answers.
"""

from typing import Dict, List, Optional, Tuple

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.errors import NodeNotFoundError
from repro.xmltoken.datamodel import node_end_offset
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind


class ReferenceStore:
    """Token list + dense id assignment; the oracle."""

    def __init__(self) -> None:
        self.tokens: List[Token] = []
        self.ids: List[Optional[int]] = []  # id per token (node starts only)
        self._next_id = 1

    # -- helpers ---------------------------------------------------------------

    def _assign(self, tokens: List[Token]) -> List[Optional[int]]:
        ids: List[Optional[int]] = []
        for token in tokens:
            if token.starts_node:
                ids.append(self._next_id)
                self._next_id += 1
            else:
                ids.append(None)
        return ids

    def _find(self, node_id: int) -> int:
        for index, assigned in enumerate(self.ids):
            if assigned == node_id:
                return index
        raise NodeNotFoundError(str(node_id))

    def _subtree_span(self, index: int) -> Tuple[int, int]:
        return index, node_end_offset(self.tokens, index)

    def _splice(self, at: int, tokens: List[Token]) -> None:
        ids = self._assign(tokens)
        self.tokens[at:at] = tokens
        self.ids[at:at] = ids

    # -- mirrored operations -----------------------------------------------------

    def load_document(self, xml: str) -> Optional[int]:
        tokens = tokenize_fragment(xml)
        first = self._next_id if any(t.starts_node for t in tokens) else None
        self._splice(len(self.tokens), tokens)
        return first

    def read(self, node_id: Optional[int] = None) -> str:
        if node_id is None:
            return serialize(self.tokens)
        start, end = self._subtree_span(self._find(node_id))
        return serialize(self.tokens[start:end])

    def insert_before(self, node_id: int, xml: str) -> None:
        index = self._find(node_id)
        self._splice(index, tokenize_fragment(xml))

    def insert_after(self, node_id: int, xml: str) -> None:
        _, end = self._subtree_span(self._find(node_id))
        self._splice(end, tokenize_fragment(xml))

    def insert_into_last(self, node_id: int, xml: str) -> None:
        start, end = self._subtree_span(self._find(node_id))
        self._splice(end - 1, tokenize_fragment(xml))

    def insert_into_first(self, node_id: int, xml: str) -> None:
        index = self._find(node_id)
        position = index + 1
        while self.tokens[position].kind in (
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.ATTRIBUTE_VALUE,
            TokenKind.END_ATTRIBUTE,
            TokenKind.NAMESPACE,
        ):
            position += 1
        self._splice(position, tokenize_fragment(xml))

    def delete_node(self, node_id: int) -> None:
        start, end = self._subtree_span(self._find(node_id))
        del self.tokens[start:end]
        del self.ids[start:end]

    def element_ids(self) -> List[int]:
        return [
            assigned
            for token, assigned in zip(self.tokens, self.ids)
            if assigned is not None and token.kind == TokenKind.BEGIN_ELEMENT
        ]

    def all_node_ids(self) -> List[int]:
        return [assigned for assigned in self.ids if assigned is not None]


FRAGMENTS = [
    "<a/>",
    "<b>text</b>",
    "<c x='1'><d/></c>",
    "<e><f>deep</f><g/></e>",
    "plain text",
    "<h/><i/>",
]

POLICIES = [
    IndexingPolicy.FULL,
    IndexingPolicy.RANGE,
    IndexingPolicy.RANGE_PLUS_PARTIAL,
    IndexingPolicy.ADAPTIVE,
]


class StoreAgreesWithModel(RuleBasedStateMachine):
    """Random Table-1 operation sequences: store == reference, always."""

    @initialize(
        policy=st.sampled_from(POLICIES),
        page_size=st.sampled_from([512, 4096]),
        granularity=st.sampled_from([None, 8, 64]),
    )
    def setup(self, policy, page_size, granularity):
        self.store = XMLStore.open(
            StoreConfig(
                policy=policy,
                page_size=page_size,
                buffer_pool_capacity=8,
                max_range_tokens=granularity,
            )
        )
        self.model = ReferenceStore()

    # -- operations ------------------------------------------------------------

    @rule(fragment=st.sampled_from(FRAGMENTS))
    def load(self, fragment):
        got = self.store.load_document(fragment)
        expected = self.model.load_document(fragment)
        assert got == expected

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_before(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.insert_before(node_id, fragment)
        self.model.insert_before(node_id, fragment)

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_after(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.insert_after(node_id, fragment)
        self.model.insert_after(node_id, fragment)

    @precondition(lambda self: self.model.element_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_into_last(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.element_ids()))
        self.store.insert_into_last(node_id, fragment)
        self.model.insert_into_last(node_id, fragment)

    @precondition(lambda self: self.model.element_ids())
    @rule(data=st.data(), fragment=st.sampled_from(FRAGMENTS))
    def insert_into_first(self, data, fragment):
        node_id = data.draw(st.sampled_from(self.model.element_ids()))
        self.store.insert_into_first(node_id, fragment)
        self.model.insert_into_first(node_id, fragment)

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data())
    def delete_node(self, data):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        self.store.delete_node(node_id)
        self.model.delete_node(node_id)

    @precondition(lambda self: self.model.all_node_ids())
    @rule(data=st.data())
    def read_node(self, data):
        node_id = data.draw(st.sampled_from(self.model.all_node_ids()))
        if self._is_attribute(node_id):
            return
        assert self.store.read(node_id) == self.model.read(node_id)

    @rule()
    def read_missing_id_raises(self):
        import pytest

        missing = self.model._next_id + 100
        with pytest.raises(NodeNotFoundError):
            self.store.read(missing)

    def _is_attribute(self, node_id: int) -> bool:
        index = self.model._find(node_id)
        return self.model.tokens[index].kind in (
            TokenKind.BEGIN_ATTRIBUTE,
            TokenKind.NAMESPACE,
        )

    # -- invariants -----------------------------------------------------------------

    @invariant()
    def same_document(self):
        assert self.store.read() == self.model.read()

    @invariant()
    def store_invariants_hold(self):
        self.store.check_integrity()


TestStoreAgreesWithModel = StoreAgreesWithModel.TestCase
TestStoreAgreesWithModel.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
