"""Property-based tests: token codec and XML round-trips."""

import string

from hypothesis import given, settings, strategies as st

from repro.xmltoken.binary import (
    decode_stream,
    decode_token,
    decode_varint,
    encode_stream,
    encode_token,
    encode_varint,
)
from repro.xmltoken.parser import tokenize_fragment
from repro.xmltoken.serializer import serialize
from repro.xmltoken.tokens import Token, TokenKind

# -- strategies ----------------------------------------------------------------

names = st.text(
    alphabet=string.ascii_letters + string.digits + "._-",
    min_size=1,
    max_size=12,
).filter(lambda s: s[0].isalpha() or s[0] == "_")

# XML 1.0 forbids most control characters; generate text without them
xml_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"), blacklist_characters="\r"
    ),
    max_size=40,
)

simple_tokens = st.one_of(
    st.builds(lambda n: Token(TokenKind.BEGIN_ELEMENT, name=n), names),
    st.just(Token(TokenKind.END_ELEMENT)),
    st.builds(lambda n: Token(TokenKind.BEGIN_ATTRIBUTE, name=n), names),
    st.just(Token(TokenKind.END_ATTRIBUTE)),
    st.builds(lambda v: Token(TokenKind.ATTRIBUTE_VALUE, value=v), xml_text),
    st.builds(lambda v: Token(TokenKind.TEXT, value=v), xml_text),
    st.builds(lambda v: Token(TokenKind.COMMENT, value=v), xml_text),
    st.builds(
        lambda n, v: Token(TokenKind.PROCESSING_INSTRUCTION, name=n, value=v),
        names,
        xml_text,
    ),
    st.builds(
        lambda n, v, t: Token(TokenKind.TEXT, name=n, value=v, type_annotation=t),
        st.just(""),
        xml_text,
        names,
    ),
)


@st.composite
def xml_trees(draw, max_depth=4):
    """A well-formed XML fragment string, built structurally."""

    def build(depth):
        name = draw(names)
        attr_count = draw(st.integers(0, 2))
        attributes = {}
        for _ in range(attr_count):
            attributes[draw(names)] = draw(
                xml_text.map(lambda s: s.replace("<", ""))
            )
        attr_text = "".join(
            f' {k}="{v.replace(chr(38), "&amp;").replace(chr(34), "&quot;")}"'
            for k, v in attributes.items()
        )
        if depth >= max_depth or draw(st.booleans()):
            return f"<{name}{attr_text}/>"
        child_count = draw(st.integers(0, 3))
        children = []
        for _ in range(child_count):
            if draw(st.booleans()):
                children.append(build(depth + 1))
            else:
                raw = draw(xml_text)
                children.append(
                    raw.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
                )
        return f"<{name}{attr_text}>{''.join(children)}</{name}>"

    return build(0)


# -- properties -------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_varint_roundtrip(value):
    decoded, offset = decode_varint(encode_varint(value))
    assert decoded == value
    assert offset == len(encode_varint(value))


@given(st.lists(st.integers(min_value=0, max_value=2**32), max_size=20))
def test_varint_stream_roundtrip(values):
    blob = b"".join(encode_varint(v) for v in values)
    decoded = []
    offset = 0
    while offset < len(blob):
        value, offset = decode_varint(blob, offset)
        decoded.append(value)
    assert decoded == values


@given(simple_tokens)
def test_token_codec_roundtrip(token):
    assert decode_token(encode_token(token)) == token


@given(st.lists(simple_tokens, max_size=30))
def test_token_stream_roundtrip(tokens):
    assert list(decode_stream(encode_stream(tokens))) == tokens


@given(xml_trees())
@settings(max_examples=200)
def test_parse_serialize_parse_fixpoint(xml):
    tokens = tokenize_fragment(xml)
    text = serialize(tokens)
    assert tokenize_fragment(text) == tokens


@given(xml_trees())
def test_serialized_form_is_stable(xml):
    once = serialize(tokenize_fragment(xml))
    twice = serialize(tokenize_fragment(once))
    assert once == twice


@given(xml_trees())
def test_parser_output_always_validates(xml):
    from repro.xmltoken.datamodel import validate_stream

    validate_stream(tokenize_fragment(xml))
