"""Unit tests for the paged B+-tree."""

import random

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice
from repro.index.bptree import (
    BYTES_KEY_CODEC,
    INT_KEY_CODEC,
    INT_TUPLE_KEY_CODEC,
    PagedBPlusTree,
)


def make_tree(order=4, capacity=128, block_size=4096, codec=INT_KEY_CODEC):
    device = InstrumentedDevice(MemoryBlockDevice(block_size=block_size))
    pool = BufferPool(device, capacity=capacity)
    return PagedBPlusTree(pool, codec, order=order), pool, device


class TestBasics:
    def test_empty_tree(self):
        tree, _, _ = make_tree()
        assert tree.get(1) is None
        assert tree.is_empty
        assert len(tree) == 0
        assert 1 not in tree

    def test_insert_and_get(self):
        tree, _, _ = make_tree()
        tree.insert(5, b"five")
        assert tree.get(5) == b"five"
        assert 5 in tree

    def test_overwrite(self):
        tree, _, _ = make_tree()
        tree.insert(5, b"old")
        tree.insert(5, b"new")
        assert tree.get(5) == b"new"
        assert len(tree) == 1

    def test_many_inserts_force_splits(self):
        tree, _, _ = make_tree(order=4)
        for i in range(200):
            tree.insert(i, str(i).encode())
        assert tree.height() > 1
        for i in range(200):
            assert tree.get(i) == str(i).encode()
        tree.check_integrity()

    def test_reverse_order_inserts(self):
        tree, _, _ = make_tree(order=4)
        for i in reversed(range(100)):
            tree.insert(i, b"v")
        assert [k for k, _ in tree.items()] == list(range(100))
        tree.check_integrity()

    def test_random_order_inserts(self):
        tree, _, _ = make_tree(order=4)
        keys = list(range(300))
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.insert(key, str(key).encode())
        assert [k for k, _ in tree.items()] == list(range(300))
        tree.check_integrity()

    def test_order_too_small_rejected(self):
        device = InstrumentedDevice(MemoryBlockDevice())
        pool = BufferPool(device)
        with pytest.raises(Exception):
            PagedBPlusTree(pool, INT_KEY_CODEC, order=2)


class TestFloorCeiling:
    def test_floor_exact_match(self):
        tree, _, _ = make_tree()
        tree.insert(10, b"ten")
        assert tree.floor_item(10) == (10, b"ten")

    def test_floor_between_keys(self):
        tree, _, _ = make_tree(order=4)
        for key in [1, 10, 20, 30, 40]:
            tree.insert(key, str(key).encode())
        assert tree.floor_item(25) == (20, b"20")

    def test_floor_below_all_keys(self):
        tree, _, _ = make_tree()
        tree.insert(10, b"x")
        assert tree.floor_item(5) is None

    def test_floor_across_leaf_boundary(self):
        tree, _, _ = make_tree(order=4)
        for key in range(0, 100, 10):
            tree.insert(key, str(key).encode())
        # 45 falls inside whatever leaf; check several probes
        for probe in range(0, 99):
            expected = (probe // 10) * 10
            assert tree.floor_item(probe)[0] == expected

    def test_ceiling(self):
        tree, _, _ = make_tree(order=4)
        for key in [10, 20, 30]:
            tree.insert(key, b"v")
        assert tree.ceiling_item(15)[0] == 20
        assert tree.ceiling_item(20)[0] == 20
        assert tree.ceiling_item(31) is None

    def test_floor_on_empty_tree(self):
        tree, _, _ = make_tree()
        assert tree.floor_item(5) is None
        assert tree.ceiling_item(5) is None


class TestRangeScan:
    def test_items_full_scan_sorted(self):
        tree, _, _ = make_tree(order=4)
        keys = [9, 3, 7, 1, 5]
        for key in keys:
            tree.insert(key, str(key).encode())
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_items_with_bounds(self):
        tree, _, _ = make_tree(order=4)
        for key in range(20):
            tree.insert(key, b"v")
        assert [k for k, _ in tree.items(low=5, high=9)] == [5, 6, 7, 8, 9]

    def test_items_low_only(self):
        tree, _, _ = make_tree(order=4)
        for key in range(10):
            tree.insert(key, b"v")
        assert [k for k, _ in tree.items(low=7)] == [7, 8, 9]

    def test_items_high_only(self):
        tree, _, _ = make_tree(order=4)
        for key in range(10):
            tree.insert(key, b"v")
        assert [k for k, _ in tree.items(high=2)] == [0, 1, 2]

    def test_items_empty_range(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"v")
        assert list(tree.items(low=5, high=9)) == []


class TestDelete:
    def test_delete_present_key(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"one")
        assert tree.delete(1) is True
        assert tree.get(1) is None

    def test_delete_absent_key(self):
        tree, _, _ = make_tree()
        tree.insert(1, b"one")
        assert tree.delete(2) is False
        assert tree.get(1) == b"one"

    def test_delete_all_keys(self):
        tree, _, _ = make_tree(order=4)
        for key in range(100):
            tree.insert(key, b"v")
        for key in range(100):
            assert tree.delete(key)
        assert tree.is_empty
        tree.check_integrity()

    def test_delete_random_order_with_rebalancing(self):
        tree, _, _ = make_tree(order=4)
        keys = list(range(300))
        rng = random.Random(13)
        for key in keys:
            tree.insert(key, str(key).encode())
        rng.shuffle(keys)
        survivors = set(range(300))
        for key in keys[:200]:
            assert tree.delete(key)
            survivors.discard(key)
            if len(survivors) % 50 == 0:
                tree.check_integrity()
        assert [k for k, _ in tree.items()] == sorted(survivors)
        tree.check_integrity()

    def test_tree_height_shrinks_after_mass_delete(self):
        tree, _, _ = make_tree(order=4)
        for key in range(200):
            tree.insert(key, b"v")
        tall = tree.height()
        for key in range(199):
            tree.delete(key)
        assert tree.height() < tall
        tree.check_integrity()

    def test_interleaved_insert_delete(self):
        tree, _, _ = make_tree(order=4)
        model = {}
        rng = random.Random(42)
        for step in range(1000):
            key = rng.randrange(100)
            if rng.random() < 0.6:
                tree.insert(key, str(step).encode())
                model[key] = str(step).encode()
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert dict(tree.items()) == model
        tree.check_integrity()

    def test_clear(self):
        tree, pool, _ = make_tree(order=4)
        for key in range(100):
            tree.insert(key, b"v")
        tree.clear()
        assert tree.is_empty
        tree.insert(1, b"again")
        assert tree.get(1) == b"again"


class TestPersistence:
    def test_reopen_by_root_block(self):
        device = InstrumentedDevice(MemoryBlockDevice())
        pool = BufferPool(device, capacity=64)
        tree = PagedBPlusTree(pool, INT_KEY_CODEC, order=4)
        for key in range(50):
            tree.insert(key, str(key).encode())
        root = tree.root_block
        pool.flush_all()
        fresh_pool = BufferPool(device, capacity=64)
        reopened = PagedBPlusTree(fresh_pool, INT_KEY_CODEC, order=4, root_block=root)
        assert [k for k, _ in reopened.items()] == list(range(50))
        assert reopened.get(33) == b"33"

    def test_tree_io_is_accounted(self):
        tree, pool, device = make_tree(order=4, capacity=2)
        for key in range(200):
            tree.insert(key, b"v")
        pool.flush_all()
        before = device.stats.reads
        tree.get(150)
        assert device.stats.reads >= before  # lookups may hit the tiny pool
        # with a tiny pool, a full scan must read from the device
        list(tree.items())
        assert device.stats.reads > before


class TestKeyCodecs:
    def test_tuple_keys(self):
        tree, _, _ = make_tree(codec=INT_TUPLE_KEY_CODEC, order=4)
        labels = [(1,), (1, 1), (1, 3), (2,), (2, 1, 5)]
        for i, label in enumerate(labels):
            tree.insert(label, str(i).encode())
        assert [k for k, _ in tree.items()] == sorted(labels)
        assert tree.floor_item((1, 2))[0] == (1, 1)

    def test_bytes_keys(self):
        tree, _, _ = make_tree(codec=BYTES_KEY_CODEC, order=4)
        for word in [b"pear", b"apple", b"fig"]:
            tree.insert(word, b"v")
        assert [k for k, _ in tree.items()] == [b"apple", b"fig", b"pear"]

    def test_negative_int_keys(self):
        tree, _, _ = make_tree(order=4)
        for key in [-5, -1, 0, 3, -100]:
            tree.insert(key, b"v")
        assert [k for k, _ in tree.items()] == [-100, -5, -1, 0, 3]
