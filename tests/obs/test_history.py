"""Workload history: capture, retention compaction, persistence."""

import json

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.errors import ObservabilityError
from repro.obs.history import (
    HistorySnapshot,
    NOOP_HISTORY,
    NoopHistory,
    WorkloadHistory,
    create_history,
    load_snapshots,
    read_history,
)

K_LOAD = 'repro_store_operations_total{op="load"}'
K_READ = 'repro_store_operations_total{op="node_read"}'


def _store(**overrides):
    config = dict(
        policy=IndexingPolicy.RANGE_PLUS_PARTIAL,
        history_enabled=True,
        history_interval=4,
    )
    config.update(overrides)
    store = XMLStore.open(StoreConfig(**config))
    root = store.load_document(
        "<doc>"
        + "".join(f"<item n='{i}'>t{i}</item>" for i in range(12))
        + "</doc>"
    )
    return store, root


class TestCapture:
    def test_interval_captures(self):
        store, root = _store(history_interval=4)
        for _ in range(8):
            store.read(root + 1)
        labels = [snap.label for snap in store.history.snapshots()]
        assert labels.count("interval") >= 2
        seqs = [snap.seq for snap in store.history.snapshots()]
        assert seqs == sorted(seqs)

    def test_first_capture_reports_cumulative_values(self):
        store, _ = _store()
        snapshot = store.history.capture(store, "manual")
        assert snapshot.delta(K_LOAD) == 1.0
        assert snapshot.operations >= 1
        assert snapshot.simulated_seconds == store.simulated_seconds

    def test_deltas_are_per_window(self):
        store, root = _store(history_interval=1000)
        store.history.capture(store, "baseline")
        for _ in range(3):
            store.read(root + 1)
        snapshot = store.history.capture(store, "after")
        assert snapshot.delta(K_READ) == 3.0
        assert snapshot.delta(K_LOAD) == 0.0  # consumed by the baseline row

    def test_checkpoint_captures_once_then_skips_idle(self):
        store, _ = _store(history_interval=1000)
        store.checkpoint()
        rows = len(store.history)
        assert rows >= 1
        assert store.history.snapshots()[-1].label == "checkpoint"
        store.checkpoint()  # nothing ran since: no new row
        assert len(store.history) == rows

    def test_wall_clock_keys_are_filtered(self):
        store, root = _store(telemetry_enabled=True, history_interval=1000)
        store.read(root + 1)
        snapshot = store.history.capture(store, "manual")
        wall = [k for k in snapshot.deltas if k.startswith("repro_span_seconds")]
        assert wall == []
        # the simulated-side span series is deterministic and survives
        assert any(
            k.startswith("repro_span_simulated_seconds")
            for k in snapshot.deltas
        )

    def test_partial_and_heat_sections(self):
        store, root = _store(heatmap_enabled=True)
        store.read(root + 1)
        store.read(root + 1)
        snapshot = store.history.capture(store, "manual")
        assert snapshot.partial_index is not None
        assert snapshot.partial_index["probes"] >= 1
        heat = snapshot.heatmap
        assert heat is not None
        assert heat["touches"] > 0
        assert 0.0 <= heat["top_decile_share"] <= 1.0
        assert heat["hot80_blocks"] <= heat["blocks_touched"]
        assert len(heat["top_blocks"]) <= 5

    def test_heatmap_none_when_disabled(self):
        store, _ = _store()
        snapshot = store.history.capture(store, "manual")
        assert snapshot.heatmap is None


class TestRetention:
    def test_overflow_merges_the_two_oldest_rows(self):
        store, root = _store(history_capacity=2, history_interval=1)
        for _ in range(5):
            store.read(root + 1)
        history = store.history
        assert len(history) == 2
        oldest = history.snapshots()[0]
        assert oldest.label == "compacted"
        assert oldest.merged >= 2
        assert history.compactions >= 1
        assert history.captures >= 4

    def test_merged_row_sums_deltas(self):
        history = WorkloadHistory(capacity=2)
        store, root = _store(history_interval=1000)
        history.capture(store, "one")  # cumulative baseline
        store.read(root + 1)
        history.capture(store, "two")
        store.read(root + 1)
        history.capture(store, "three")  # overflow: one+two merge
        assert len(history) == 2
        merged = history.snapshots()[0]
        # row one carried the load, row two one read: both survive the merge
        assert merged.delta(K_LOAD) == 1.0
        assert merged.delta(K_READ) == 1.0


class TestPersistence:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        store, root = _store(history_interval=1000, history_path=path)
        store.history.capture(store, "manual")
        store.read(root + 1)
        store.history.capture(store, "manual")
        rows = read_history(path)
        assert len(rows) == 2
        assert all(row["schema_version"] == 1 for row in rows)
        decoded = load_snapshots(path)
        assert [s.seq for s in decoded] == [0, 1]
        assert decoded[1].delta(K_READ) == 1.0

    def test_reopen_continues_the_sequence(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        store, _ = _store(history_interval=1000, history_path=path)
        store.history.capture(store, "manual")
        successor = WorkloadHistory(path=path)
        assert len(successor) == 1
        fresh_store, _ = _store(history_interval=1000)
        snapshot = successor.capture(fresh_store, "later")
        assert snapshot.seq == 1

    def test_compaction_rewrites_the_file(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        store, root = _store(
            history_capacity=2, history_interval=1, history_path=path
        )
        for _ in range(5):
            store.read(root + 1)
        rows = read_history(path)
        assert len(rows) == len(store.history) == 2
        assert rows[0]["label"] == "compacted"

    def test_read_history_rejects_unstamped_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(json.dumps({"seq": 0, "label": "x"}) + "\n")
        with pytest.raises(ObservabilityError, match="schema_version"):
            read_history(str(path))

    def test_read_history_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text('{"schema_version": 1}\nnot json\n')
        with pytest.raises(ObservabilityError, match="malformed"):
            read_history(str(path))

    def test_read_history_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            read_history(str(tmp_path / "absent.jsonl"))

    def test_from_dict_rejects_malformed_snapshots(self):
        with pytest.raises(ObservabilityError, match="malformed"):
            HistorySnapshot.from_dict({"seq": "zero"})


class TestNoopTwin:
    def test_create_history_picks_the_twin(self):
        assert create_history(False) is NOOP_HISTORY
        assert create_history(True).enabled

    def test_noop_records_nothing(self):
        store, _ = _store()
        assert NOOP_HISTORY.capture(store, "x") is None
        NOOP_HISTORY.observe(store, is_read=True)
        assert NOOP_HISTORY.snapshots() == []
        assert len(NOOP_HISTORY) == 0
        assert not hasattr(NoopHistory(), "__dict__")

    def test_disabled_store_uses_the_twin(self):
        store = XMLStore.open(StoreConfig())
        store.load_document("<r><a/></r>")
        assert store.history is NOOP_HISTORY
