"""Exporters: Prometheus golden text, JSONL round-trip, top view."""

import json

from repro.obs.exporters import (
    events_jsonl,
    prometheus_text,
    render_classic_summary,
    render_top,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    resolutions = registry.counter(
        "repro_locator_resolutions_total",
        "Node resolutions by path.",
        labelnames=("path",),
    )
    resolutions.labels(path="partial").inc(7)
    resolutions.labels(path="scan").inc(2)
    registry.gauge("repro_buffer_hit_rate", "Hit rate.").set(0.75)
    registry.histogram(
        "repro_span_seconds", "Span durations.", buckets=(0.001, 1.0)
    ).observe(0.5)
    return registry


class TestPrometheusGolden:
    def test_exact_text(self):
        text = prometheus_text(_sample_registry().collect())
        assert text == (
            "# HELP repro_locator_resolutions_total Node resolutions by path.\n"
            "# TYPE repro_locator_resolutions_total counter\n"
            'repro_locator_resolutions_total{path="partial"} 7\n'
            'repro_locator_resolutions_total{path="scan"} 2\n'
            "# HELP repro_buffer_hit_rate Hit rate.\n"
            "# TYPE repro_buffer_hit_rate gauge\n"
            "repro_buffer_hit_rate 0.75\n"
            "# HELP repro_span_seconds Span durations.\n"
            "# TYPE repro_span_seconds histogram\n"
            'repro_span_seconds_bucket{le="0.001"} 0\n'
            'repro_span_seconds_bucket{le="1"} 1\n'
            'repro_span_seconds_bucket{le="+Inf"} 1\n'
            "repro_span_seconds_sum 0.5\n"
            "repro_span_seconds_count 1\n"
        )

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("q",)).labels(q='say "hi"\n').inc()
        text = prometheus_text(registry.collect())
        assert 'q="say \\"hi\\"\\n"' in text

    def test_empty_collection(self):
        assert prometheus_text([]) == ""


class TestEventsJsonl:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer", node_id=5):
            with tracer.span("inner"):
                pass
        text = events_jsonl(tracer.events())
        lines = text.strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == ["inner", "outer"]
        outer = parsed[1]
        assert outer["fields"] == {"node_id": 5}
        assert parsed[0]["parent"] == outer["seq"]

    def test_empty(self):
        assert events_jsonl([]) == ""


class TestRenderTop:
    def test_ranks_spans_by_wall_time(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("slow"):
            sum(range(200_000))
        with tracer.span("fast"):
            pass
        text = render_top(registry.collect())
        slow_line = next(l for l in text.splitlines() if l.startswith("slow"))
        fast_line = next(l for l in text.splitlines() if l.startswith("fast"))
        assert text.index(slow_line) < text.index(fast_line)

    def test_includes_scalars(self):
        text = render_top(_sample_registry().collect())
        assert "repro_buffer_hit_rate" in text

    def test_empty(self):
        assert render_top([]) == "no telemetry recorded\n"


class TestClassicSummary:
    def test_matches_dataclass_summary(self):
        # built from a real store so every projection path is exercised
        from repro.core.store import XMLStore

        store = XMLStore()
        root = store.load_document("<a><b>x</b></a>")
        store.read(root + 1)
        store.insert_into_last(root, "<c/>")
        from repro.obs.bridge import stats_registry

        rendered = render_classic_summary(stats_registry(store.stats))
        assert rendered == store.stats.summary()
        assert rendered.startswith("operations: ")
        assert "partial index:" in rendered


class TestHistoryCounterExposition:
    """The workload-history series must carry HELP/TYPE metadata."""

    FAMILIES = (
        ("repro_history_captures_total", "counter"),
        ("repro_history_compactions_total", "counter"),
        ("repro_history_snapshots", "gauge"),
    )

    def _history_store(self, enabled=True):
        from repro.core.config import StoreConfig
        from repro.core.store import XMLStore

        store = XMLStore.open(
            StoreConfig(history_enabled=enabled, history_interval=2)
        )
        root = store.load_document("<r><a>x</a><b>y</b></r>")
        for _ in range(4):
            store.read(root + 1)
        return store

    def test_help_and_type_lines_present(self):
        from repro.obs.bridge import store_registry

        store = self._history_store()
        assert store.history.captures >= 1
        text = prometheus_text(store_registry(store).collect())
        for name, metric_type in self.FAMILIES:
            assert f"# HELP {name} " in text, name
            assert f"# TYPE {name} {metric_type}\n" in text, name
        assert (
            f"repro_history_captures_total {store.history.captures}" in text
        )
        assert f"repro_history_snapshots {len(store.history)}" in text

    def test_absent_when_history_disabled(self):
        from repro.obs.bridge import store_registry

        store = self._history_store(enabled=False)
        text = prometheus_text(store_registry(store).collect())
        for name, _ in self.FAMILIES:
            assert name not in text


class TestRecorderIncidentExposition:
    """The flight-recorder and incident counters must carry HELP/TYPE
    metadata, with incidents labelled by trigger kind."""

    FAMILIES = (
        ("repro_recorder_dropped_total", "counter"),
        ("repro_incidents_total", "counter"),
    )

    def _recorder_store(self, enabled=True):
        from repro.core.config import StoreConfig
        from repro.core.store import XMLStore

        store = XMLStore.open(
            StoreConfig(events_enabled=True, recorder_enabled=enabled)
        )
        store.load_document("<r><a>x</a><b>y</b></r>")
        return store

    def test_help_and_type_lines_present(self):
        from repro.errors import ChecksumError
        from repro.obs.bridge import store_registry

        store = self._recorder_store()
        store.pool.quarantine(99, ChecksumError("boom", block_no=99))
        text = prometheus_text(store_registry(store).collect())
        for name, metric_type in self.FAMILIES:
            assert f"# HELP {name} " in text, name
            assert f"# TYPE {name} {metric_type}\n" in text, name
        assert (
            'repro_incidents_total{kind="checksum-quarantine"} 1' in text
        )
        assert f"repro_recorder_dropped_total {store.recorder.dropped}" in text

    def test_absent_when_recorder_disabled(self):
        from repro.obs.bridge import store_registry

        store = self._recorder_store(enabled=False)
        text = prometheus_text(store_registry(store).collect())
        for name, _ in self.FAMILIES:
            assert name not in text


class TestStorageGaugeExposition:
    """WAL size, quarantine, and scrub recency must export with
    HELP/TYPE metadata unconditionally (they feed the alert rules)."""

    FAMILIES = (
        ("repro_wal_size_bytes", "gauge"),
        ("repro_storage_quarantined_blocks", "gauge"),
        ("repro_storage_scrub_completions_total", "counter"),
        ("repro_storage_scrub_age_operations", "gauge"),
    )

    def _store(self):
        from repro.core.config import StoreConfig
        from repro.core.store import XMLStore

        store = XMLStore.open(StoreConfig())
        root = store.load_document("<r><a>x</a><b>y</b></r>")
        store.read(root + 1)
        return store

    def test_help_and_type_lines_present_on_a_plain_store(self):
        from repro.obs.bridge import store_registry

        text = prometheus_text(store_registry(self._store()).collect())
        for name, metric_type in self.FAMILIES:
            assert f"# HELP {name} " in text, name
            assert f"# TYPE {name} {metric_type}\n" in text, name

    def test_never_scrubbed_age_reads_minus_one(self):
        from repro.obs.bridge import store_registry

        text = prometheus_text(store_registry(self._store()).collect())
        assert "repro_storage_quarantined_blocks 0\n" in text
        assert "repro_storage_scrub_completions_total 0\n" in text
        assert "repro_storage_scrub_age_operations -1\n" in text

    def test_quarantine_and_scrub_move_the_gauges(self):
        from repro.errors import ChecksumError
        from repro.obs.bridge import store_registry
        from repro.storage.scrub import scrub_store

        store = self._store()
        scrub_store(store)
        store.pool.quarantine(0, ChecksumError("bad", block_no=0))
        text = prometheus_text(store_registry(store).collect())
        assert "repro_storage_quarantined_blocks 1\n" in text
        assert "repro_storage_scrub_completions_total 1\n" in text
        assert "repro_storage_scrub_age_operations 0\n" in text

    def test_wal_size_tracks_appended_records(self):
        from repro.obs.bridge import store_registry
        from repro.obs.metrics import sample_key

        store = self._store()
        values = {
            sample_key(sample): sample.value
            for family in store_registry(store).collect()
            for sample in family.samples
        }
        assert values["repro_wal_size_bytes"] > 0
        assert values["repro_wal_size_bytes"] == float(store.wal.size_bytes)


class TestPrometheusEdgeCases:
    def test_backslash_escaped_before_quotes_and_newlines(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("p",)).labels(p='a\\b"c\nd').inc()
        text = prometheus_text(registry.collect())
        # exposition-format escaping: \ -> \\, " -> \", newline -> \n
        assert 'p="a\\\\b\\"c\\nd"' in text

    def test_backslash_alone(self):
        registry = MetricsRegistry()
        registry.gauge("g", labelnames=("path",)).labels(path="C:\\tmp").set(1)
        assert 'path="C:\\\\tmp"' in prometheus_text(registry.collect())

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry().collect()) == ""

    def test_histogram_value_exactly_on_bucket_edge(self):
        # a value equal to a bucket bound belongs IN that le bucket
        # (le is <=, and observe uses bisect_left)
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.001, 1.0))
        histogram.observe(0.001)
        text = prometheus_text(registry.collect())
        assert 'h_bucket{le="0.001"} 1' in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 0.001" in text
        assert "h_count 1" in text

    def test_histogram_value_on_top_edge(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.001, 1.0))
        histogram.observe(1.0)
        text = prometheus_text(registry.collect())
        assert 'h_bucket{le="0.001"} 0' in text
        assert 'h_bucket{le="1"} 1' in text

    def test_histogram_value_beyond_top_edge_only_in_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.001, 1.0))
        histogram.observe(2.0)
        text = prometheus_text(registry.collect())
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="+Inf"} 1' in text
