"""Block heatmap: counters, reports, and the no-op twin."""

import json

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.obs.heatmap import (
    BlockHeatmap,
    NOOP_HEATMAP,
    NoopHeatmap,
    create_heatmap,
    heatmap_json,
    heatmap_report,
    render_heatmap,
)


def _store(policy=IndexingPolicy.RANGE_PLUS_PARTIAL) -> XMLStore:
    store = XMLStore.open(
        StoreConfig(policy=policy, events_enabled=True, heatmap_enabled=True)
    )
    store.load_document(
        "<doc>" + "".join(f"<item n='{i}'>t{i}</item>" for i in range(30)) + "</doc>"
    )
    return store


class TestBlockHeatmap:
    def test_fetch_hit_vs_miss(self):
        heatmap = BlockHeatmap()
        heatmap.record_fetch(7, hit=False)
        heatmap.record_fetch(7, hit=True)
        heat = heatmap.counts()[7]
        assert heat.fetches == 2
        assert heat.misses == 1
        assert heat.touches == 2

    def test_writes(self):
        heatmap = BlockHeatmap()
        heatmap.record_write(3)
        heat = heatmap.counts()[3]
        assert heat.writes == 1
        assert heat.fetches == 0

    def test_len_and_clear(self):
        heatmap = BlockHeatmap()
        heatmap.record_fetch(1, hit=True)
        heatmap.record_write(2)
        assert len(heatmap) == 2
        heatmap.clear()
        assert len(heatmap) == 0

    def test_noop_twin(self):
        assert create_heatmap(False) is NOOP_HEATMAP
        assert create_heatmap(True).enabled
        NOOP_HEATMAP.record_fetch(1, hit=True)
        NOOP_HEATMAP.record_write(1)
        assert NOOP_HEATMAP.counts() == {}
        assert len(NOOP_HEATMAP) == 0
        assert not hasattr(NoopHeatmap(), "__dict__")


class TestStoreHeatmap:
    def test_buffer_pool_records_accesses(self):
        store = _store()
        store.pool.flush_all()
        store.pool.drop_all()
        store.read(5)
        counts = store.heatmap.counts()
        assert counts, "cold reads must touch blocks"
        assert any(h.misses > 0 for h in counts.values())

    def test_disabled_store_records_nothing(self):
        store = XMLStore.open(StoreConfig())
        store.load_document("<r><a/></r>")
        assert store.heatmap is NOOP_HEATMAP
        assert store.heatmap.counts() == {}


class TestReports:
    def test_report_classifies_data_and_index_blocks(self):
        store = _store()
        store.read()
        report = heatmap_report(store)
        kinds = {row["kind"] for row in report["blocks"]}
        assert "data" in kinds
        assert "index" in kinds  # range-index B+-tree pages
        assert report["blocks_touched"] == len(store.heatmap.counts())

    def test_range_rows_aggregate_block_counts(self):
        store = _store()
        store.read()
        report = heatmap_report(store)
        assert report["ranges"]
        row = report["ranges"][0]
        assert row["fetches"] > 0
        assert row["blocks"] >= 1

    def test_partial_efficacy_section(self):
        store = _store()
        store.read(5)
        store.read(5)  # second read hits the memoized location
        report = heatmap_report(store)
        partial = report["partial_index"]
        assert partial["hits"] >= 1
        assert partial["est_tokens_avoided"] > 0

    def test_no_partial_index_under_full_policy(self):
        store = _store(policy=IndexingPolicy.FULL)
        report = heatmap_report(store)
        assert report["partial_index"] is None
        assert "(policy maintains no partial index)" in render_heatmap(store)

    def test_top_limits_rows(self):
        store = _store()
        store.read()
        report = heatmap_report(store, top=1)
        assert len(report["blocks"]) <= 1
        assert len(report["ranges"]) <= 1

    def test_data_blocks_join_back_to_live_ranges(self):
        store = _store()
        store.read()
        report = heatmap_report(store, top=1000)
        live = {meta.range_id for meta in store.ranges.in_order()}
        data_rows = [r for r in report["blocks"] if r["kind"] == "data"]
        assert data_rows
        for row in data_rows:
            assert row["ranges"]
            assert set(row["ranges"]) <= live

    def test_range_rows_equal_the_block_join(self):
        # a range row must be exactly the sum of its blocks' heat
        store = _store()
        store.read(5)
        store.read()
        counts = store.heatmap.counts()
        report = heatmap_report(store, top=1000)
        assert report["ranges"]
        for row in report["ranges"]:
            blocks = store.ranges.blocks_of(row["range_id"])
            assert row["blocks"] == len(blocks)
            for field in ("fetches", "misses", "writes"):
                joined = sum(
                    getattr(counts[b], field) for b in blocks if b in counts
                )
                assert row[field] == joined, (row["range_id"], field)

    def test_join_survives_range_splits(self):
        # granular cap so the bulk load splits ranges many times; the
        # join must still resolve every block to a live range
        store = XMLStore.open(
            StoreConfig(
                policy=IndexingPolicy.RANGE,
                max_range_tokens=32,
                heatmap_enabled=True,
            )
        )
        store.load_document(
            "<doc>"
            + "".join(f"<item n='{i}'>t{i}</item>" for i in range(60))
            + "</doc>"
        )
        assert len(store.ranges) > 1  # splits actually happened
        store.read()
        report = heatmap_report(store, top=1000)
        live = {meta.range_id for meta in store.ranges.in_order()}
        assert {row["range_id"] for row in report["ranges"]} <= live
        touched_ranges = {
            range_id
            for row in report["blocks"]
            for range_id in row["ranges"]
        }
        assert touched_ranges <= live
        # the scan touched every range of the document
        assert {row["range_id"] for row in report["ranges"]} == live

    def test_render_and_json(self):
        store = _store()
        store.read(5)
        text = render_heatmap(store, top=3)
        assert "hottest blocks (top 3)" in text
        assert "partial-index efficacy" in text
        payload = json.loads(heatmap_json(store))
        assert set(payload) == {
            "blocks",
            "blocks_touched",
            "partial_index",
            "ranges",
            "schema_version",
        }
        assert payload["schema_version"] == 1
