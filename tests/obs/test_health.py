"""The composite health verdict (repro.obs.health) and its CLI exit codes."""

import io
import json
import os

import pytest

from repro.cli import run
from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ChecksumError, StoreCorruptError, StoreDegradedError
from repro.obs.health import (
    DEGRADED,
    HEALTHY,
    UNHEALTHY,
    HealthReport,
    health_report,
)
from repro.storage.scrub import scrub_store


def _store(**config):
    store = XMLStore.open(StoreConfig(**config))
    root = store.load_document("<r><a>x</a><b>y</b></r>")
    store.read(root + 1)
    return store


def _component(report, name):
    return next(c for c in report.components if c.name == name)


class TestVerdicts:
    def test_clean_store_is_healthy(self):
        report = health_report(_store())
        assert report.verdict == HEALTHY
        assert report.exit_code == 0
        assert report.failed() == []
        names = [c.name for c in report.components]
        assert names == [
            "integrity", "quarantine", "checksum-errors", "repair",
            "scrub", "wal", "drift", "slo", "replication",
        ]

    def test_quarantine_makes_the_store_unhealthy(self):
        store = _store()
        store.pool.quarantine(0, ChecksumError("bad", block_no=0))
        report = health_report(store)
        assert report.verdict == UNHEALTHY
        assert report.exit_code == 2
        assert _component(report, "quarantine").status == UNHEALTHY
        assert 0 in _component(report, "quarantine").detail["blocks"]

    def test_checksum_errors_degrade(self):
        store = _store()
        store.stats.buffer.checksum_errors += 1
        report = health_report(store)
        assert _component(report, "checksum-errors").status == DEGRADED
        assert report.verdict == DEGRADED
        assert report.exit_code == 1

    def test_repair_sidecar_degrades(self, tmp_path):
        from repro.core.repair import SIDECAR_FILE

        (tmp_path / SIDECAR_FILE).write_text(
            json.dumps({"mode": "salvage", "lost_operations": 3})
        )
        report = health_report(_store(), store_path=str(tmp_path))
        component = _component(report, "repair")
        assert component.status == DEGRADED
        assert component.detail["lost"] == 3

    def test_in_memory_store_has_no_sidecar_check(self):
        component = _component(health_report(_store()), "repair")
        assert component.status == HEALTHY
        assert "in-memory" in component.summary

    def test_scrub_recency(self):
        # young store, never scrubbed: healthy
        report = health_report(_store())
        assert _component(report, "scrub").status == HEALTHY
        # old store, never scrubbed: overdue (each scenario gets a fresh
        # store — polling health itself scrubs, via the integrity walk)
        overdue = health_report(_store(), scrub_overdue_operations=1)
        assert _component(overdue, "scrub").status == DEGRADED
        # freshly scrubbed: healthy even against a tight bound
        store = _store()
        scrub_store(store)
        fresh = health_report(store, scrub_overdue_operations=1)
        assert _component(fresh, "scrub").status == HEALTHY
        # and ageing past the bound degrades once more
        store.read(2)
        store.read(2)
        aged = health_report(store, scrub_overdue_operations=1)
        assert _component(aged, "scrub").status == DEGRADED

    def test_scrub_not_applicable_without_checksums(self):
        store = _store(checksums_enabled=False)
        report = health_report(store, scrub_overdue_operations=1)
        component = _component(report, "scrub")
        assert component.status == HEALTHY
        assert "not applicable" in component.summary

    def test_wal_backlog_degrades(self):
        store = _store()
        report = health_report(store, wal_pending_bound=0)
        component = _component(report, "wal")
        assert component.status == DEGRADED
        assert component.detail["pending_records"] > 0
        store.checkpoint()
        after = health_report(store, wal_pending_bound=0)
        assert _component(after, "wal").status == HEALTHY

    def test_drift_disabled_without_history(self):
        component = _component(health_report(_store()), "drift")
        assert component.status == HEALTHY
        assert "disabled" in component.summary

    def test_slo_component_reads_the_simulated_axis(self):
        store = _store(telemetry_enabled=True, alerts_enabled=True)
        component = _component(health_report(store), "slo")
        assert component.status == HEALTHY
        statuses = component.detail["statuses"]
        assert statuses
        assert all(s["axis"] == "simulated" for s in statuses)


class TestReportShape:
    def test_to_dict_is_stamped(self):
        payload = health_report(_store()).to_dict()
        assert payload["schema_version"] == 1
        assert payload["verdict"] == HEALTHY
        assert payload["exit_code"] == 0
        assert len(payload["components"]) == 9

    def test_render_lists_components_with_markers(self):
        store = _store()
        store.stats.buffer.checksum_errors += 1
        text = health_report(store).render()
        assert text.startswith("health: degraded (exit 1)")
        assert "[  ok] integrity:" in text
        assert "[WARN] checksum-errors:" in text

    def test_verdict_is_the_worst_component(self):
        from repro.obs.health import HealthComponent

        report = HealthReport(components=[
            HealthComponent("a", HEALTHY, "s"),
            HealthComponent("b", UNHEALTHY, "s"),
            HealthComponent("c", DEGRADED, "s"),
        ])
        assert report.verdict == UNHEALTHY
        assert report.exit_code == 2
        assert [c.name for c in report.failed()] == ["b", "c"]

    def test_identical_stores_report_identically(self):
        def capture():
            return health_report(
                _store(telemetry_enabled=True, alerts_enabled=True)
            ).to_dict()

        assert capture() == capture()


class TestHealthCLI:
    """The acceptance path: exit 0 / 1 / 2 on clean / degraded / corrupt."""

    def _build_store(self, store_dir, orders=6):
        run([store_dir, "load", "-"], stdin=io.StringIO("<r/>"))
        for index in range(orders):
            run([store_dir, "insert-last", "1", f"<e n='{index}'>t{index}</e>"])

    def _corrupt_chain_block(self, store_dir):
        from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
        from repro.storage.disk import FileBlockDevice

        config = StoreConfig()
        with open(os.path.join(store_dir, CATALOG_FILE), "rb") as handle:
            catalog = handle.read()
        device = FileBlockDevice(
            os.path.join(store_dir, DEVICE_FILE), block_size=config.page_size
        )
        store = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        victim = next(iter(store.layout.chain.blocks()))
        image = bytearray(device.read_block(victim))
        image[-1] ^= 0x33
        device.write_block(victim, bytes(image))
        device.close()

    def test_clean_store_exits_zero(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._build_store(store_dir)
        out = run([store_dir, "health"])
        assert out.startswith("health: healthy (exit 0)")

    def test_degraded_sidecar_exits_one(self, tmp_path):
        from repro.core.repair import SIDECAR_FILE

        store_dir = str(tmp_path / "store")
        self._build_store(store_dir)
        with open(os.path.join(store_dir, SIDECAR_FILE), "w") as handle:
            json.dump({"mode": "salvage", "lost_operations": 2}, handle)
        with pytest.raises(StoreDegradedError) as excinfo:
            run([store_dir, "health"])
        assert excinfo.value.exit_code == 1

    def test_corrupt_store_exits_two(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._build_store(store_dir)
        self._corrupt_chain_block(store_dir)
        with pytest.raises(StoreCorruptError) as excinfo:
            run([store_dir, "health"])
        assert excinfo.value.exit_code == 2

    def test_health_json_is_delivered_before_the_failure(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._build_store(store_dir)
        self._corrupt_chain_block(store_dir)
        target = tmp_path / "health.json"
        with pytest.raises(StoreCorruptError):
            run([store_dir, "health", "--json", "--output", str(target)])
        payload = json.loads(target.read_text())
        assert payload["verdict"] == "unhealthy"
        assert payload["exit_code"] == 2

    def test_exit_codes_documented_in_help(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        with pytest.raises(SystemExit):
            run([store_dir, "health", "--help"])
        out = capsys.readouterr().out
        assert "0 = healthy" in out
        assert "2 = unhealthy" in out
