"""The clock lint: src/repro must read wall time via repro.obs.clock."""

import os

from repro.obs.clock import check_clock_discipline, perf_seconds


def _src_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, "..", "..", "src", "repro")


def test_repo_is_clean():
    assert check_clock_discipline(_src_root()) == []


def test_perf_seconds_is_monotonic():
    first = perf_seconds()
    second = perf_seconds()
    assert second >= first


def test_lint_catches_violations(tmp_path):
    bad = tmp_path / "offender.py"
    bad.write_text("import time\n\nnow = time.time()\n")
    nested = tmp_path / "sub"
    nested.mkdir()
    (nested / "sneaky.py").write_text("from time import sleep\n")
    clean = tmp_path / "fine.py"
    clean.write_text("from repro.obs.clock import perf_seconds\n")
    violations = check_clock_discipline(str(tmp_path))
    assert len(violations) == 2
    assert any("offender.py:1" in v for v in violations)
    assert any("sneaky.py:1" in v for v in violations)


def test_lint_allowlists_the_clock_module(tmp_path):
    obs = tmp_path / "obs"
    obs.mkdir()
    (obs / "clock.py").write_text("import time as _time\n")
    assert check_clock_discipline(str(tmp_path)) == []


def test_lint_allowlists_the_stack_sampler(tmp_path):
    """obs/sampler.py is the one sanctioned wall-clock consumer besides
    the clock module itself (sampling *is* wall-clock work)."""
    obs = tmp_path / "obs"
    obs.mkdir()
    (obs / "sampler.py").write_text("import time as _time\n")
    assert check_clock_discipline(str(tmp_path)) == []


def test_allowlist_matches_the_exact_path_only(tmp_path):
    obs = tmp_path / "obs"
    obs.mkdir()
    # same filename, wrong directory: not allowlisted
    (tmp_path / "sampler.py").write_text("import time\n")
    # same directory, different filename: not allowlisted
    (obs / "sampler2.py").write_text("import time\n")
    violations = check_clock_discipline(str(tmp_path))
    assert len(violations) == 2


def test_lint_catches_time_time_calls_mid_file(tmp_path):
    (tmp_path / "late.py").write_text(
        "x = 1\n\n\ndef stamp():\n    return time.time()\n"
    )
    violations = check_clock_discipline(str(tmp_path))
    assert len(violations) == 1
    assert "late.py:5" in violations[0]
