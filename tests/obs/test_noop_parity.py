"""Every zero-cost twin must mirror its live object's public surface.

The hot path only checks ``.enabled`` — it never type-checks — so a
live-object method missing from the twin is a latent AttributeError
that only fires with the subsystem disabled (the configuration the
benchmarks run in).  This suite pins the parity for the alert and SLO
twins introduced with the operational-observability layer, plus the
older history twin they follow.
"""

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.obs.alerts import NOOP_ALERTS, AlertEngine, AlertView
from repro.obs.history import NOOP_HISTORY, WorkloadHistory
from repro.obs.incident import NOOP_INCIDENTS, IncidentManager
from repro.obs.recorder import NOOP_RECORDER, FlightRecorder
from repro.obs.slo import NOOP_SLO, SLOTracker


def _public_surface(obj):
    return {name for name in dir(obj) if not name.startswith("_")}


PAIRS = [
    pytest.param(AlertEngine(), NOOP_ALERTS, id="alerts"),
    pytest.param(SLOTracker(), NOOP_SLO, id="slo"),
    pytest.param(WorkloadHistory(), NOOP_HISTORY, id="history"),
    pytest.param(FlightRecorder(), NOOP_RECORDER, id="recorder"),
    pytest.param(IncidentManager(), NOOP_INCIDENTS, id="incidents"),
]


class TestSurfaceParity:
    @pytest.mark.parametrize("live, noop", PAIRS)
    def test_noop_exposes_every_public_member(self, live, noop):
        missing = _public_surface(live) - _public_surface(noop)
        assert not missing, f"noop twin lacks {sorted(missing)}"

    @pytest.mark.parametrize("live, noop", PAIRS)
    def test_noop_has_no_extra_members(self, live, noop):
        extra = _public_surface(noop) - _public_surface(live)
        assert not extra, f"noop twin grew {sorted(extra)}"

    @pytest.mark.parametrize("live, noop", PAIRS)
    def test_enabled_flags(self, live, noop):
        assert live.enabled is True
        assert noop.enabled is False

    @pytest.mark.parametrize("live, noop", PAIRS)
    def test_noop_is_slotted(self, live, noop):
        # the twins are shared singletons: no per-instance dict to mutate
        assert not hasattr(noop, "__dict__")


class TestNoopBehaviour:
    """The twins' reads are empty and their writes are no-ops."""

    def _store(self):
        store = XMLStore.open(StoreConfig())
        store.load_document("<r><a>x</a></r>")
        return store

    def test_alert_twin_never_records(self):
        store = self._store()
        NOOP_ALERTS.observe(store)
        assert NOOP_ALERTS.evaluate_store(store, "test") == []
        assert NOOP_ALERTS.evaluate(AlertView(values={"m": 1.0})) == []
        assert NOOP_ALERTS.active() == []
        assert NOOP_ALERTS.events() == []
        assert NOOP_ALERTS.worst_active_severity() is None
        assert len(NOOP_ALERTS) == 0
        assert NOOP_ALERTS.evaluations == 0
        assert NOOP_ALERTS.rules == ()

    def test_slo_twin_never_evaluates(self):
        store = self._store()
        assert NOOP_SLO.evaluate(store).statuses == []
        assert NOOP_SLO.budget_floor(store) == 1.0
        assert NOOP_SLO.families(store) == []
        assert NOOP_SLO.targets == ()

    def test_recorder_twin_never_records(self):
        store = self._store()
        NOOP_RECORDER.observe(store)
        NOOP_RECORDER.record("event", "test", "test", 0.0, {})
        NOOP_RECORDER.frame(store, "test")
        assert NOOP_RECORDER.entries() == []
        assert len(NOOP_RECORDER) == 0
        assert NOOP_RECORDER.dropped == 0
        assert NOOP_RECORDER.to_dict()["entries"] == []

    def test_incident_twin_never_triggers(self, tmp_path):
        NOOP_INCIDENTS.attach(self._store())
        assert (
            NOOP_INCIDENTS.trigger("checksum-quarantine", key="7") is None
        )
        assert NOOP_INCIDENTS.incidents() == []
        assert len(NOOP_INCIDENTS) == 0
        assert NOOP_INCIDENTS.counts == {}
        assert NOOP_INCIDENTS.suppressed == 0

    def test_default_store_wires_the_twins(self):
        store = self._store()
        assert store.alerts is NOOP_ALERTS
        assert store.slo is NOOP_SLO
        assert store.recorder is NOOP_RECORDER
        assert store.incidents is NOOP_INCIDENTS
