"""Cost-model calibration: the wall-vs-simulated consistency gate."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.calibration import (
    DEFAULT_SPREAD_LIMIT,
    CalibrationCell,
    calibration_cells,
    calibration_report,
    check_calibration,
    component_cells,
    render_calibration,
)


def _payload(skew=None):
    """A synthetic Table-5 payload whose wall/sim ratios sit near 2.0
    (within a 2x band); ``skew={(approach_index, phase): factor}``
    multiplies selected cells' wall time."""
    approaches = (
        "Full Index (max. granularity)",
        "Range Index (few, coarse, large entries)",
        "Range Index (coarse) + Partial Index (memory)",
    )
    base = {"insert": 0.5, "seq_scan": 0.1, "random_reads": 0.25}
    payload = []
    for index, approach in enumerate(approaches):
        entry = {"approach": approach}
        for phase, simulated in base.items():
            wall = simulated * (2.0 + 0.2 * index)
            factor = (skew or {}).get((index, phase), 1.0)
            entry[phase] = {
                "simulated_seconds": simulated,
                "wall_seconds": wall * factor,
                "kb_per_second": 100.0,
            }
        payload.append(entry)
    return payload


class TestCells:
    def test_extracts_every_cell_with_ratio_and_spread(self):
        cells = calibration_cells(_payload())
        assert len(cells) == 9
        first = cells[0]
        assert first.approach == "Full Index (max. granularity)"
        assert first.phase == "insert"
        assert first.ratio == pytest.approx(2.0)
        # spreads are normalized against the run's own median ratio
        spreads = sorted(cell.spread for cell in cells)
        assert spreads[len(spreads) // 2] == pytest.approx(1.0)

    def test_non_positive_clock_rejected(self):
        payload = _payload()
        payload[0]["insert"]["simulated_seconds"] = 0.0
        with pytest.raises(ObservabilityError, match="non-positive clock"):
            calibration_cells(payload)
        payload = _payload()
        payload[1]["seq_scan"]["wall_seconds"] = -1.0
        with pytest.raises(ObservabilityError, match="non-positive clock"):
            calibration_cells(payload)

    def test_malformed_row_rejected(self):
        payload = _payload()
        del payload[0]["insert"]["wall_seconds"]
        with pytest.raises(ObservabilityError, match="malformed"):
            calibration_cells(payload)

    def test_empty_payload_rejected(self):
        with pytest.raises(ObservabilityError, match="no Table-5 cells"):
            calibration_cells([])

    def test_to_dict(self):
        cell = calibration_cells(_payload())[0]
        payload = cell.to_dict()
        assert payload["ratio"] == cell.ratio
        assert payload["spread"] == cell.spread


class TestCheck:
    def test_consistent_ratios_pass(self):
        cells = calibration_cells(_payload())
        assert check_calibration(cells) == []

    def test_uncharged_work_is_flagged(self):
        # one cell burns 1000x more wall time than the model charges —
        # the signature of a code path the simulated clock never sees
        cells = calibration_cells(_payload(skew={(2, "insert"): 1000.0}))
        violations = check_calibration(cells)
        assert len(violations) == 1
        assert "Partial Index" in violations[0]
        assert "insert" in violations[0]

    def test_overcharged_work_is_flagged_too(self):
        cells = calibration_cells(_payload(skew={(0, "seq_scan"): 1 / 1000.0}))
        violations = check_calibration(cells)
        assert len(violations) == 1
        assert "seq_scan" in violations[0]

    def test_limit_tightens_the_gate(self):
        cells = calibration_cells(_payload(skew={(1, "random_reads"): 5.0}))
        assert check_calibration(cells, limit=DEFAULT_SPREAD_LIMIT) == []
        assert len(check_calibration(cells, limit=2.0)) == 1

    def test_limit_must_exceed_one(self):
        cells = [CalibrationCell("a", "insert", 1.0, 2.0, 2.0, spread=1.0)]
        for bad in (1.0, 0.5, -3.0):
            with pytest.raises(ObservabilityError):
                check_calibration(cells, limit=bad)


class TestComponentCells:
    def test_joins_profiled_components(self):
        payload = _payload()
        payload[0]["insert"]["profile"] = {
            "components": [
                {
                    "component": "token-replay",
                    "simulated_seconds": 0.01,
                    "wall_seconds": 0.02,
                },
                {
                    "component": "token-emit",
                    "simulated_seconds": 0.03,
                    "wall_seconds": None,  # no span coverage: skipped
                },
            ]
        }
        cells = component_cells(payload)
        assert len(cells) == 1
        assert cells[0]["component"] == "token-replay"
        assert cells[0]["phase"] == "insert"

    def test_unprofiled_rows_contribute_nothing(self):
        assert component_cells(_payload()) == []


class TestReportAndRender:
    def test_report_shape(self):
        report = calibration_report(_payload())
        assert report["spread_limit"] == DEFAULT_SPREAD_LIMIT
        assert len(report["cells"]) == 9
        assert report["violations"] == []
        assert report["median_ratio"] > 0

    def test_render_calibrated(self):
        text = render_calibration(_payload())
        assert "Cost-model calibration" in text
        assert "calibrated: all ratios within" in text

    def test_render_lists_violations(self):
        text = render_calibration(_payload(skew={(2, "insert"): 1000.0}))
        assert "violations:" in text
        assert "Partial Index" in text
