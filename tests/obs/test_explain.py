"""EXPLAIN layer: access-path attribution per operation."""

import json

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.errors import InvalidOperationError, NodeNotFoundError
from repro.obs.explain import (
    EXPLAINABLE_OPS,
    ExplainRecorder,
    explain_operation,
    run_operation,
)


def _store(policy=IndexingPolicy.RANGE_PLUS_PARTIAL) -> XMLStore:
    store = XMLStore.open(
        StoreConfig(
            policy=policy, telemetry_enabled=True, events_enabled=True,
            heatmap_enabled=True,
        )
    )
    store.load_document(
        "<doc>" + "".join(f"<item n='{i}'>t{i}</item>" for i in range(30)) + "</doc>"
    )
    return store


class TestAccessPathAttribution:
    def test_same_xpath_twice_miss_then_partial_hit(self):
        """Acceptance: the report distinguishes a partial-index hit from
        a miss on the very same query run twice."""
        store = _store()
        query = "/doc/item[@n='11']"
        first = explain_operation(store, "xpath", [query])
        second = explain_operation(store, "xpath", [query])
        # run 1: the partial index has never seen the node, so serializing
        # the match resolves by range scan (and memoizes the location)
        assert first.access_path == "range-scan"
        assert first.resolutions["scan"] > 0
        assert first.resolutions["partial"] == 0
        assert first.partial["misses"] > 0
        assert first.ranges_scanned, "the scanned interval must be attributed"
        # run 2: identical query, but now the memoized location hits
        assert second.access_path == "partial-hit"
        assert second.resolutions["partial"] > 0
        assert second.resolutions["scan"] == 0
        assert second.partial["hits"] > 0
        assert second.partial["misses"] == 0
        # and the hit shows up as cost: no tokens replayed for the locate
        assert second.tokens_replayed < first.tokens_replayed

    def test_full_index_probe_path(self):
        store = _store(policy=IndexingPolicy.FULL)
        report = explain_operation(store, "read", ["5"])
        assert report.access_path == "full-probe"
        assert report.resolutions["full"] > 0
        assert report.partial is None  # FULL policy keeps no partial index

    def test_read_report_counts_tokens_and_blocks(self):
        store = _store()
        store.pool.flush_all()
        store.pool.drop_all()  # cold cache so blocks_read is non-zero
        report = explain_operation(store, "read", ["5"])
        assert report.operation == "read"
        assert report.tokens_emitted > 0
        assert report.tokens_replayed > 0
        assert report.blocks_read > 0
        assert report.buffer_misses > 0
        assert report.simulated_seconds > 0

    def test_insert_pays_wal_appends(self):
        store = _store()
        report = explain_operation(store, "insert-last", ["1", "<item>new</item>"])
        assert report.wal_appends >= 1
        assert "inserted" in report.result

    def test_events_scoped_to_the_operation(self):
        store = _store()
        explain_operation(store, "read", ["5"])  # emits events outside window
        report = explain_operation(store, "read", ["8"])
        assert report.events
        assert all(e.op_id == report.op_id for e in report.events)


class TestReportShape:
    def test_render_mentions_the_essentials(self):
        store = _store()
        report = explain_operation(store, "xpath", ["/doc/item[@n='3']"])
        text = report.render()
        assert "EXPLAIN xpath" in text
        assert "access path:" in text
        assert "tokens: replayed=" in text
        assert "blocks: read=" in text
        assert "wal:" in text

    def test_to_dict_is_json_ready(self):
        store = _store()
        report = explain_operation(store, "read", ["5"])
        payload = json.loads(json.dumps(report.to_dict(), default=str))
        assert payload["operation"] == "read"
        assert isinstance(payload["events"], list)

    def test_to_dict_can_compact_events(self):
        store = _store()
        report = explain_operation(store, "read", ["5"])
        compact = report.to_dict(include_events=False)
        assert compact["events"] == len(report.events)

    def test_stage_breakdown_covers_spans(self):
        store = _store()
        report = explain_operation(store, "read", ["5"])
        stages = {stage["stage"] for stage in report.stages}
        assert "node_read" in stages


class TestOperationDispatch:
    def test_every_explainable_op_runs(self):
        store = _store()
        run_operation(store, "read", [])
        run_operation(store, "xpath", ["/doc"])
        run_operation(store, "insert-last", ["1", "<x/>"])
        run_operation(store, "insert-before", ["2", "<y/>"])
        run_operation(store, "insert-after", ["2", "<z/>"])
        out = run_operation(store, "replace", ["2", "<w/>"])
        new_id = int(out.rsplit("=", 1)[1])  # replacement got a fresh id
        run_operation(store, "delete", [str(new_id)])

    def test_unknown_operation_rejected(self):
        store = _store()
        with pytest.raises(InvalidOperationError):
            run_operation(store, "compact", [])

    def test_bad_arguments_rejected(self):
        store = _store()
        with pytest.raises(InvalidOperationError):
            run_operation(store, "delete", [])
        with pytest.raises(InvalidOperationError):
            run_operation(store, "delete", ["not-a-number"])
        with pytest.raises(InvalidOperationError):
            run_operation(store, "insert-last", ["1"])

    def test_explainable_ops_is_the_contract(self):
        assert "xpath" in EXPLAINABLE_OPS
        assert "read" in EXPLAINABLE_OPS


class TestRecorder:
    def test_failed_operation_produces_no_report(self):
        store = _store()
        recorder = ExplainRecorder(store, "read", ["99999"])
        with pytest.raises(NodeNotFoundError):
            with recorder:
                store.read(99999)
        assert recorder.report is None

    def test_recorder_closes_op_window_on_failure(self):
        store = _store()
        try:
            with ExplainRecorder(store, "read", ["99999"]):
                store.read(99999)
        except NodeNotFoundError:
            pass
        event = store.event_log.emit("test", "after")
        assert event.op_id is None

    def test_works_without_partial_index(self):
        store = _store(policy=IndexingPolicy.RANGE)
        report = explain_operation(store, "read", ["5"])
        assert report.partial is None
        assert report.access_path == "range-scan"


class TestFaultAttribution:
    """EXPLAIN attributes fault-layer events (torn writes, sync barriers,
    crashes) emitted inside the operation window."""

    def _faulty_store(self):
        from repro.storage.disk import MemoryBlockDevice
        from repro.storage.faults import FaultConfig, build_fault_harness

        config = StoreConfig(telemetry_enabled=True, events_enabled=True)
        harness = build_fault_harness(
            FaultConfig(seed=0),
            MemoryBlockDevice(block_size=config.page_size),
            cost_model=config.cost_model,
        )
        store = XMLStore.open(config, device=harness.device)
        root = store.load_document("<r/>")
        for index in range(10):
            store.insert_into_last(root, f"<e n='{index}'/>")
        return store

    def test_checkpoint_sync_barrier_is_attributed(self):
        store = self._faulty_store()
        with ExplainRecorder(store, "checkpoint") as recorder:
            store.checkpoint()
        report = recorder.report
        assert any(
            f["source"] == "fault" and f["kind"] == "sync" for f in report.faults
        )
        assert "fault: sync" in report.render()
        payload = json.loads(json.dumps(report.to_dict(), default=str))
        assert payload["faults"]

    def test_plain_operations_report_no_faults(self):
        store = _store()
        report = explain_operation(store, "read", ["5"])
        assert report.faults == []
        assert report.to_dict()["faults"] == []
