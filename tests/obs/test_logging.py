"""The repro.* logger hierarchy (repro.log)."""

import io
import logging

from repro.log import ROOT_LOGGER_NAME, get_logger, install_handler, remove_handler


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("storage.wal").name == "repro.storage.wal"

    def test_bare_name_is_the_root(self):
        assert get_logger().name == ROOT_LOGGER_NAME

    def test_already_prefixed_name_not_doubled(self):
        assert get_logger("repro.core.store").name == "repro.core.store"

    def test_root_has_null_handler(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_modules_use_the_hierarchy(self):
        # the satellite's point: no module does ad-hoc logging config
        import repro.core.filestore as filestore
        import repro.storage.buffer as buffer
        import repro.storage.wal as wal

        for module in (filestore, buffer, wal):
            assert module._log.name.startswith("repro.")


class TestInstallHandler:
    def test_captures_module_logs(self):
        stream = io.StringIO()
        handler = install_handler(logging.DEBUG, stream=stream)
        try:
            get_logger("test.module").debug("hello %d", 42)
        finally:
            remove_handler(handler)
        text = stream.getvalue()
        assert "hello 42" in text
        assert "repro.test.module" in text
        assert "DEBUG" in text

    def test_remove_stops_capture(self):
        stream = io.StringIO()
        handler = install_handler(logging.DEBUG, stream=stream)
        remove_handler(handler)
        get_logger("test.module").debug("after removal")
        assert "after removal" not in stream.getvalue()

    def test_level_filters(self):
        stream = io.StringIO()
        handler = install_handler(logging.WARNING, stream=stream)
        try:
            get_logger("test.module").info("quiet")
            get_logger("test.module").warning("loud")
        finally:
            remove_handler(handler)
        text = stream.getvalue()
        assert "quiet" not in text
        assert "loud" in text

    def test_store_lifecycle_logs_flow_through(self, tmp_path):
        from repro.core.filestore import StoreDirectory

        stream = io.StringIO()
        handler = install_handler(logging.INFO, stream=stream)
        try:
            with StoreDirectory(str(tmp_path / "s")) as store:
                store.load_document("<r/>")
        finally:
            remove_handler(handler)
        text = stream.getvalue()
        assert "creating fresh store" in text
        assert "closing store" in text
