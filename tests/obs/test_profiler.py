"""The deterministic cost profiler: folding, attribution, reconciliation."""

import json

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore
from repro.obs.bridge import metrics_snapshot
from repro.obs.profile_export import (
    SPEEDSCOPE_SCHEMA,
    collapsed_stacks,
    render_profile_top,
    speedscope_json,
)
from repro.obs.profiler import (
    CallNode,
    CostProfile,
    ProfileRecorder,
    component_of_span,
    fold_spans,
    profile_operation,
    reconcile_with_metrics,
    span_totals,
)
from repro.obs.tracing import Tracer

DOCUMENT = (
    "<r>"
    + "".join(f"<a n='{i}'><b>text{i}</b></a>" for i in range(12))
    + "</r>"
)

#: a few node ids with repeats, so the partial index gets hits as well
#: as misses and the locator replays tokens
READ_IDS = (2, 5, 8, 2, 5, 11, 2)


def _profiled_workload():
    """A fresh store, the whole workload inside one recorder window (a
    whole-lifetime window, which is what reconciliation requires)."""
    store = XMLStore.open(
        StoreConfig(
            policy=IndexingPolicy.RANGE_PLUS_PARTIAL,
            profiling_enabled=True,
            buffer_pool_capacity=4,
            max_range_tokens=32,
        )
    )
    with ProfileRecorder(store, "workload") as recorder:
        root = store.load_document(DOCUMENT)
        for node_id in READ_IDS:
            store.read(node_id)
        store.insert_into_last(root, "<extra/>")
    assert recorder.profile is not None
    return recorder.profile, store


class TestComponentOfSpan:
    def test_prefix_mapping(self):
        assert component_of_span("locator.scan") == "token-replay"
        assert component_of_span("wal.append") == "wal"
        assert component_of_span("wal.fsync") == "wal"
        assert component_of_span("xpath") == "xpath"

    def test_table1_operations_belong_to_the_store(self):
        assert component_of_span("load_document") == "store"
        assert component_of_span("node_read") == "store"


class TestFoldSpans:
    def test_nesting_follows_parent_chain(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        root = fold_spans(tracer.events())
        assert list(root.children) == ["outer"]
        outer = root.children["outer"]
        assert outer.count == 1
        # siblings with the same name coalesce, flamegraph-style
        assert outer.children["inner"].count == 2

    def test_orphaned_spans_become_root_level(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        # drop the parent from the window: the child has a dangling
        # parent seq and must fold at root level instead of vanishing
        events = [e for e in tracer.events() if e.name == "child"]
        root = fold_spans(events)
        assert list(root.children) == ["child"]

    def test_self_time_clamps_at_zero(self):
        node = CallNode("parent", count=1, simulated_seconds=1.0)
        child = node.child("child")
        child.simulated_seconds = 1.5  # float re-association can overshoot
        assert node.self_simulated_seconds == 0.0
        assert node.self_wall_seconds == 0.0


class TestSpanTotals:
    def test_counts_and_sums(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        totals = span_totals(tracer.events())
        assert totals["op"]["count"] == 3
        assert totals["op"]["wall_seconds"] > 0.0


class TestProfileRecorder:
    def test_components_and_tree(self):
        profile, _store = _profiled_workload()
        names = [row.component for row in profile.components]
        assert names[:3] == ["token-replay", "token-emit", "range-index"]
        assert "partial-index" in names
        assert "disk" in names
        assert "buffer" in names
        assert "wal" in names
        # the workload replayed tokens and emitted them
        assert profile.component("token-replay").counts["tokens_scanned"] > 0
        assert profile.component("token-emit").counts["tokens_emitted"] > 0
        partial = profile.component("partial-index")
        assert partial.counts["hits"] > 0  # repeated reads memoized
        # the tree saw the Table-1 operations
        assert "load_document" in profile.root.children
        assert "node_read" in profile.root.children
        assert profile.simulated_seconds > 0
        assert profile.spans_dropped == 0

    def test_reconciles_with_registry_at_zero_tolerance(self):
        profile, store = _profiled_workload()
        values = metrics_snapshot(store).values
        assert reconcile_with_metrics(profile, values) == []

    def test_failed_window_produces_no_profile(self):
        store = XMLStore.open(StoreConfig(profiling_enabled=True))
        recorder = ProfileRecorder(store)
        with pytest.raises(RuntimeError):
            with recorder:
                raise RuntimeError("boom")
        assert recorder.profile is None

    def test_to_dict_round_trips_through_json(self):
        profile, _store = _profiled_workload()
        payload = json.loads(json.dumps(profile.to_dict()))
        assert payload["operation"] == "workload"
        assert payload["tree"]
        assert payload["components"]
        flat = json.loads(json.dumps(profile.to_dict(include_tree=False)))
        assert "tree" not in flat


class TestDeterminism:
    def test_collapsed_and_speedscope_are_byte_identical_across_runs(self):
        first, _ = _profiled_workload()
        second, _ = _profiled_workload()
        assert collapsed_stacks(first) == collapsed_stacks(second)
        assert collapsed_stacks(first, by="component") == collapsed_stacks(
            second, by="component"
        )
        assert speedscope_json(first) == speedscope_json(second)

    def test_wall_axis_is_not_part_of_the_guarantee(self):
        # sanity: the simulated outputs above being identical is not
        # because the profiles are trivially empty
        profile, _ = _profiled_workload()
        assert collapsed_stacks(profile).strip()
        assert collapsed_stacks(profile, by="component").strip()


class TestCollapsedExport:
    def test_component_lines_round_trip_exactly(self):
        profile, _ = _profiled_workload()
        text = collapsed_stacks(profile, by="component")
        parsed = {}
        for line in text.strip().split("\n"):
            component, value = line.rsplit(" ", 1)
            parsed[component] = float(value)
        for row in profile.components:
            # repr() round-trips floats: parsed values are bit-equal
            assert parsed[row.component] == row.simulated_seconds

    def test_stack_lines_are_paths_with_integer_micros(self):
        profile, _ = _profiled_workload()
        for line in collapsed_stacks(profile).strip().split("\n"):
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0  # zero-self frames are skipped
            assert path

    def test_unknown_axis_and_grouping_rejected(self):
        profile, _ = _profiled_workload()
        with pytest.raises(ValueError):
            collapsed_stacks(profile, axis="cpu")
        with pytest.raises(ValueError):
            collapsed_stacks(profile, by="module")


class TestSpeedscopeExport:
    def test_schema_sanity(self):
        profile, _ = _profiled_workload()
        document = json.loads(speedscope_json(profile))
        assert document["$schema"] == SPEEDSCOPE_SCHEMA
        frames = document["shared"]["frames"]
        assert frames
        evented, sampled = document["profiles"]
        assert evented["type"] == "evented"
        assert sampled["type"] == "sampled"
        # every frame reference points into the shared frame table
        for event in evented["events"]:
            assert 0 <= event["frame"] < len(frames)
        for sample in sampled["samples"]:
            for index in sample:
                assert 0 <= index < len(frames)

    def test_events_are_properly_nested(self):
        profile, _ = _profiled_workload()
        document = json.loads(speedscope_json(profile))
        evented = document["profiles"][0]
        stack = []
        cursor = 0.0
        for event in evented["events"]:
            assert event["at"] >= cursor  # timestamps never run backwards
            cursor = event["at"]
            if event["type"] == "O":
                stack.append(event["frame"])
            else:
                assert event["type"] == "C"
                assert stack.pop() == event["frame"]  # LIFO close order
        assert stack == []  # every open frame was closed
        assert evented["endValue"] == cursor

    def test_component_weights_carry_exact_values(self):
        profile, _ = _profiled_workload()
        document = json.loads(speedscope_json(profile))
        frames = document["shared"]["frames"]
        sampled = document["profiles"][1]
        by_component = {
            frames[sample[0]]["name"]: weight
            for sample, weight in zip(sampled["samples"], sampled["weights"])
        }
        for row in profile.components:
            assert (
                by_component[f"component: {row.component}"]
                == row.simulated_seconds
            )


class TestTopRenderer:
    def test_sections_present(self):
        profile, _ = _profiled_workload()
        text = render_profile_top(profile)
        assert text.startswith("PROFILE workload")
        assert "spans (by cumulative simulated cost" in text
        assert "components:" in text
        assert "token-replay" in text

    def test_dropped_spans_are_reported_not_hidden(self):
        profile = CostProfile(
            operation="x",
            wall_seconds=0.0,
            simulated_seconds=0.0,
            root=CallNode(""),
            span_totals={},
            components=[],
            spans_dropped=3,
        )
        assert "3 span(s) evicted" in render_profile_top(profile)


class TestProfileOperation:
    def test_runs_the_op_and_captures_its_output(self):
        store = XMLStore.open(StoreConfig(profiling_enabled=True))
        store.load_document("<r><a>x</a></r>")
        profile = profile_operation(store, "read", ["2"])
        assert profile.operation == "read"
        assert profile.result == "<a>x</a>"
        assert profile.component("token-emit").counts["tokens_emitted"] > 0
