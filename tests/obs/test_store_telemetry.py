"""Store-level telemetry: spans per operation, projection, zero cost off."""

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import TABLE1_SPANS, XMLStore
from repro.obs.bridge import metrics_snapshot, store_families, store_registry
from repro.obs.exporters import prometheus_text
from repro.obs.telemetry import NOOP_TELEMETRY


def _enabled_store(**overrides) -> XMLStore:
    return XMLStore(StoreConfig(telemetry_enabled=True, **overrides))


DOC = "<orders><order><item>widget</item></order><order><item>bolt</item></order></orders>"


class TestSpansPerOperation:
    @pytest.mark.parametrize(
        ("span_name", "operation"),
        [
            ("load_document", lambda s, r: None),
            ("read", lambda s, r: s.read()),
            ("node_read", lambda s, r: s.read(r + 1)),
            ("insert_into_last", lambda s, r: s.insert_into_last(r, "<order/>")),
            ("insert_before", lambda s, r: s.insert_before(r + 1, "<order/>")),
            ("insert_after", lambda s, r: s.insert_after(r + 1, "<order/>")),
            ("insert_into_first", lambda s, r: s.insert_into_first(r, "<order/>")),
            ("replace_content", lambda s, r: s.replace_content(r + 1, "<item/>")),
            ("replace_node", lambda s, r: s.replace_node(r + 1, "<order/>")),
            ("delete_node", lambda s, r: s.delete_node(r + 1)),
        ],
    )
    def test_each_table1_operation_records_a_span(self, span_name, operation):
        store = _enabled_store()
        root = store.load_document(DOC)
        operation(store, root)
        names = {event.name for event in store.telemetry.events()}
        assert span_name in names

    def test_span_records_simulated_seconds(self):
        # a full read emits tokens, which costs simulated CPU seconds;
        # the lazy load itself is (by design) free on the simulated clock
        store = _enabled_store()
        store.load_document(DOC)
        store.read()
        events = {e.name: e for e in store.telemetry.events()}
        assert events["read"].simulated_seconds > 0
        assert events["read"].wall_seconds > 0
        assert events["load_document"].wall_seconds > 0

    def test_wal_append_spans_nest_under_operations(self):
        store = _enabled_store()
        store.load_document(DOC)
        events = {e.name: e for e in store.telemetry.events()}
        load = events["load_document"]
        append = events["wal.append"]
        assert append.parent == load.seq
        assert append.depth == load.depth + 1

    def test_preregistered_table1_series_visible_at_zero(self):
        store = _enabled_store()
        text = prometheus_text(store_families(store))
        for name in TABLE1_SPANS:
            assert f'repro_spans_total{{span="{name}"}}' in text


class TestProjection:
    def test_projection_covers_every_layer(self):
        store = _enabled_store()
        root = store.load_document(DOC)
        store.read(root + 1)
        snapshot = store_registry(store).snapshot()
        assert snapshot['repro_store_operations_total{op="load"}'] == 1
        assert snapshot['repro_store_operations_total{op="node_read"}'] == 1
        assert snapshot['repro_locator_resolutions_total{path="scan"}'] >= 1
        assert snapshot["repro_wal_appends_total"] >= 1
        assert "repro_buffer_hit_rate" in snapshot
        assert snapshot["repro_store_simulated_seconds"] == pytest.approx(
            store.simulated_seconds
        )

    def test_wal_append_counter_tracks_operations(self):
        store = _enabled_store()
        root = store.load_document(DOC)
        before = store.wal.appends
        store.insert_into_last(root, "<order/>")
        assert store.wal.appends == before + 1

    def test_families_merge_live_registry_without_name_collisions(self):
        store = _enabled_store()
        store.load_document(DOC)
        families = store_families(store)
        names = [family.name for family in families]
        assert len(names) == len(set(names))
        assert "repro_spans_total" in names
        assert "repro_store_operations_total" in names

    def test_projection_works_with_telemetry_disabled(self):
        store = XMLStore()
        store.load_document(DOC)
        snapshot = store_registry(store).snapshot()
        assert snapshot['repro_store_operations_total{op="load"}'] == 1
        assert store_families(store)  # projection only, no live registry

    def test_scan_tokens_histogram_observes_resolutions(self):
        store = _enabled_store()
        root = store.load_document(DOC)
        store.read(root + 1)
        snapshot = store.telemetry.snapshot()
        assert snapshot["repro_locator_scan_tokens_count"] >= 1


class TestBenchSnapshot:
    def test_metrics_snapshot_delta(self):
        store = _enabled_store()
        before = metrics_snapshot(store)
        store.load_document(DOC)
        after = metrics_snapshot(store)
        delta = after.delta(before)
        assert delta['repro_store_operations_total{op="load"}'] == 1
        # gauges report current value, not a difference
        assert delta["repro_store_simulated_seconds"] == pytest.approx(
            store.simulated_seconds
        )


class TestZeroCostDisabled:
    def test_disabled_store_gets_shared_noop(self):
        store = XMLStore()
        assert store.telemetry is NOOP_TELEMETRY
        assert not store.telemetry.enabled

    def test_disabled_store_records_no_events(self):
        store = XMLStore()
        root = store.load_document(DOC)
        store.read(root + 1)
        store.insert_into_last(root, "<order/>")
        assert store.telemetry.events() == []
        assert store.telemetry.snapshot() == {}

    def test_simulated_seconds_identical_on_vs_off(self):
        def workload(store: XMLStore) -> float:
            root = store.load_document(DOC)
            store.insert_into_last(root, "<order><item>x</item></order>")
            store.read(root + 1)
            store.read()
            store.delete_node(root + 1)
            return store.simulated_seconds

        off = workload(XMLStore(StoreConfig(telemetry_enabled=False)))
        on = workload(XMLStore(StoreConfig(telemetry_enabled=True)))
        assert off == on  # exact: telemetry never touches the simulated clock

    @pytest.mark.parametrize(
        "policy", [IndexingPolicy.FULL, IndexingPolicy.ADAPTIVE]
    )
    def test_other_policies_identical_too(self, policy):
        def workload(enabled: bool) -> float:
            store = XMLStore(StoreConfig(policy=policy, telemetry_enabled=enabled))
            root = store.load_document(DOC)
            store.insert_into_last(root, "<order/>")
            store.read(root + 1)
            return store.simulated_seconds

        assert workload(False) == workload(True)


class TestFromCatalogTelemetry:
    def test_reopened_store_keeps_telemetry_setting(self):
        config = StoreConfig(telemetry_enabled=True)
        store = XMLStore(config)
        store.load_document(DOC)
        catalog = store.checkpoint()
        reopened = XMLStore.from_catalog(store.device, catalog, config=config)
        assert reopened.telemetry.enabled
        reopened.read()
        assert any(e.name == "read" for e in reopened.telemetry.events())
