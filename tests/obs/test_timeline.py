"""Post-mortem timeline, diagnosis verdicts, and the support bundle.

``diagnose``'s contract: everything is reconstructed from persisted
artifacts alone — the store is never opened — and the verdict maps
onto the CLI's canonical exit-code scheme (0 clean / 1 resolved /
2 unresolved).  The support tarball must be deterministic byte-for-byte
across identical runs.
"""

import json
import os
import tarfile

import pytest

from repro.core.config import StoreConfig
from repro.core.filestore import close_directory, open_directory
from repro.errors import ObservabilityError
from repro.obs.incident import INCIDENTS_DIR, record_directory_incident
from repro.obs.timeline import (
    build_timeline,
    diagnose,
    load_bundles,
    write_support_bundle,
)


def _fault_store(tmp_path, repair=False):
    """A directory store that hit a checksum quarantine (bundle dumped),
    optionally followed by a clean full-log repair."""
    from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
    from repro.core.store import XMLStore
    from repro.storage.disk import FileBlockDevice
    from repro.storage.scrub import scrub_store

    path = tmp_path / "store"
    store = open_directory(
        str(path),
        config=StoreConfig(
            events_enabled=True,
            recorder_enabled=True,
            history_enabled=True,
            checksums_enabled=True,
        ),
    )
    store.load_document("<r><a>x</a><b>y</b></r>")
    close_directory(str(path), store)
    config = StoreConfig(checksums_enabled=True)
    with open(path / CATALOG_FILE, "rb") as handle:
        catalog = handle.read()
    device = FileBlockDevice(
        str(path / DEVICE_FILE), block_size=config.page_size
    )
    view = XMLStore.from_catalog(
        device, catalog, config=config, repair_mode=True
    )
    block = next(iter(view.layout.chain.blocks()))
    image = bytearray(device.read_block(block))
    image[-1] ^= 0x55
    device.write_block(block, bytes(image))
    device.close()
    device = FileBlockDevice(
        str(path / DEVICE_FILE), block_size=config.page_size
    )
    scrub_view = XMLStore.from_catalog(
        device,
        catalog,
        config=StoreConfig(
            checksums_enabled=True,
            events_enabled=True,
            recorder_enabled=True,
            recorder_incidents_dir=str(path / INCIDENTS_DIR),
        ),
        repair_mode=True,
    )
    scrub_store(scrub_view)
    device.close()
    if repair:
        from repro.core.repair import repair_directory

        repair_directory(
            str(path), config=StoreConfig(checksums_enabled=True)
        )
    return path


class TestTimeline:
    def test_empty_directory_yields_an_empty_timeline(self, tmp_path):
        assert build_timeline(str(tmp_path)) == []

    def test_merges_all_artifact_families_in_causal_order(self, tmp_path):
        path = _fault_store(tmp_path, repair=True)
        timeline = build_timeline(str(path))
        sources = {entry.source for entry in timeline}
        assert {"history", "incident", "recorder"} <= sources
        # causal order: rows carrying an operation counter come sorted,
        # counter-less rows (the post-run repair) after them
        counted = [
            e.operations for e in timeline if e.operations is not None
        ]
        assert counted == sorted(counted)
        first_uncounted = next(
            i for i, e in enumerate(timeline) if e.operations is None
        )
        assert all(
            e.operations is None for e in timeline[first_uncounted:]
        )

    def test_tmp_bundles_are_ignored(self, tmp_path):
        path = _fault_store(tmp_path)
        leftover = path / INCIDENTS_DIR / "incident-9.tmp"
        os.makedirs(leftover)
        (leftover / "incident.json").write_text("{}")
        assert [b["name"] for b in load_bundles(str(path))] == ["incident-0"]

    def test_garbled_artifact_lines_are_skipped(self, tmp_path):
        path = _fault_store(tmp_path)
        # simulate a crash-truncated history tail
        with open(path / "store.history.jsonl", "a") as handle:
            handle.write('{"schema_version": 1, "trunca')
        timeline = build_timeline(str(path))
        assert any(entry.source == "history" for entry in timeline)


class TestDiagnose:
    def test_clean_store_is_verdict_clean(self, tmp_path):
        report = diagnose(str(tmp_path))
        assert report.verdict == "clean"
        assert report.exit_code == 0
        assert report.root_cause is None

    def test_unrepaired_fault_is_unresolved(self, tmp_path):
        report = diagnose(str(_fault_store(tmp_path)))
        assert report.verdict == "unresolved"
        assert report.exit_code == 2
        # root cause comes from the recorder dump inside the bundle
        assert report.root_cause["origin"] == "recorder"
        assert report.root_cause["kind"] == "checksum_error"

    def test_clean_repair_resolves_the_incident(self, tmp_path):
        report = diagnose(str(_fault_store(tmp_path, repair=True)))
        assert report.verdict == "resolved"
        assert report.exit_code == 1
        assert len(report.incidents) == 2

    def test_reconstructs_fault_to_repair_from_artifacts_alone(
        self, tmp_path
    ):
        # the acceptance walk: fault -> quarantine -> repair, read back
        # without ever opening the store
        report = diagnose(str(_fault_store(tmp_path, repair=True)))
        kinds = [entry.kind for entry in report.timeline]
        fault = next(
            i
            for i, e in enumerate(report.timeline)
            if e.source == "recorder" and e.kind == "event"
            and e.detail.get("source") == "fault"
        )
        quarantine = next(
            i
            for i, e in enumerate(report.timeline)
            if e.source == "incident" and e.kind == "checksum-quarantine"
        )
        repair = next(
            i
            for i, e in enumerate(report.timeline)
            if e.source == "incident" and e.kind == "repair"
        )
        assert quarantine < repair
        assert fault < repair
        del kinds

    def test_focus_on_a_named_incident(self, tmp_path):
        path = _fault_store(tmp_path, repair=True)
        report = diagnose(str(path), incident="incident-0")
        assert report.focus == "incident-0"
        # the verdict still considers every bundle
        assert report.verdict == "resolved"
        with pytest.raises(ObservabilityError):
            diagnose(str(path), incident="incident-99")

    def test_report_is_schema_stamped_and_renders(self, tmp_path):
        report = diagnose(str(_fault_store(tmp_path)))
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["exit_code"] == 2
        text = report.render()
        assert "verdict: unresolved" in text
        assert "root cause" in text

    def test_degraded_sidecar_blocks_resolution(self, tmp_path):
        path = _fault_store(tmp_path, repair=True)
        with open(path / "store.repair.json", "w") as handle:
            json.dump({"mode": "salvage", "lost_ids": 3}, handle)
        assert diagnose(str(path)).verdict == "unresolved"

    def test_repair_only_history_counts_as_resolved(self, tmp_path):
        record_directory_incident(
            str(tmp_path),
            "repair",
            {"report": {"mode": "wal-rebuild", "integrity_ok": True,
                        "degraded": False}},
        )
        assert diagnose(str(tmp_path)).verdict == "resolved"


class TestSupportBundle:
    def test_bundle_contains_manifest_diagnosis_and_artifacts(
        self, tmp_path
    ):
        path = _fault_store(tmp_path, repair=True)
        output = tmp_path / "support.tar"
        manifest = write_support_bundle(str(path), str(output))
        assert manifest["schema_version"] == 1
        with tarfile.open(output) as archive:
            names = archive.getnames()
            assert "MANIFEST.json" in names
            assert "diagnosis.json" in names
            assert any(n.startswith("store.incidents/") for n in names)
            diagnosis = json.load(
                archive.extractfile("diagnosis.json")
            )
        assert diagnosis["verdict"] == "resolved"

    def test_bundle_is_byte_deterministic(self, tmp_path):
        path = _fault_store(tmp_path)
        first = tmp_path / "a.tar"
        second = tmp_path / "b.tar"
        write_support_bundle(str(path), str(first))
        write_support_bundle(str(path), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_tar_member_metadata_is_zeroed(self, tmp_path):
        path = _fault_store(tmp_path)
        output = tmp_path / "support.tar"
        write_support_bundle(str(path), str(output))
        with tarfile.open(output) as archive:
            for member in archive.getmembers():
                assert member.mtime == 0
                assert member.uid == 0 and member.gid == 0
