"""SLO targets, error budgets, and percentile estimates (repro.obs.slo)."""

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_TARGETS,
    NOOP_SLO,
    SLOReport,
    SLOTarget,
    SLOTracker,
    create_slo,
)


def _families(observations, buckets=(0.25, 2.5)):
    """Span-histogram families from (operation, value) pairs."""
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "repro_span_simulated_seconds",
        "Simulated span cost.",
        labelnames=("span",),
        buckets=buckets,
    )
    for operation, value in observations:
        histogram.labels(span=operation).observe(value)
    return registry.collect()


class TestTargetValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ObservabilityError, match="axis"):
            SLOTarget("read", 0.25, axis="lunar")

    def test_fraction_bounds(self):
        with pytest.raises(ObservabilityError, match="target_fraction"):
            SLOTarget("read", 0.25, target_fraction=0.0)
        with pytest.raises(ObservabilityError, match="target_fraction"):
            SLOTarget("read", 0.25, target_fraction=1.5)
        SLOTarget("read", 0.25, target_fraction=1.0)  # inclusive top

    def test_objective_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="positive"):
            SLOTarget("read", 0.0)

    def test_defaults_sit_on_bucket_bounds(self):
        from repro.obs.metrics import LATENCY_BUCKETS, SIMULATED_COST_BUCKETS

        for target in DEFAULT_TARGETS:
            buckets = (
                SIMULATED_COST_BUCKETS
                if target.axis == "simulated"
                else LATENCY_BUCKETS
            )
            assert target.objective_seconds in buckets, target


class TestEvaluation:
    def _status(self, observations, target=None):
        tracker = SLOTracker(
            targets=(target or SLOTarget("node_read", 0.25, 0.95),)
        )
        report = tracker.evaluate_families(_families(observations))
        assert len(report.statuses) == 1
        return report.statuses[0]

    def test_no_data_means_met_with_full_budget(self):
        status = self._status([])
        assert status.count == 0
        assert status.met is True
        assert status.budget_remaining == 1.0
        assert status.percentile_estimate is None

    def test_all_within_objective(self):
        status = self._status([("node_read", 0.1)] * 10)
        assert (status.count, status.violations) == (10, 0)
        assert status.met is True
        assert status.budget_remaining == 1.0
        assert status.percentile_estimate == 0.25

    def test_violations_spend_the_budget(self):
        # 97 of 100 within 0.25s: 3 violations against an allowance of 5
        observations = [("node_read", 0.1)] * 97 + [("node_read", 10.0)] * 3
        status = self._status(observations)
        assert (status.count, status.violations) == (100, 3)
        assert status.allowed == pytest.approx(5.0)
        assert status.met is True
        assert status.budget_remaining == pytest.approx(1.0 - 3 / 5)

    def test_breach_and_clamped_budget(self):
        # 20 violations against an allowance of 5: breached, floor at -1
        observations = [("node_read", 0.1)] * 80 + [("node_read", 10.0)] * 20
        status = self._status(observations)
        assert status.met is False
        assert status.budget_remaining == -1.0

    def test_perfect_fraction_with_one_violation_breaches(self):
        target = SLOTarget("node_read", 0.25, target_fraction=1.0)
        status = self._status(
            [("node_read", 0.1), ("node_read", 10.0)], target=target
        )
        assert status.allowed == 0.0
        assert status.met is False
        assert status.budget_remaining == -1.0

    def test_percentile_estimate_is_the_covering_bound(self):
        # p95 needs 95 of 100; the 0.25 bucket holds only 90, the 2.5
        # bucket holds 98 — the estimate is the first covering bound
        observations = (
            [("node_read", 0.1)] * 90
            + [("node_read", 1.0)] * 8
            + [("node_read", 10.0)] * 2
        )
        status = self._status(observations)
        assert status.percentile_estimate == 2.5

    def test_other_operations_do_not_leak_in(self):
        observations = [("node_read", 0.1)] * 3 + [("xpath", 10.0)] * 3
        status = self._status(observations)
        assert status.count == 3
        assert status.violations == 0

    def test_axis_filter_drops_wall_targets(self):
        tracker = SLOTracker()
        report = tracker.evaluate_families(_families([]), axes=("simulated",))
        assert all(s.target.axis == "simulated" for s in report.statuses)
        both = tracker.evaluate_families(
            _families([]), axes=("simulated", "wall")
        )
        assert len(both.statuses) == len(DEFAULT_TARGETS)


class TestReport:
    def _report(self):
        tracker = SLOTracker(targets=(
            SLOTarget("node_read", 0.25, 0.95),
            SLOTarget("xpath", 2.5, 0.95),
        ))
        observations = (
            [("node_read", 0.1)] * 97 + [("node_read", 10.0)] * 3
            + [("xpath", 1.0)] * 4
        )
        return tracker.evaluate_families(_families(observations))

    def test_worst_and_budget_floor(self):
        report = self._report()
        assert report.met is True
        assert report.worst().target.operation == "node_read"
        assert report.budget_floor() == pytest.approx(0.4)

    def test_empty_report_floor_is_full(self):
        report = SLOReport(statuses=[])
        assert report.met is True
        assert report.worst() is None
        assert report.budget_floor() == 1.0

    def test_to_dict_is_stamped(self):
        payload = self._report().to_dict()
        assert payload["schema_version"] == 1
        assert payload["met"] is True
        assert len(payload["statuses"]) == 2
        assert payload["statuses"][0]["operation"] == "node_read"

    def test_render_lists_every_target(self):
        text = self._report().render()
        assert "node_read" in text
        assert "xpath" in text
        assert "met" in text

    def test_render_empty(self):
        assert "no SLO targets" in SLOReport(statuses=[]).render()


class TestTrackerOnStores:
    def test_live_store_evaluation_is_deterministic(self):
        def run():
            store = XMLStore.open(
                StoreConfig(telemetry_enabled=True, alerts_enabled=True)
            )
            root = store.load_document("<r><a>x</a><b>y</b></r>")
            for _ in range(5):
                store.read(root + 1)
            return store.slo.evaluate(store).to_dict()

        assert run() == run()

    def test_budget_floor_without_telemetry_is_full(self):
        # no span histograms exist: every target sees zero data
        store = XMLStore.open(StoreConfig(alerts_enabled=True))
        store.load_document("<r/>")
        assert store.slo.budget_floor(store) == 1.0

    def test_families_export_gauges_per_target(self):
        from repro.obs.exporters import prometheus_text

        store = XMLStore.open(
            StoreConfig(telemetry_enabled=True, alerts_enabled=True)
        )
        root = store.load_document("<r><a>x</a></r>")
        store.read(root + 1)
        text = prometheus_text(
            store.slo.families(store, axes=("simulated", "wall"))
        )
        assert "# TYPE repro_slo_budget_remaining gauge" in text
        assert "# TYPE repro_slo_violations gauge" in text
        assert "# TYPE repro_slo_met gauge" in text
        assert 'operation="node_read"' in text
        assert 'axis="wall"' in text


class TestNoopTwin:
    def test_create_slo_disabled_returns_the_shared_noop(self):
        assert create_slo(False) is NOOP_SLO
        assert NOOP_SLO.enabled is False

    def test_noop_evaluations_are_empty_and_budget_untouched(self):
        store = XMLStore.open(StoreConfig())
        assert NOOP_SLO.evaluate(store).statuses == []
        assert NOOP_SLO.evaluate_families([]).statuses == []
        assert NOOP_SLO.budget_floor(store) == 1.0
        assert NOOP_SLO.families(store) == []
