"""Incident triggers, bundle dumps, and crash safety.

The manager's contract: every trigger kind fires at most once per
``(kind, key)`` per store instance, bounded by the configured limit;
on directory stores each incident dumps a schema-stamped bundle under
``store.incidents/`` written strictly outside the store's pages and
WAL — so a crash mid-dump can never corrupt the store, only leave an
ignorable ``incident-<n>.tmp`` directory behind.
"""

import json
import os

import pytest

from repro.core.config import StoreConfig
from repro.core.filestore import close_directory, open_directory
from repro.core.store import XMLStore
from repro.errors import ChecksumError, ObservabilityError
from repro.obs.incident import (
    INCIDENTS_DIR,
    NOOP_INCIDENTS,
    IncidentManager,
    create_incidents,
    record_directory_incident,
)

BUNDLE_FILES = (
    "incident.json",
    "recorder.json",
    "config.json",
    "wal.json",
    "quarantine.json",
    "health.json",
    "integrity.json",
)


def _memory_store():
    store = XMLStore.open(
        StoreConfig(events_enabled=True, recorder_enabled=True)
    )
    store.load_document("<r><a>x</a></r>")
    return store


def _directory_store(path):
    store = open_directory(
        str(path),
        config=StoreConfig(
            events_enabled=True,
            recorder_enabled=True,
            checksums_enabled=True,
        ),
    )
    store.load_document("<r><a>x</a><b>y</b></r>")
    return store


class TestTriggering:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ObservabilityError):
            IncidentManager().trigger("made-up-kind")

    def test_same_kind_and_key_fires_once(self):
        manager = IncidentManager()
        assert manager.trigger("checksum-quarantine", key="7") is not None
        assert manager.trigger("checksum-quarantine", key="7") is None
        assert manager.trigger("checksum-quarantine", key="8") is not None
        assert manager.counts == {"checksum-quarantine": 2}

    def test_limit_suppresses_further_triggers(self):
        manager = IncidentManager(limit=2)
        for block in range(4):
            manager.trigger("checksum-quarantine", key=str(block))
        assert len(manager) == 2
        assert manager.suppressed == 2

    def test_quarantine_triggers_an_incident(self):
        store = _memory_store()
        store.pool.quarantine(99, ChecksumError("boom", block_no=99))
        records = store.incidents.incidents()
        assert [r.kind for r in records] == ["checksum-quarantine"]
        assert records[0].detail["block"] == 99
        assert records[0].detail["source"] == "fetch"
        # in-memory store: recorded, but no bundle to dump
        assert records[0].bundle is None

    def test_factory_returns_the_twin_when_disabled(self):
        assert create_incidents(False) is NOOP_INCIDENTS
        assert create_incidents(True, limit=3).limit == 3


class TestBundleDump:
    def _corrupt_and_scrub(self, tmp_path):
        from repro.storage.scrub import scrub_store

        path = tmp_path / "store"
        store = _directory_store(path)
        close_directory(str(path), store)
        # rot one chain block on the raw device, then reopen and scrub
        from repro.core.filestore import CATALOG_FILE, DEVICE_FILE
        from repro.storage.disk import FileBlockDevice

        config = StoreConfig(checksums_enabled=True)
        with open(path / CATALOG_FILE, "rb") as handle:
            catalog = handle.read()
        device = FileBlockDevice(
            str(path / DEVICE_FILE), block_size=config.page_size
        )
        repair_view = XMLStore.from_catalog(
            device, catalog, config=config, repair_mode=True
        )
        block = next(iter(repair_view.layout.chain.blocks()))
        image = bytearray(device.read_block(block))
        image[-1] ^= 0x55
        device.write_block(block, bytes(image))
        device.close()
        device = FileBlockDevice(
            str(path / DEVICE_FILE), block_size=config.page_size
        )
        scrub_config = StoreConfig(
            checksums_enabled=True,
            events_enabled=True,
            recorder_enabled=True,
            recorder_incidents_dir=str(path / INCIDENTS_DIR),
        )
        store = XMLStore.from_catalog(
            device, catalog, config=scrub_config, repair_mode=True
        )
        report = scrub_store(store)
        device.close()
        return path, store, report, block

    def test_scrub_quarantine_dumps_a_complete_bundle(self, tmp_path):
        path, store, report, block = self._corrupt_and_scrub(tmp_path)
        assert not report.ok
        bundle = path / INCIDENTS_DIR / "incident-0"
        assert bundle.is_dir()
        for name in BUNDLE_FILES:
            with open(bundle / name) as handle:
                payload = json.load(handle)
            assert payload.get("schema_version") == 1, (
                f"{name} is not schema-stamped"
            )
        with open(bundle / "incident.json") as handle:
            record = json.load(handle)
        assert record["kind"] == "checksum-quarantine"
        assert record["detail"]["block"] == block
        assert record["detail"]["source"] == "scrub"
        with open(bundle / "quarantine.json") as handle:
            quarantine = json.load(handle)
        assert block in quarantine["blocks"]

    def test_recorder_dump_in_bundle_has_no_wall_readings(self, tmp_path):
        path, *_ = self._corrupt_and_scrub(tmp_path)
        with open(path / INCIDENTS_DIR / "incident-0" / "recorder.json") as handle:
            text = handle.read()
        assert '"wall"' not in text

    def test_crash_recovery_triggers_an_incident(self, tmp_path):
        path = tmp_path / "store"
        store = _directory_store(path)
        store.insert_into_last(1, "<c>new</c>")
        # crash: drop the store without checkpoint/close, then reopen —
        # replay finds the pending WAL records
        store.device.close()
        reopened = open_directory(
            str(path),
            config=StoreConfig(
                events_enabled=True,
                recorder_enabled=True,
                checksums_enabled=True,
            ),
        )
        kinds = [r.kind for r in reopened.incidents.incidents()]
        assert "crash-recovery" in kinds
        assert (path / INCIDENTS_DIR / "incident-0").is_dir()
        close_directory(str(path), reopened)

    def test_clean_reopen_triggers_nothing(self, tmp_path):
        path = tmp_path / "store"
        store = _directory_store(path)
        close_directory(str(path), store)
        reopened = open_directory(
            str(path),
            config=StoreConfig(
                events_enabled=True,
                recorder_enabled=True,
                checksums_enabled=True,
            ),
        )
        assert reopened.incidents.incidents() == []
        assert not (path / INCIDENTS_DIR).exists()
        close_directory(str(path), reopened)

    def test_repair_records_a_directory_incident(self, tmp_path):
        from repro.core.repair import repair_directory

        path, *_ = self._corrupt_and_scrub(tmp_path)
        report = repair_directory(
            str(path), config=StoreConfig(checksums_enabled=True)
        )
        assert report.integrity_ok
        bundles = sorted(os.listdir(path / INCIDENTS_DIR))
        assert "incident-1" in bundles
        with open(path / INCIDENTS_DIR / "incident-1" / "incident.json") as handle:
            record = json.load(handle)
        assert record["kind"] == "repair"
        assert record["detail"]["report"]["mode"] == "wal-rebuild"


class TestCrashDuringDump:
    """A crash mid-dump must leave the store recoverable and the
    partial bundle ignorable — the bundle writes never touch store
    pages or the WAL, and the final rename is the commit point."""

    def test_partial_bundle_is_ignored_and_store_recovers(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "store"
        store = _directory_store(path)

        # crash injection: the rename that commits the bundle never
        # happens, as if the process died between the file writes and
        # the commit point
        def crash_rename(src, dst):
            raise OSError("simulated crash during incident dump")

        monkeypatch.setattr("os.rename", crash_rename)
        store.pool.quarantine(99, ChecksumError("boom", block_no=99))
        monkeypatch.undo()

        # the dump failed; the incident is still recorded in memory and
        # only a .tmp leftover exists on disk
        records = store.incidents.incidents()
        assert [r.kind for r in records] == ["checksum-quarantine"]
        assert records[0].bundle is None
        leftovers = os.listdir(path / INCIDENTS_DIR)
        assert leftovers == ["incident-0.tmp"]

        # the quarantine was synthetic: clear it so the store closes
        # cleanly, then prove close/reopen/verify all work
        store.pool.clear_quarantine()
        close_directory(str(path), store)
        reopened = open_directory(
            str(path), config=StoreConfig(checksums_enabled=True)
        )
        from repro.core.integrity import integrity_report

        assert integrity_report(reopened).ok
        close_directory(str(path), reopened)

        # diagnose ignores the partial bundle entirely
        from repro.obs.timeline import diagnose, load_bundles

        assert load_bundles(str(path)) == []
        assert diagnose(str(path)).verdict == "clean"

    def test_next_dump_reclaims_the_tmp_leftover(self, tmp_path):
        path = tmp_path / "store"
        store = _directory_store(path)
        leftover = path / INCIDENTS_DIR / "incident-0.tmp"
        os.makedirs(leftover)
        (leftover / "junk.json").write_text("{}")
        store.pool.quarantine(99, ChecksumError("boom", block_no=99))
        assert (path / INCIDENTS_DIR / "incident-0").is_dir()
        assert not leftover.exists()


class TestDirectoryIncident:
    def test_store_less_dump_writes_incident_and_config(self, tmp_path):
        name = record_directory_incident(
            str(tmp_path),
            "repair",
            {"report": {"mode": "salvage"}},
            config=StoreConfig(),
        )
        assert name == "incident-0"
        bundle = tmp_path / INCIDENTS_DIR / "incident-0"
        with open(bundle / "incident.json") as handle:
            record = json.load(handle)
        assert record["kind"] == "repair"
        assert record["operations"] is None
        assert (bundle / "config.json").exists()

    def test_sequence_continues_past_existing_bundles(self, tmp_path):
        os.makedirs(tmp_path / INCIDENTS_DIR / "incident-4")
        name = record_directory_incident(str(tmp_path), "repair", {})
        assert name == "incident-5"

    def test_failure_is_swallowed(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file, not a directory")
        assert (
            record_directory_incident(str(target), "repair", {}) is None
        )
