"""Structured event log: ring semantics, stamping, and the no-op twin."""

import json

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ObservabilityError
from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    EventLog,
    NOOP_EVENT_LOG,
    NoopEventLog,
    create_event_log,
    events_log_jsonl,
)
from repro.obs.tracing import Tracer


class TestEventLog:
    def test_emit_records_source_kind_and_fields(self):
        log = EventLog()
        event = log.emit("locator", "scan", node_id=42, tokens=7)
        assert event.source == "locator"
        assert event.kind == "scan"
        assert event.severity == "debug"
        assert event.fields == {"node_id": 42, "tokens": 7}
        assert log.events() == [event]

    def test_sequence_numbers_are_monotone(self):
        log = EventLog()
        seqs = [log.emit("a", "b").seq for _ in range(5)]
        assert seqs == [0, 1, 2, 3, 4]
        assert log.next_seq == 5

    def test_unknown_severity_rejected(self):
        log = EventLog()
        with pytest.raises(ObservabilityError):
            log.emit("a", "b", severity="fatal")

    def test_ring_drops_oldest_and_counts(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.emit("a", "b", index=index)
        events = log.events()
        assert [e.fields["index"] for e in events] == [2, 3, 4]
        assert log.dropped == 2

    def test_since_filter(self):
        log = EventLog()
        log.emit("a", "b")
        marker = log.next_seq
        kept = log.emit("a", "c")
        assert log.events(since=marker) == [kept]

    def test_operation_window_stamps_events(self):
        log = EventLog()
        outside = log.emit("a", "b")
        op_id = log.begin_op("read")
        inside = log.emit("a", "c")
        log.end_op()
        after = log.emit("a", "d")
        assert outside.op_id is None and after.op_id is None
        assert inside.op_id == op_id
        assert inside.op == "read"
        assert log.events(op_id=op_id) == [inside]

    def test_nested_operation_windows_restore_the_outer_one(self):
        """Regression: an inner window (an xpath EXPLAIN wrapping node
        reads) must not wipe the enclosing operation's stamp when it
        closes — windows form a stack, not a single slot."""
        log = EventLog()
        outer_id = log.begin_op("xpath")
        before = log.emit("a", "b")
        inner_id = log.begin_op("node_read")
        inside = log.emit("a", "c")
        log.end_op()
        after = log.emit("a", "d")
        log.end_op()
        outside = log.emit("a", "e")
        assert before.op_id == outer_id and before.op == "xpath"
        assert inside.op_id == inner_id and inside.op == "node_read"
        # the event after the inner window closes belongs to the outer op
        assert after.op_id == outer_id and after.op == "xpath"
        assert outside.op_id is None and outside.op is None

    def test_end_op_on_empty_stack_is_safe(self):
        log = EventLog()
        log.end_op()  # unbalanced close: no crash, no phantom window
        event = log.emit("a", "b")
        assert event.op_id is None

    def test_op_filter_separates_nested_windows(self):
        log = EventLog()
        outer = log.begin_op("outer")
        log.emit("a", "b")
        inner = log.begin_op("inner")
        log.emit("a", "c")
        log.end_op()
        log.end_op()
        assert [e.fields for e in log.events(op_id=outer)] == [{}]
        assert len(log.events(op_id=inner)) == 1

    def test_op_ids_are_unique(self):
        log = EventLog()
        first = log.begin_op("x")
        log.end_op()
        second = log.begin_op("y")
        log.end_op()
        assert first != second

    def test_span_correlation(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        with tracer.span("outer"):
            event = log.emit("a", "b")
        outside = log.emit("a", "c")
        assert event.span is not None
        assert outside.span is None

    def test_simulated_clock_stamps(self):
        log = EventLog(simulated_clock=lambda: 2.5)
        assert log.emit("a", "b").simulated == 2.5

    def test_jsonl_round_trip(self):
        log = EventLog()
        log.begin_op("read")
        log.emit("locator", "scan", severity="info", node_id=1)
        log.end_op()
        lines = log.to_jsonl().strip().split("\n")
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["source"] == "locator"
        assert parsed[0]["op"] == "read"
        assert parsed[0]["severity"] == "info"
        assert parsed[0]["fields"] == {"node_id": 1}

    def test_clear(self):
        log = EventLog(capacity=1)
        log.emit("a", "b")
        log.emit("a", "c")
        log.clear()
        assert log.events() == []
        assert log.dropped == 0

    def test_empty_jsonl(self):
        assert events_log_jsonl([]) == ""


class TestRetentionUnderNestedWindows:
    """The PR 3 nested-window fix and the bounded ring interact: ring
    eviction must never disturb the op-window stack, and clearing the
    ring mid-window must leave the open windows stamping correctly."""

    def test_eviction_keeps_window_stamps_correct(self):
        log = EventLog(capacity=2)
        outer = log.begin_op("outer")
        log.emit("a", "e0")
        inner = log.begin_op("inner")
        log.emit("a", "e1")
        log.emit("a", "e2")  # evicts e0 (the only outer-stamped event)
        log.end_op()
        survivor = log.emit("a", "e3")  # evicts e1
        log.end_op()
        assert log.dropped == 2
        # the evictions took every inner event but one — and the
        # survivor of the outer window is stamped with the *outer* op,
        # proving eviction never popped the stack
        assert survivor.op_id == outer
        assert [e.kind for e in log.events()] == ["e2", "e3"]
        assert log.events(op_id=inner) == [log.events()[0]]

    def test_clear_inside_nested_windows_preserves_the_stack(self):
        log = EventLog(capacity=2)
        outer = log.begin_op("outer")
        inner = log.begin_op("inner")
        log.emit("a", "e0")
        log.emit("a", "e1")
        log.emit("a", "e2")
        log.clear()
        assert log.events() == []
        assert log.dropped == 0
        # windows survive the clear: new events still stamp inner, then
        # outer after the inner window closes
        inside = log.emit("a", "e3")
        log.end_op()
        after = log.emit("a", "e4")
        log.end_op()
        assert inside.op_id == inner
        assert after.op_id == outer

    def test_clear_does_not_rewind_seq_or_op_ids(self):
        log = EventLog(capacity=4)
        log.begin_op("w")
        log.emit("a", "b")
        log.end_op()
        seq_before = log.next_seq
        log.clear()
        assert log.next_seq == seq_before
        assert log.begin_op("w2") == 1  # op ids keep counting too


class TestNoopEventLog:
    def test_shared_singleton_and_shape(self):
        assert create_event_log(False) is NOOP_EVENT_LOG
        assert not NOOP_EVENT_LOG.enabled
        assert NOOP_EVENT_LOG.emit("a", "b", node_id=1) is None
        assert NOOP_EVENT_LOG.begin_op("read") == 0
        NOOP_EVENT_LOG.end_op()
        assert NOOP_EVENT_LOG.events() == []
        assert NOOP_EVENT_LOG.to_jsonl() == ""
        assert NOOP_EVENT_LOG.next_seq == 0

    def test_noop_has_no_instance_dict(self):
        assert not hasattr(NoopEventLog(), "__dict__")

    def test_create_enabled(self):
        log = create_event_log(True, capacity=9)
        assert log.enabled
        assert log.capacity == 9
        assert EventLog().capacity == DEFAULT_EVENT_CAPACITY


class TestStoreIntegration:
    def test_components_emit_into_store_log(self):
        store = XMLStore.open(StoreConfig(events_enabled=True))
        store.load_document("<r><a>x</a><b>y</b></r>")
        store.read(2)
        sources = {e.source for e in store.event_log.events()}
        # lookup path: partial probe missed, range index located, locator scanned
        assert {"partial_index", "range_index", "locator"} <= sources

    def test_disabled_store_attaches_noop(self):
        store = XMLStore.open(StoreConfig())
        assert store.event_log is NOOP_EVENT_LOG
        store.load_document("<r/>")
        assert store.event_log.events() == []

    def test_events_capacity_validated(self):
        with pytest.raises(ValueError):
            StoreConfig(events_enabled=True, events_capacity=0)

    def test_xpath_summary_event(self):
        store = XMLStore.open(StoreConfig(events_enabled=True))
        store.load_document("<r><a/><a/></r>")
        store.xpath("/r/a")
        summaries = [
            e for e in store.event_log.events()
            if e.source == "xpath" and e.kind == "evaluate"
        ]
        assert len(summaries) == 1
        assert summaries[0].fields["matches"] == 2
        assert summaries[0].fields["view_tokens"] > 0

    def test_wal_append_events(self):
        store = XMLStore.open(StoreConfig(events_enabled=True))
        store.load_document("<r/>")
        store.insert_into_last(1, "<a/>")
        kinds = [
            e.fields["type"] for e in store.event_log.events()
            if e.source == "wal" and e.kind == "append"
        ]
        assert "load_document" in kinds
        assert "insert_into_last" in kinds
