"""The deterministic alert engine (repro.obs.alerts)."""

import json

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import ChecksumError, ObservabilityError
from repro.obs.alerts import (
    DRIFT_KEY,
    NOOP_ALERTS,
    SLO_BUDGET_KEY,
    AlertEngine,
    AlertEvent,
    AlertRule,
    AlertView,
    create_alerts,
    cumulative_values,
    default_rules,
    evaluate_rule,
    history_view,
    load_events,
    read_alert_log,
    store_view,
)
from repro.obs.history import HistorySnapshot


def _snapshot(seq, deltas, operations=0, simulated=0.0):
    return HistorySnapshot(
        seq=seq,
        label="interval",
        operations=operations,
        simulated_seconds=simulated,
        deltas=deltas,
    )


class TestRuleValidation:
    def test_unknown_severity_rejected(self):
        with pytest.raises(ObservabilityError, match="severity"):
            AlertRule("r", "fatal", "threshold", "s", metric="m")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError, match="kind"):
            AlertRule("r", "info", "gradient", "s", metric="m")

    def test_unknown_op_rejected(self):
        with pytest.raises(ObservabilityError, match="comparison"):
            AlertRule("r", "info", "threshold", "s", metric="m", op="!=")

    def test_ratio_needs_numerator_and_denominator(self):
        with pytest.raises(ObservabilityError, match="numerator"):
            AlertRule("r", "info", "ratio", "s", numerator="a")

    def test_non_ratio_needs_a_metric(self):
        with pytest.raises(ObservabilityError, match="metric"):
            AlertRule("r", "info", "delta", "s")

    def test_window_and_clear_after_bounds(self):
        with pytest.raises(ObservabilityError, match="window"):
            AlertRule("r", "info", "delta", "s", metric="m", window=0)
        with pytest.raises(ObservabilityError, match="clear_after"):
            AlertRule("r", "info", "threshold", "s", metric="m", clear_after=0)


class TestEvaluateRule:
    def test_threshold_ops(self):
        view = AlertView(values={"m": 5.0})
        for op, bound, expected in (
            (">", 4.0, True), (">", 5.0, False),
            (">=", 5.0, True), ("<", 6.0, True), ("<=", 5.0, True),
        ):
            rule = AlertRule("r", "info", "threshold", "s",
                             metric="m", op=op, bound=bound)
            firing, value = evaluate_rule(rule, view)
            assert firing is expected
            assert value == 5.0

    def test_plus_joined_metrics_are_summed(self):
        view = AlertView(values={"a": 2.0, "b": 3.0})
        rule = AlertRule("r", "info", "threshold", "s",
                         metric="a + b", op=">", bound=4.0)
        assert evaluate_rule(rule, view) == (True, 5.0)

    def test_missing_samples_read_as_zero(self):
        rule = AlertRule("r", "info", "threshold", "s",
                         metric="absent", op=">", bound=0.0)
        assert evaluate_rule(rule, AlertView()) == (False, 0.0)

    def test_ratio_suppressed_below_min_denominator(self):
        rule = AlertRule("r", "warning", "ratio", "s",
                         numerator="miss", denominator="hit+miss",
                         op=">", bound=0.5, min_denominator=100)
        cold = AlertView(values={"miss": 10.0, "hit": 10.0})
        assert evaluate_rule(rule, cold) == (False, 0.0)
        warm = AlertView(values={"miss": 90.0, "hit": 10.0})
        firing, value = evaluate_rule(rule, warm)
        assert firing is True
        assert value == 0.9

    def test_delta_sums_over_the_window(self):
        rule = AlertRule("r", "info", "delta", "s",
                         metric="wal", op=">", bound=10.0, window=2)
        snapshots = [
            _snapshot(0, {"wal": 100.0}),  # outside the window
            _snapshot(1, {"wal": 8.0}),
            _snapshot(2, {"wal": 8.0}),
        ]
        firing, value = evaluate_rule(rule, AlertView(snapshots=snapshots))
        assert firing is True
        assert value == 16.0

    def test_delta_quiet_without_snapshots(self):
        rule = AlertRule("r", "info", "delta", "s",
                         metric="wal", op=">", bound=0.0)
        assert evaluate_rule(rule, AlertView()) == (False, 0.0)

    def test_absence_gated_on_min_operations(self):
        rule = AlertRule("r", "info", "absence", "s",
                         metric="scrubs", min_operations=100)
        young = AlertView(values={}, operations=50)
        assert evaluate_rule(rule, young)[0] is False
        old = AlertView(values={}, operations=100)
        assert evaluate_rule(rule, old)[0] is True
        scrubbed = AlertView(values={"scrubs": 1.0}, operations=100)
        assert evaluate_rule(rule, scrubbed)[0] is False


def _low_rule(name="fires", bound=-1.0, severity="info", clear_after=2):
    """A threshold rule on a metric the tests control directly."""
    return AlertRule(name, severity, "threshold", "test rule",
                     metric="m", op=">", bound=bound, clear_after=clear_after)


class TestStateMachine:
    def test_fires_once_then_stays_silently_active(self):
        engine = AlertEngine(rules=(_low_rule(),))
        view = AlertView(values={"m": 1.0})
        assert [e.state for e in engine.evaluate(view)] == ["fired"]
        assert engine.evaluate(view) == []
        assert engine.evaluate(view) == []
        assert [e.rule for e in engine.active()] == ["fires"]
        assert len(engine) == 1

    def test_clears_only_after_consecutive_ok_evaluations(self):
        engine = AlertEngine(rules=(_low_rule(clear_after=2),))
        firing = AlertView(values={"m": 1.0})
        quiet = AlertView(values={"m": -5.0})
        engine.evaluate(firing)
        assert engine.evaluate(quiet) == []  # streak 1 of 2
        cleared = engine.evaluate(quiet)
        assert [e.state for e in cleared] == ["cleared"]
        assert engine.active() == []

    def test_refiring_resets_the_ok_streak(self):
        engine = AlertEngine(rules=(_low_rule(clear_after=2),))
        firing = AlertView(values={"m": 1.0})
        quiet = AlertView(values={"m": -5.0})
        engine.evaluate(firing)
        engine.evaluate(quiet)   # streak 1
        engine.evaluate(firing)  # condition back: streak resets, no new event
        assert engine.evaluate(quiet) == []  # streak 1 again
        assert [e.state for e in engine.evaluate(quiet)] == ["cleared"]
        # fired, cleared: exactly two transitions total
        assert [e.state for e in engine.events()] == ["fired", "cleared"]

    def test_worst_active_severity(self):
        engine = AlertEngine(rules=(
            _low_rule("a", severity="info"),
            _low_rule("b", severity="critical"),
            _low_rule("c", severity="warning"),
        ))
        assert engine.worst_active_severity() is None
        engine.evaluate(AlertView(values={"m": 1.0}))
        assert engine.worst_active_severity() == "critical"

    def test_rule_names_must_be_unique(self):
        with pytest.raises(ObservabilityError, match="unique"):
            AlertEngine(rules=(_low_rule("dup"), _low_rule("dup")))


class TestPersistence:
    def test_transitions_append_stamped_jsonl_lines(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        engine = AlertEngine(rules=(_low_rule(),), path=path)
        engine.evaluate(AlertView(values={"m": 1.0}), label="test")
        engine.evaluate(AlertView(values={"m": 1.0}))  # steady: no write
        engine.evaluate(AlertView(values={"m": -1.0}))
        engine.evaluate(AlertView(values={"m": -1.0}))
        lines = (tmp_path / "alerts.jsonl").read_text().splitlines()
        assert len(lines) == 2  # fired + cleared, nothing for steady state
        for line in lines:
            payload = json.loads(line)
            assert payload["schema_version"] == 1
        assert json.loads(lines[0])["state"] == "fired"
        assert json.loads(lines[0])["label"] == "test"
        assert json.loads(lines[1])["state"] == "cleared"

    def test_reopen_restores_active_set_and_sequence(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        first = AlertEngine(rules=(_low_rule(),), path=path)
        first.evaluate(AlertView(values={"m": 1.0}))
        second = AlertEngine(rules=(_low_rule(),), path=path)
        assert [e.rule for e in second.active()] == ["fires"]
        # the restored engine continues the sequence instead of reusing 0
        second.evaluate(AlertView(values={"m": -1.0}))
        cleared = second.evaluate(AlertView(values={"m": -1.0}))
        assert cleared[0].seq == 1

    def test_load_events_round_trips(self, tmp_path):
        path = str(tmp_path / "alerts.jsonl")
        engine = AlertEngine(rules=(_low_rule(),), path=path)
        emitted = engine.evaluate(AlertView(values={"m": 1.0}, operations=7))
        assert load_events(path) == emitted

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ObservabilityError, match="malformed"):
            read_alert_log(str(path))

    def test_unstamped_line_rejected(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        path.write_text('{"seq": 0}\n')
        with pytest.raises(ObservabilityError, match="schema_version"):
            read_alert_log(str(path))

    def test_event_render_mentions_rule_and_value(self):
        event = AlertEvent(0, "fired", "r", "warning", "sum", 2.0, 1.0,
                           "cli", 12, 0.5)
        text = event.render()
        assert "[warning] fired r" in text
        assert "value 2" in text
        assert "at op 12" in text


class TestStoreIntegration:
    def test_quarantine_fires_the_critical_rule(self):
        store = XMLStore.open(StoreConfig(alerts_enabled=True))
        root = store.load_document("<r><a>x</a></r>")
        store.read(root + 1)
        assert store.alerts.evaluate_store(store, "test") == []
        store.pool.quarantine(0, ChecksumError("bad", block_no=0))
        fired = store.alerts.evaluate_store(store, "test")
        assert "quarantined-blocks" in [e.rule for e in fired]
        assert store.alerts.worst_active_severity() == "critical"

    def test_store_view_is_deterministic_only(self):
        store = XMLStore.open(
            StoreConfig(alerts_enabled=True, telemetry_enabled=True)
        )
        root = store.load_document("<r><a>x</a></r>")
        store.read(root + 1)
        view = store_view(store)
        assert not any(
            key.startswith("repro_span_seconds") for key in view.values
        )
        assert any(
            key.startswith("repro_span_simulated_seconds")
            for key in view.values
        )
        assert DRIFT_KEY in view.values
        assert view.values[SLO_BUDGET_KEY] == 1.0
        assert view.operations == store.operations.read_ops + store.operations.updates

    def test_interval_evaluation_via_observe(self):
        store = XMLStore.open(
            StoreConfig(alerts_enabled=True, alerts_interval=4)
        )
        root = store.load_document("<r><a>x</a></r>")
        before = store.alerts.evaluations
        for _ in range(8):
            store.read(root + 1)
        assert store.alerts.evaluations >= before + 2

    def test_checkpoint_skips_evaluation_when_idle(self):
        store = XMLStore.open(StoreConfig(alerts_enabled=True))
        store.load_document("<r/>")
        store.checkpoint()
        evaluations = store.alerts.evaluations
        store.checkpoint()  # no operations since the last one
        assert store.alerts.evaluations == evaluations

    def test_identical_runs_write_byte_identical_logs(self, tmp_path):
        def run(name):
            path = str(tmp_path / name)
            rules = (
                AlertRule("tokens-flowed", "info", "threshold", "s",
                          metric="repro_store_tokens_emitted_total",
                          op=">", bound=0.0),
            )
            store = XMLStore.open(StoreConfig())
            engine = AlertEngine(rules=rules, path=path)
            root = store.load_document("<r><a>x</a><b>y</b></r>")
            for _ in range(3):
                store.read(root + 1)
                engine.evaluate_store(store, "tick")
            return (tmp_path / name).read_bytes()

        assert run("a.jsonl") == run("b.jsonl")

    def test_directory_store_persists_alert_state(self, tmp_path):
        from repro.core.filestore import (
            ALERTS_FILE, close_directory, open_directory,
        )

        path = str(tmp_path / "store")
        config = StoreConfig(alerts_enabled=True)
        store = open_directory(path, config=config)
        store.load_document("<r><a>x</a></r>")
        store.pool.quarantine(0, ChecksumError("bad", block_no=0))
        store.alerts.evaluate_store(store, "test")
        close_directory(path, store)
        assert (tmp_path / "store" / ALERTS_FILE).exists()
        reopened = open_directory(path, config=config)
        try:
            assert "quarantined-blocks" in [
                e.rule for e in reopened.alerts.active()
            ]
        finally:
            reopened.wal.close()
            reopened.device.close()


class TestOfflineViews:
    def test_cumulative_values_counters_sum_gauges_keep_last(self):
        snapshots = [
            _snapshot(0, {"repro_wal_appends_total": 4.0,
                          "repro_buffer_cached_pages": 2.0}),
            _snapshot(1, {"repro_wal_appends_total": 6.0,
                          "repro_buffer_cached_pages": 5.0}),
        ]
        values = cumulative_values(snapshots)
        assert values["repro_wal_appends_total"] == 10.0
        assert values["repro_buffer_cached_pages"] == 5.0

    def test_history_view_carries_last_snapshot_totals(self):
        snapshots = [
            _snapshot(0, {"repro_wal_appends_total": 4.0},
                      operations=10, simulated=0.5),
            _snapshot(1, {"repro_wal_appends_total": 6.0},
                      operations=30, simulated=1.25),
        ]
        view = history_view(snapshots)
        assert view.operations == 30
        assert view.simulated_seconds == 1.25
        assert DRIFT_KEY in view.values

    def test_history_view_of_nothing_is_empty(self):
        view = history_view([])
        assert view.operations == 0
        assert view.value("anything") == 0.0


class TestFactoryAndDefaults:
    def test_create_alerts_disabled_returns_the_shared_noop(self):
        assert create_alerts(False) is NOOP_ALERTS
        assert create_alerts(False, path="/ignored") is NOOP_ALERTS

    def test_create_alerts_enabled_builds_a_live_engine(self, tmp_path):
        engine = create_alerts(True, path=str(tmp_path / "a.jsonl"),
                               interval=16)
        assert isinstance(engine, AlertEngine)
        assert engine.interval == 16

    def test_default_rules_are_valid_and_unique(self):
        rules = default_rules()
        names = [rule.name for rule in rules]
        assert len(set(names)) == len(names)
        assert {"checksum-errors", "quarantined-blocks",
                "slo-budget-exhausted", "buffer-thrash",
                "wal-surge", "scrub-overdue"} <= set(names)
        AlertEngine(rules=rules)  # constructs cleanly

    def test_default_rules_stay_quiet_on_a_clean_store(self):
        store = XMLStore.open(StoreConfig(alerts_enabled=True))
        root = store.load_document("<r><a>x</a></r>")
        store.read(root + 1)
        assert store.alerts.evaluate_store(store, "test") == []
