"""Metrics registry: counters, gauges, histogram bucket edges, no-ops."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NOOP_METRIC,
    NOOP_REGISTRY,
    format_value,
    sample_key,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c_total")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_labeled_children_are_distinct_and_stable(self):
        counter = Counter("c_total", labelnames=("path",))
        counter.labels(path="partial").inc()
        counter.labels(path="partial").inc()
        counter.labels(path="scan").inc()
        family = counter.collect()
        values = {sample_key(s): s.value for s in family.samples}
        assert values['c_total{path="partial"}'] == 2
        assert values['c_total{path="scan"}'] == 1

    def test_labeled_parent_rejects_direct_inc(self):
        counter = Counter("c_total", labelnames=("path",))
        with pytest.raises(ObservabilityError):
            counter.inc()

    def test_wrong_label_names_rejected(self):
        counter = Counter("c_total", labelnames=("path",))
        with pytest.raises(ObservabilityError):
            counter.labels(nope="x")

    def test_unlabeled_metric_rejects_labels(self):
        with pytest.raises(ObservabilityError):
            Counter("c_total").labels(path="x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13

    def test_callback_evaluated_at_collect(self):
        gauge = Gauge("g")
        state = {"v": 1.0}
        gauge.set_function(lambda: state["v"])
        assert gauge.value == 1.0
        state["v"] = 7.0
        assert gauge.collect().samples[0].value == 7.0


class TestHistogramBucketEdges:
    def test_exact_boundary_counts_into_le_bucket(self):
        # le semantics: value == bound lands in that bucket, not the next
        hist = Histogram("h", buckets=(1.0, 5.0, 10.0))
        hist.observe(1.0)
        hist.observe(5.0)
        hist.observe(10.0)
        counts = dict(hist.bucket_counts())
        assert counts[1.0] == 1
        assert counts[5.0] == 2
        assert counts[10.0] == 3
        assert counts[float("inf")] == 3

    def test_overflow_goes_to_inf_only(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(99.0)
        counts = dict(hist.bucket_counts())
        assert counts[1.0] == 0
        assert counts[float("inf")] == 1

    def test_below_first_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(0.0)
        assert dict(hist.bucket_counts())[1.0] == 1

    def test_sum_and_count(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5)
        hist.observe(2.5)
        assert hist.count == 2
        assert hist.sum == pytest.approx(3.0)

    def test_buckets_sorted_and_deduped(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=())
        hist = Histogram("h", buckets=(5.0, 1.0))
        assert hist.buckets == (1.0, 5.0)

    def test_samples_shape(self):
        hist = Histogram("h", buckets=(1.0,), labelnames=("op",))
        hist.labels(op="read").observe(0.5)
        names = [s.name for s in hist.collect().samples]
        assert names == ["h_bucket", "h_bucket", "h_sum", "h_count"]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total")
        second = registry.counter("x_total")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ObservabilityError):
            registry.gauge("x_total")

    def test_labelnames_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(ObservabilityError):
            registry.counter("x_total", labelnames=("b",))

    def test_snapshot_flattens_samples(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labelnames=("k",)).labels(k="v").inc(3)
        registry.gauge("g").set(1.5)
        snapshot = registry.snapshot()
        assert snapshot['c_total{k="v"}'] == 3
        assert snapshot["g"] == 1.5

    def test_thread_safety_smoke(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("t",))

        def worker(tag):
            child = counter.labels(t=tag)
            for _ in range(1000):
                child.inc()

        threads = [
            threading.Thread(target=worker, args=(str(i % 2),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(s.value for s in counter.collect().samples)
        assert total == 4000


class TestFormatting:
    def test_format_value(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(3.0) == "3"
        assert format_value(0.25) == "0.25"

    def test_sample_key_without_labels(self):
        registry = MetricsRegistry()
        registry.counter("plain_total").inc()
        assert "plain_total" in registry.snapshot()


class TestNoop:
    def test_noop_registry_hands_out_shared_metric(self):
        assert NOOP_REGISTRY.counter("anything") is NOOP_METRIC
        assert NOOP_REGISTRY.histogram("x") is NOOP_METRIC
        assert NOOP_METRIC.labels(a="b") is NOOP_METRIC

    def test_noop_swallows_updates(self):
        NOOP_METRIC.inc()
        NOOP_METRIC.observe(1.0)
        NOOP_METRIC.set(2.0)
        assert NOOP_REGISTRY.collect() == []
        assert NOOP_REGISTRY.snapshot() == {}
