"""Flight recorder: ring bounds, the three feeds, and determinism.

The recorder's contract: a bounded ring of event / alert / metric-frame
entries whose persisted form is a pure function of the workload — no
wall-clock readings ever reach an entry, so identical seeded runs
record byte-identically (the incident-determinism CI gate diffs the
dumps).
"""

import json

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.obs.recorder import (
    NOOP_RECORDER,
    FlightRecorder,
    create_recorder,
)


def _store(**overrides):
    defaults = dict(
        events_enabled=True, recorder_enabled=True, recorder_interval=4
    )
    defaults.update(overrides)
    store = XMLStore.open(StoreConfig(**defaults))
    store.load_document("<r><a>x</a><b>y</b></r>")
    return store


class TestRing:
    def test_capacity_bounds_the_ring_and_counts_drops(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("event", "test", f"e{index}", 0.0, {})
        assert len(recorder) == 3
        assert recorder.dropped == 2
        # oldest evicted: the survivors are the newest three, in order
        assert [entry.label for entry in recorder.entries()] == [
            "e2",
            "e3",
            "e4",
        ]

    def test_seq_is_monotone_across_evictions(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(4):
            recorder.record("event", "test", "e", 0.0, {})
        assert [entry.seq for entry in recorder.entries()] == [2, 3]
        assert recorder.entries(since=3)[0].seq == 3

    def test_clear_resets_entries_and_drop_counter(self):
        recorder = FlightRecorder(capacity=2)
        for _ in range(3):
            recorder.record("event", "test", "e", 0.0, {})
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0


class TestFeeds:
    def test_events_tee_into_the_ring_with_wall_stripped(self):
        store = _store()
        store.event_log.emit("test", "poke", severity="info", detail=7)
        entries = [
            entry
            for entry in store.recorder.entries()
            if entry.kind == "event" and entry.label == "poke"
        ]
        assert len(entries) == 1
        payload = entries[0].payload
        assert "wall" not in payload
        assert payload["fields"] == {"detail": 7}

    def test_alert_transitions_tee_into_the_ring(self):
        store = _store(alerts_enabled=True)
        # quarantining a block fires the critical checksum rules on the
        # next evaluation
        from repro.errors import ChecksumError

        store.pool.quarantine(99, ChecksumError("boom", block_no=99))
        store.alerts.evaluate_store(store, "test")
        alerts = [
            entry
            for entry in store.recorder.entries()
            if entry.kind == "alert"
        ]
        assert alerts, "fired alert never reached the recorder"
        assert alerts[0].label == "fired"
        assert "schema_version" not in alerts[0].payload

    def test_metric_frames_capture_deterministic_deltas(self):
        store = _store(recorder_interval=2)
        for _ in range(4):
            store.read()
        frames = [
            entry
            for entry in store.recorder.entries()
            if entry.kind == "metrics"
        ]
        assert frames, "no interval frame captured"
        for frame in frames:
            assert frame.source == "recorder"
            assert "operations" in frame.payload
            deltas = frame.payload["deltas"]
            assert all(
                not key.startswith("repro_span_seconds") for key in deltas
            ), "wall-clock key leaked into a recorder frame"

    def test_disabled_store_uses_the_shared_twin(self):
        store = XMLStore.open(StoreConfig(events_enabled=True))
        assert store.recorder is NOOP_RECORDER
        assert store.event_log.recorder is NOOP_RECORDER


class TestDeterminism:
    def _dump(self):
        store = _store(recorder_interval=2)
        for _ in range(3):
            store.read()
        store.event_log.emit("test", "poke", severity="info")
        return json.dumps(store.recorder.to_dict(), sort_keys=True)

    def test_identical_runs_record_byte_identically(self):
        assert self._dump() == self._dump()

    def test_to_dict_is_schema_stamped(self):
        recorder = FlightRecorder()
        assert recorder.to_dict()["schema_version"] == 1
        assert NOOP_RECORDER.to_dict()["schema_version"] == 1


def test_create_recorder_factory():
    assert create_recorder(False) is NOOP_RECORDER
    live = create_recorder(True, capacity=7, interval=3)
    assert live.enabled and live.capacity == 7 and live.interval == 3
