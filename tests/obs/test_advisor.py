"""Tuning advisor: rules, evidence, what-ifs, and vacuous-by-design."""

import struct

import pytest

from repro.core.config import IndexingPolicy, StoreConfig
from repro.core.store import XMLStore, _CATALOG_HEADER
from repro.obs import fingerprint as fp
from repro.obs.advisor import (
    MIN_OPERATIONS,
    AdvisorReport,
    advise,
    apply_recommendations,
)
from repro.obs.history import HistorySnapshot


def snap(seq, deltas, partial_index=None, heatmap=None):
    return HistorySnapshot(
        seq=seq,
        label="test",
        operations=0,
        simulated_seconds=0.0,
        deltas=deltas,
        partial_index=partial_index,
        heatmap=heatmap,
    )


def _loaded_store(**overrides):
    config = dict(policy=IndexingPolicy.RANGE_PLUS_PARTIAL)
    config.update(overrides)
    store = XMLStore.open(StoreConfig(**config))
    store.load_document(
        "<doc>"
        + "".join(f"<item n='{i}'>t{i}</item>" for i in range(20))
        + "</doc>"
    )
    return store


def _rules(report):
    return [rec.rule for rec in report.recommendations]


class TestVacuousByDesign:
    def test_empty_store(self):
        report = advise(XMLStore.open(StoreConfig()))
        assert report.vacuous
        assert report.vacuous_reason == "store is empty"
        assert report.recommendations == []
        assert "no recommendations" in report.render()

    def test_no_history(self):
        report = advise(_loaded_store())
        assert report.vacuous
        assert "no workload history" in report.vacuous_reason

    def test_insufficient_operations(self):
        store = _loaded_store(history_enabled=True, history_interval=1)
        store.read()  # far below MIN_OPERATIONS
        report = advise(store)
        assert report.vacuous
        assert "insufficient evidence" in report.vacuous_reason
        assert report.operations < MIN_OPERATIONS
        assert report.fingerprint is not None  # evidence shown even when thin

    def test_legacy_two_section_store_never_crashes(self, tmp_path):
        # build a pre-checksum store and strip its catalog down to the
        # legacy two-section layout (chain + ranges, no format section)
        store = _loaded_store(checksums_enabled=False)
        store.checkpoint()
        scheme_state = store.id_scheme.to_catalog()
        sections = [store.layout.chain.to_catalog(), store.ranges.to_catalog()]
        parts = [
            _CATALOG_HEADER.pack(
                store.range_index.root_block, -1, len(scheme_state), 2
            ),
            scheme_state,
        ]
        for section in sections:
            parts.append(struct.pack("<I", len(section)))
            parts.append(section)
        reopened = XMLStore.from_catalog(
            store.device,
            b"".join(parts),
            StoreConfig(policy=IndexingPolicy.RANGE_PLUS_PARTIAL),
        )
        assert not reopened.codec.checksums  # genuinely opened as legacy
        report = advise(reopened)
        assert report.vacuous
        assert "no workload history" in report.vacuous_reason
        assert report.recommendations == []

    def test_vacuous_report_is_json_ready(self):
        payload = advise(XMLStore.open(StoreConfig())).to_dict()
        assert payload["schema_version"] == 1
        assert payload["vacuous"] is True
        assert payload["recommendations"] == []


def _busy_window(seq=0, **extra_deltas):
    """A window big enough to clear MIN_OPERATIONS, with scan pressure."""
    deltas = {
        fp.K_NODE_READS: 64.0,
        fp.K_PATH_SCAN: 32.0,
        fp.K_TOKENS_SCANNED: 32.0 * 2048.0,
        fp.K_BUFFER_HITS: 64.0,
        fp.K_BUFFER_MISSES: 4.0,
    }
    deltas.update(extra_deltas)
    return deltas


class TestSplitRangesRule:
    def test_deep_scans_trigger_a_split(self):
        store = _loaded_store(policy=IndexingPolicy.RANGE)
        report = advise(store, snapshots=[snap(0, _busy_window())])
        assert not report.vacuous
        [rec] = [r for r in report.recommendations if r.rule == "split-ranges"]
        assert rec.knob == "max_range_tokens"
        assert rec.current is None
        # avg depth 2048 -> pow2_at_most(512) = 512, inside [64, 4096]
        assert rec.recommended == 512
        assert rec.what_if.saving_simulated_seconds > 0
        metrics = {e.metric for e in rec.evidence}
        assert fp.K_TOKENS_SCANNED in metrics

    def test_already_granular_config_is_left_alone(self):
        store = _loaded_store(
            policy=IndexingPolicy.RANGE, max_range_tokens=512
        )
        report = advise(store, snapshots=[snap(0, _busy_window())])
        assert "split-ranges" not in _rules(report)

    def test_shallow_scans_do_not_trigger(self):
        window = _busy_window()
        window[fp.K_TOKENS_SCANNED] = 32.0 * 16.0  # avg depth 16
        store = _loaded_store(policy=IndexingPolicy.RANGE)
        report = advise(store, snapshots=[snap(0, window)])
        assert "split-ranges" not in _rules(report)


class TestPartialIndexRules:
    def test_thrashing_memo_grows(self):
        store = _loaded_store(partial_index_capacity=32)
        window = _busy_window(
            **{
                "repro_partial_index_inserts_total": 64.0,
                "repro_partial_index_evictions_total": 40.0,
                'repro_partial_index_probes_total{result="hit"}': 8.0,
                'repro_partial_index_probes_total{result="miss"}': 56.0,
            }
        )
        report = advise(
            store, snapshots=[snap(0, window, partial_index={"entries": 32})]
        )
        [rec] = [
            r for r in report.recommendations if r.rule == "grow-partial-index"
        ]
        assert rec.knob == "partial_index_capacity"
        assert rec.recommended > 32
        assert rec.what_if.saving_simulated_seconds > 0

    def test_dead_memo_shrinks(self):
        store = _loaded_store(partial_index_capacity=4096)
        window = _busy_window(
            **{
                'repro_partial_index_probes_total{result="hit"}': 1.0,
                'repro_partial_index_probes_total{result="miss"}': 99.0,
            }
        )
        report = advise(
            store, snapshots=[snap(0, window, partial_index={"entries": 2048})]
        )
        [rec] = [
            r
            for r in report.recommendations
            if r.rule == "shrink-partial-index"
        ]
        assert rec.recommended < 4096
        assert rec.recommended >= 256

    def test_no_partial_index_no_rule(self):
        store = _loaded_store(policy=IndexingPolicy.RANGE)
        report = advise(store, snapshots=[snap(0, _busy_window())])
        assert not any("partial" in rule for rule in _rules(report))


class TestBufferPoolRule:
    def test_hot_set_larger_than_pool_grows_it(self):
        store = _loaded_store(buffer_pool_capacity=8)
        window = _busy_window(
            **{fp.K_BUFFER_HITS: 40.0, fp.K_BUFFER_MISSES: 60.0}
        )
        report = advise(
            store,
            snapshots=[snap(0, window, heatmap={"hot80_blocks": 48})],
        )
        [rec] = [
            r for r in report.recommendations if r.rule == "grow-buffer-pool"
        ]
        assert rec.knob == "buffer_pool_capacity"
        assert rec.current == 8
        assert rec.recommended == 64  # pow2_at_least(48)
        assert rec.what_if.saving_simulated_seconds > 0

    def test_fitting_hot_set_is_left_alone(self):
        store = _loaded_store(buffer_pool_capacity=64)
        report = advise(
            store,
            snapshots=[
                snap(0, _busy_window(), heatmap={"hot80_blocks": 48})
            ],
        )
        assert "grow-buffer-pool" not in _rules(report)


class TestCompactionRule:
    def test_fragmented_read_mostly_store_compacts(self):
        # many tiny ranges: granular splits during a large bulk load
        store = XMLStore.open(
            StoreConfig(policy=IndexingPolicy.RANGE, max_range_tokens=32)
        )
        store.load_document(
            "<doc>"
            + "".join(f"<item n='{i}'>t{i}</item>" for i in range(200))
            + "</doc>"
        )
        assert len(store.ranges) >= 32
        report = advise(store, snapshots=[snap(0, _busy_window())])
        [rec] = [
            r for r in report.recommendations if r.rule == "compact-ranges"
        ]
        assert rec.knob == "maintenance:compact"
        assert rec.recommended < rec.current
        assert rec.what_if.saving_simulated_seconds > 0

    def test_coarse_store_does_not_compact(self):
        store = _loaded_store(policy=IndexingPolicy.RANGE)
        report = advise(store, snapshots=[snap(0, _busy_window())])
        assert "compact-ranges" not in _rules(report)


class TestReportPlumbing:
    def test_report_includes_drift_and_fingerprint(self):
        store = _loaded_store()
        rows = [snap(i, _busy_window()) for i in range(6)]
        report = advise(store, snapshots=rows, window=2)
        assert not report.vacuous
        assert report.window == (0, 5)
        assert report.fingerprint["operations"] == 6 * 64.0
        assert len(report.drift) == 4

    def test_to_dict_round_trips_recommendations(self):
        store = _loaded_store(buffer_pool_capacity=8)
        report = advise(
            store,
            snapshots=[
                snap(
                    0,
                    _busy_window(
                        **{fp.K_BUFFER_HITS: 40.0, fp.K_BUFFER_MISSES: 60.0}
                    ),
                    heatmap={"hot80_blocks": 48},
                )
            ],
        )
        payload = report.to_dict()
        assert payload["schema_version"] == 1
        assert payload["vacuous"] is False
        rec = next(
            r
            for r in payload["recommendations"]
            if r["rule"] == "grow-buffer-pool"
        )
        assert rec["evidence"]
        assert rec["what_if"]["saving_simulated_seconds"] > 0

    def test_render_shows_rule_and_what_if(self):
        store = _loaded_store(policy=IndexingPolicy.RANGE)
        text = advise(store, snapshots=[snap(0, _busy_window())]).render()
        assert "[split-ranges]" in text
        assert "what-if:" in text
        assert "evidence:" in text

    def test_advise_is_deterministic(self):
        store = _loaded_store(policy=IndexingPolicy.RANGE)
        rows = [snap(i, _busy_window()) for i in range(4)]
        first = advise(store, snapshots=rows).to_dict()
        second = advise(store, snapshots=rows).to_dict()
        assert first == second


class TestApplyRecommendations:
    def test_config_knobs_are_applied(self):
        store = _loaded_store(
            policy=IndexingPolicy.RANGE_PLUS_PARTIAL, buffer_pool_capacity=8
        )
        window = _busy_window(
            **{fp.K_BUFFER_HITS: 40.0, fp.K_BUFFER_MISSES: 60.0}
        )
        report = advise(
            store, snapshots=[snap(0, window, heatmap={"hot80_blocks": 48})]
        )
        tuned = apply_recommendations(store.config, report)
        assert tuned.buffer_pool_capacity == 64
        assert tuned.max_range_tokens == 512
        assert tuned is not store.config

    def test_maintenance_knobs_are_skipped(self):
        config = StoreConfig()
        report = AdvisorReport(
            vacuous_reason=None,
            operations=100.0,
            window=(0, 1),
            fingerprint=None,
        )
        from repro.obs.advisor import Recommendation

        report.recommendations.append(
            Recommendation(
                rule="compact-ranges",
                knob="maintenance:compact",
                current=40,
                recommended=5,
                summary="compact",
            )
        )
        assert apply_recommendations(config, report) is config

    def test_empty_report_returns_the_same_config(self):
        config = StoreConfig()
        report = advise(XMLStore.open(StoreConfig()))
        assert apply_recommendations(config, report) is config
