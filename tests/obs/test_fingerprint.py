"""Workload fingerprints and the drift score between windows."""

import pytest

from repro.obs import fingerprint as fp
from repro.obs.fingerprint import (
    WorkloadFingerprint,
    drift_score,
    drift_series,
    fingerprint_window,
)
from repro.obs.history import HistorySnapshot


def snap(seq, deltas, heatmap=None):
    return HistorySnapshot(
        seq=seq,
        label="test",
        operations=0,
        simulated_seconds=0.0,
        deltas=deltas,
        heatmap=heatmap,
    )


def read_heavy(seq, heatmap=None):
    """64 node reads resolved half by memo, half by 512-token scans."""
    return snap(
        seq,
        {
            fp.K_NODE_READS: 64.0,
            fp.K_PATH_PARTIAL: 32.0,
            fp.K_PATH_SCAN: 32.0,
            fp.K_TOKENS_SCANNED: 32.0 * 512.0,
            fp.K_BUFFER_HITS: 96.0,
            fp.K_BUFFER_MISSES: 32.0,
        },
        heatmap=heatmap,
    )


def write_heavy(seq):
    """64 inserts, WAL-bound, no lookups."""
    return snap(
        seq,
        {
            fp.K_INSERTS: 64.0,
            fp.K_WAL_APPENDS: 128.0,
            fp.K_BUFFER_MISSES: 64.0,
        },
    )


class TestFingerprintWindow:
    def test_empty_window_is_none(self):
        assert fingerprint_window([]) is None

    def test_idle_window_is_none(self):
        assert fingerprint_window([snap(0, {}), snap(1, {})]) is None

    def test_component_math(self):
        finger = fingerprint_window(
            [
                snap(
                    0,
                    {
                        fp.K_READS: 4.0,
                        fp.K_NODE_READS: 2.0,
                        fp.K_INSERTS: 2.0,
                        fp.K_PATH_PARTIAL: 1.0,
                        fp.K_PATH_FULL: 1.0,
                        fp.K_PATH_SCAN: 2.0,
                        fp.K_TOKENS_SCANNED: 512.0,
                        fp.K_BUFFER_HITS: 3.0,
                        fp.K_BUFFER_MISSES: 1.0,
                        fp.K_WAL_APPENDS: 8.0,
                    },
                )
            ]
        )
        assert finger.operations == 8.0
        assert finger.read_fraction == 0.75
        assert finger.path_partial == 0.25
        assert finger.path_full == 0.25
        assert finger.path_scan == 0.5
        # avg scan depth 256 tokens squashes to 256/(256+256)
        assert finger.scan_depth == pytest.approx(0.5)
        assert finger.locality == 0.75
        # 1 append/op squashes to 1/(1+2)
        assert finger.write_pressure == pytest.approx(1.0 / 3.0)
        assert finger.heat_concentration == 0.0

    def test_components_are_bounded(self):
        for fingerprint in (
            fingerprint_window([read_heavy(0)]),
            fingerprint_window([write_heavy(0)]),
        ):
            for name in WorkloadFingerprint.COMPONENTS:
                assert 0.0 <= getattr(fingerprint, name) <= 1.0, name

    def test_heat_comes_from_latest_summarized_snapshot(self):
        window = [
            read_heavy(0, heatmap={"top_decile_share": 0.9}),
            read_heavy(1, heatmap=None),  # heatmap off in the later row
        ]
        assert fingerprint_window(window).heat_concentration == 0.9

    def test_window_sums_across_snapshots(self):
        one = fingerprint_window([read_heavy(0)])
        two = fingerprint_window([read_heavy(0), read_heavy(1)])
        assert two.operations == 2 * one.operations
        assert two.read_fraction == one.read_fraction

    def test_to_dict_lists_every_component(self):
        payload = fingerprint_window([read_heavy(0)]).to_dict()
        assert set(payload) == {"operations", *WorkloadFingerprint.COMPONENTS}


class TestDriftScore:
    def test_identical_windows_do_not_drift(self):
        a = fingerprint_window([read_heavy(0)])
        b = fingerprint_window([read_heavy(1)])
        assert drift_score(a, b) == 0.0

    def test_missing_fingerprint_is_not_drift(self):
        finger = fingerprint_window([read_heavy(0)])
        assert drift_score(None, finger) == 0.0
        assert drift_score(finger, None) == 0.0
        assert drift_score(None, None) == 0.0

    def test_workload_flip_scores_high_and_bounded(self):
        reads = fingerprint_window([read_heavy(0)])
        writes = fingerprint_window([write_heavy(1)])
        score = drift_score(reads, writes)
        assert 0.3 < score <= 1.0
        assert score == drift_score(writes, reads)  # symmetric

    def test_deterministic(self):
        reads = fingerprint_window([read_heavy(0)])
        writes = fingerprint_window([write_heavy(1)])
        assert drift_score(reads, writes) == drift_score(
            fingerprint_window([read_heavy(0)]),
            fingerprint_window([write_heavy(1)]),
        )


class TestDriftSeries:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            drift_series([read_heavy(0)], window=0)

    def test_short_timeline_yields_no_points(self):
        assert drift_series([read_heavy(0)], window=4) == []

    def test_flip_shows_up_in_the_series(self):
        timeline = [read_heavy(i) for i in range(4)] + [
            write_heavy(i) for i in range(4, 8)
        ]
        points = drift_series(timeline, window=2)
        assert [p["seq"] for p in points] == [2, 3, 4, 5, 6, 7]
        steady = points[0]["drift"]  # read window vs. read window
        flipped = max(p["drift"] for p in points)
        assert steady == 0.0
        assert flipped > 0.3
        assert all(0.0 <= p["drift"] <= 1.0 for p in points)
        assert points[-1]["fingerprint"]["operations"] == 128.0
