"""The wall-clock stack sampler (the statistical complement of the
deterministic cost profiler)."""

import json
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs.profile_export import SPEEDSCOPE_SCHEMA
from repro.obs.sampler import DEFAULT_SAMPLE_INTERVAL, StackSampler


def _busy_until_sampled(sampler, deadline_seconds=5.0):
    """Burn CPU in a recognizably-named frame until the sampler has
    caught at least one stack (bounded so a loaded CI box cannot hang)."""
    stop_at = time.monotonic() + deadline_seconds
    total = 0
    while sampler.total_samples < 2 and time.monotonic() < stop_at:
        for value in range(2000):
            total += value * value
    return total


class TestLifecycle:
    def test_interval_must_be_positive(self):
        for bad in (0, -0.1):
            with pytest.raises(ObservabilityError):
                StackSampler(interval=bad)

    def test_default_interval(self):
        assert StackSampler().interval == DEFAULT_SAMPLE_INTERVAL

    def test_double_start_rejected(self):
        sampler = StackSampler(interval=0.05)
        sampler.start()
        try:
            with pytest.raises(ObservabilityError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_is_idempotent(self):
        sampler = StackSampler(interval=0.05)
        sampler.start()
        sampler.stop()
        sampler.stop()  # second stop is a no-op, not an error
        assert sampler.elapsed_seconds > 0.0

    def test_no_samples_before_start(self):
        sampler = StackSampler()
        assert sampler.collapsed() == ""
        assert sampler.total_samples == 0


class TestSampling:
    def test_busy_workload_is_sampled(self):
        with StackSampler(interval=0.001) as sampler:
            _busy_until_sampled(sampler)
        assert sampler.total_samples >= 1
        # stacks are outermost-first and name this module's busy frame
        assert any(
            stack[-1].endswith(":_busy_until_sampled")
            for stack in sampler.samples
        )

    def test_collapsed_format(self):
        with StackSampler(interval=0.001) as sampler:
            _busy_until_sampled(sampler)
        text = sampler.collapsed()
        assert text.endswith("\n")
        counts = 0
        for line in text.strip().split("\n"):
            path, count = line.rsplit(" ", 1)
            assert ";" in path  # a real stack, not a single frame
            counts += int(count)
        assert counts == sampler.total_samples

    def test_speedscope_output(self):
        with StackSampler(interval=0.001) as sampler:
            _busy_until_sampled(sampler)
        document = json.loads(sampler.speedscope_json(name="busy"))
        assert document["$schema"] == SPEEDSCOPE_SCHEMA
        frames = document["shared"]["frames"]
        profile = document["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"])
        for sample, weight in zip(profile["samples"], profile["weights"]):
            for index in sample:
                assert 0 <= index < len(frames)
            # weights are seconds: count x interval
            assert weight == pytest.approx(
                round(weight / sampler.interval) * sampler.interval
            )
        assert profile["endValue"] == pytest.approx(
            sampler.total_samples * sampler.interval
        )
