"""Tracing: span nesting, ring-buffer overflow, the no-op fast path."""

import tracemalloc

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, NOOP_TRACER, NoopTracer, Tracer


class TestNesting:
    def test_depth_and_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
        events = {event.name: event for event in tracer.events()}
        assert events["outer"].depth == 0 and events["outer"].parent is None
        assert events["inner"].depth == 1
        assert events["inner"].parent == events["outer"].seq
        assert events["leaf"].depth == 2
        assert events["leaf"].parent == events["inner"].seq

    def test_inner_span_finishes_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [event.name for event in tracer.events()]
        assert names == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        events = {event.name: event for event in tracer.events()}
        assert events["a"].parent == events["parent"].seq
        assert events["b"].parent == events["parent"].seq
        assert tracer.active_depth == 0

    def test_error_recorded_in_fields(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise ValueError("boom")
        except ValueError:
            pass
        (event,) = tracer.events()
        assert event.fields["error"] == "ValueError"


class TestClocks:
    def test_wall_seconds_positive(self):
        tracer = Tracer()
        with tracer.span("s"):
            sum(range(1000))
        (event,) = tracer.events()
        assert event.wall_seconds > 0

    def test_simulated_clock_delta(self):
        clock = {"now": 1.0}
        tracer = Tracer(simulated_clock=lambda: clock["now"])
        with tracer.span("s"):
            clock["now"] = 3.5
        (event,) = tracer.events()
        assert event.simulated_seconds == 2.5


class TestRingBuffer:
    def test_overflow_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        events = tracer.events()
        assert [event.name for event in events] == ["s3", "s4"]
        assert tracer.dropped == 3

    def test_clear_resets(self):
        tracer = Tracer(capacity=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0


class TestSpanMetrics:
    def test_finished_spans_feed_registry(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("op"):
            pass
        snapshot = registry.snapshot()
        assert snapshot['repro_spans_total{span="op"}'] == 1
        assert snapshot['repro_span_seconds_count{span="op"}'] == 1

    def test_touch_preregisters_zero_series(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        tracer.touch("never_run")
        snapshot = registry.snapshot()
        assert snapshot['repro_spans_total{span="never_run"}'] == 0


class TestNoopTracer:
    def test_span_returns_shared_singleton(self):
        assert NOOP_TRACER.span("a") is NOOP_SPAN
        assert NOOP_TRACER.span("b", k=1) is NOOP_SPAN
        assert NoopTracer().span("c") is NOOP_SPAN

    def test_no_events_recorded(self):
        with NOOP_TRACER.span("a"):
            pass
        assert NOOP_TRACER.events() == []
        assert NOOP_TRACER.dropped == 0

    def test_disabled_path_allocates_no_event_objects(self):
        # one warm-up pass so caches/interned objects don't count
        with NOOP_TRACER.span("warm"):
            pass
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(100):
            with NOOP_TRACER.span("hot"):
                pass
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        leaked = sum(
            stat.size_diff for stat in after.compare_to(before, "lineno")
            if stat.size_diff > 0
        )
        # the loop itself may allocate trivial bookkeeping; 100 span
        # events would cost tens of kilobytes
        assert leaked < 2048
