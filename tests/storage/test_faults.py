"""Deterministic fault injection (repro.storage.faults)."""

import pytest

from repro.errors import BlockNotFoundError, SimulatedCrashError, StorageError
from repro.storage.disk import MemoryBlockDevice
from repro.storage.faults import (
    FaultConfig,
    FaultyDisk,
    WALFaultAdapter,
    build_fault_harness,
    find_fault_layer,
)
from repro.storage.wal import RecordType, WriteAheadLog

BLOCK = 512


def _disk(**config_kwargs):
    return FaultyDisk(MemoryBlockDevice(block_size=BLOCK), FaultConfig(**config_kwargs))


class TestVolatileSemantics:
    def test_write_is_volatile_until_sync(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"x" * BLOCK)
        assert disk.read_block(block) == b"x" * BLOCK  # the live process sees it
        assert disk.backend.read_block(block) == b"\x00" * BLOCK  # disk does not
        disk.sync()
        assert disk.backend.read_block(block) == b"x" * BLOCK

    def test_crash_discards_unsynced_writes(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"a" * BLOCK)
        disk.sync()
        disk.write_block(block, b"b" * BLOCK)
        assert disk.unsynced_writes == 1
        disk.crash()
        assert disk.unsynced_writes == 0
        assert disk.read_block(block) == b"a" * BLOCK  # last durable image

    def test_frees_are_deferred_to_sync(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"x" * BLOCK)
        disk.sync()
        disk.free_block(block)
        with pytest.raises(BlockNotFoundError):
            disk.read_block(block)  # the live view agrees it is gone
        assert block in list(disk.backend.block_numbers())  # disk does not, yet
        disk.sync()
        assert block not in list(disk.backend.block_numbers())

    def test_crash_revives_a_freed_but_unsynced_block(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"x" * BLOCK)
        disk.sync()
        disk.free_block(block)
        disk.crash()
        assert disk.read_block(block) == b"x" * BLOCK

    def test_num_blocks_and_block_numbers_reflect_the_live_view(self):
        disk = _disk()
        kept = disk.allocate_block()
        doomed = disk.allocate_block()
        disk.write_block(kept, b"k" * BLOCK)
        disk.write_block(doomed, b"d" * BLOCK)
        disk.sync()
        disk.free_block(doomed)
        assert disk.num_blocks == disk.backend.num_blocks - 1
        assert doomed not in list(disk.block_numbers())


class TestCrashPoints:
    def test_crash_at_write_point(self):
        disk = _disk(crash_at=1)
        block = disk.allocate_block()
        disk.write_block(block, b"a" * BLOCK)  # point 0
        with pytest.raises(SimulatedCrashError):
            disk.write_block(block, b"b" * BLOCK)  # point 1
        assert disk.clock.crashed
        assert disk.clock.crash_label == f"write:block={block}"
        assert disk.unsynced_writes == 0  # volatile state discarded

    def test_crash_mid_sync_persists_a_strict_subset(self):
        disk = _disk(crash_at=3, reorder_sync=False, torn_page_writes=False)
        blocks = [disk.allocate_block() for _ in range(3)]
        for block in blocks:
            disk.write_block(block, bytes([block % 251]) * BLOCK)  # points 0-2
        with pytest.raises(SimulatedCrashError):
            disk.sync()  # in-order flush: point 3 is the first block
        survived = [
            block
            for block in blocks
            if disk.backend.read_block(block) != b"\x00" * BLOCK
        ]
        assert survived == []  # crashed before the first flush landed
        assert disk.sync_attempts == 1
        assert disk.sync_completions == 0

    def test_dry_run_counts_and_labels_every_point(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"a" * BLOCK)
        disk.sync()
        assert disk.clock.ticks == 2
        assert disk.clock.points == [
            f"write:block={block}",
            f"sync:block={block}",
        ]

    def test_same_seed_same_point_sequence(self):
        def run(seed):
            disk = _disk(seed=seed)
            blocks = [disk.allocate_block() for _ in range(4)]
            for block in blocks:
                disk.write_block(block, b"z" * BLOCK)
            disk.sync()
            return disk.clock.points

        assert run(3) == run(3)
        # reordering makes different seeds flush in different orders
        assert run(3) != run(4) or run(3) == run(4)  # both legal; just deterministic


class TestTornWrites:
    def test_torn_block_keeps_a_sector_prefix(self):
        # one block pending, crash on its sync flush: the backend image
        # must be old suffix + new prefix at a sector boundary
        for seed in range(6):
            # points: write=0, first sync flush=1, write=2, second sync flush=3
            disk = FaultyDisk(
                MemoryBlockDevice(block_size=2048),
                FaultConfig(seed=seed, crash_at=3, reorder_sync=False),
            )
            block = disk.allocate_block()
            disk.write_block(block, b"O" * 2048)
            disk.sync()
            disk.write_block(block, b"N" * 2048)
            with pytest.raises(SimulatedCrashError):
                disk.sync()
            image = disk.backend.read_block(block)
            kept = len(image) - len(image.lstrip(b"N"))
            assert kept % 512 == 0  # sector-aligned tear
            assert image == b"N" * kept + b"O" * (2048 - kept)
            assert disk.torn_blocks == [block] or kept == 0

    def test_torn_writes_disabled_leaves_the_old_image(self):
        disk = _disk(crash_at=3, torn_page_writes=False, reorder_sync=False)
        block = disk.allocate_block()
        disk.write_block(block, b"O" * BLOCK)
        disk.sync()
        disk.write_block(block, b"N" * BLOCK)
        with pytest.raises(SimulatedCrashError):
            disk.sync()
        assert disk.backend.read_block(block) == b"O" * BLOCK
        assert disk.torn_blocks == []


class TestWALFaults:
    def test_torn_append_is_rejected_by_crc_framing(self):
        harness = build_fault_harness(
            FaultConfig(seed=1, crash_at=1), MemoryBlockDevice(block_size=BLOCK)
        )
        wal = WriteAheadLog()
        wal.fault_adapter = harness.wal_adapter
        wal.append(RecordType.LOAD_DOCUMENT, b"payload-zero")  # frame 0
        with pytest.raises(SimulatedCrashError):
            wal.append(RecordType.LOAD_DOCUMENT, b"payload-one")  # frame 1 torn
        assert harness.wal_adapter.frames_completed == 1
        survivors = WriteAheadLog.from_bytes(wal.to_bytes())
        records = list(survivors.records())
        assert [record.payload for record in records] == [b"payload-zero"]

    def test_adapter_counts_only_complete_frames(self):
        harness = build_fault_harness(
            FaultConfig(), MemoryBlockDevice(block_size=BLOCK)
        )
        wal = WriteAheadLog()
        wal.fault_adapter = harness.wal_adapter
        for index in range(3):
            wal.append(RecordType.LOAD_DOCUMENT, b"p%d" % index)
        assert harness.wal_adapter.frames_completed == 3
        assert harness.clock.points == [f"wal:frame={i}" for i in range(3)]


class TestHarnessPlumbing:
    def test_build_wires_one_clock_through_everything(self):
        harness = build_fault_harness(
            FaultConfig(seed=9), MemoryBlockDevice(block_size=BLOCK)
        )
        assert harness.disk.clock is harness.clock
        assert harness.wal_adapter.clock is harness.clock
        assert harness.device.backend is harness.disk
        assert isinstance(harness.wal_adapter, WALFaultAdapter)

    def test_find_fault_layer_unwraps_the_chain(self):
        harness = build_fault_harness(
            FaultConfig(), MemoryBlockDevice(block_size=BLOCK)
        )
        assert find_fault_layer(harness.device) is harness.disk
        assert find_fault_layer(harness.disk) is harness.disk
        assert find_fault_layer(MemoryBlockDevice(block_size=BLOCK)) is None
        assert find_fault_layer(None) is None

    def test_fault_classes_parsing(self):
        config = FaultConfig.from_classes("torn-page,reorder")
        assert config.torn_page_writes
        assert not config.torn_wal_appends
        assert config.reorder_sync
        assert FaultConfig.from_classes("none") == FaultConfig(
            torn_page_writes=False, torn_wal_appends=False, reorder_sync=False
        )
        all_on = FaultConfig.from_classes("all")
        assert all_on.torn_page_writes and all_on.torn_wal_appends
        with pytest.raises(StorageError):
            FaultConfig.from_classes("torn-floppy")
