"""Deterministic fault injection (repro.storage.faults)."""

import pytest

from repro.errors import BlockNotFoundError, SimulatedCrashError, StorageError
from repro.storage.disk import MemoryBlockDevice
from repro.storage.faults import (
    FaultConfig,
    FaultyDisk,
    WALFaultAdapter,
    build_fault_harness,
    find_fault_layer,
)
from repro.storage.wal import RecordType, WriteAheadLog

BLOCK = 512


def _disk(**config_kwargs):
    return FaultyDisk(MemoryBlockDevice(block_size=BLOCK), FaultConfig(**config_kwargs))


class TestVolatileSemantics:
    def test_write_is_volatile_until_sync(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"x" * BLOCK)
        assert disk.read_block(block) == b"x" * BLOCK  # the live process sees it
        assert disk.backend.read_block(block) == b"\x00" * BLOCK  # disk does not
        disk.sync()
        assert disk.backend.read_block(block) == b"x" * BLOCK

    def test_crash_discards_unsynced_writes(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"a" * BLOCK)
        disk.sync()
        disk.write_block(block, b"b" * BLOCK)
        assert disk.unsynced_writes == 1
        disk.crash()
        assert disk.unsynced_writes == 0
        assert disk.read_block(block) == b"a" * BLOCK  # last durable image

    def test_frees_are_deferred_to_sync(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"x" * BLOCK)
        disk.sync()
        disk.free_block(block)
        with pytest.raises(BlockNotFoundError):
            disk.read_block(block)  # the live view agrees it is gone
        assert block in list(disk.backend.block_numbers())  # disk does not, yet
        disk.sync()
        assert block not in list(disk.backend.block_numbers())

    def test_crash_revives_a_freed_but_unsynced_block(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"x" * BLOCK)
        disk.sync()
        disk.free_block(block)
        disk.crash()
        assert disk.read_block(block) == b"x" * BLOCK

    def test_num_blocks_and_block_numbers_reflect_the_live_view(self):
        disk = _disk()
        kept = disk.allocate_block()
        doomed = disk.allocate_block()
        disk.write_block(kept, b"k" * BLOCK)
        disk.write_block(doomed, b"d" * BLOCK)
        disk.sync()
        disk.free_block(doomed)
        assert disk.num_blocks == disk.backend.num_blocks - 1
        assert doomed not in list(disk.block_numbers())


class TestCrashPoints:
    def test_crash_at_write_point(self):
        disk = _disk(crash_at=1)
        block = disk.allocate_block()
        disk.write_block(block, b"a" * BLOCK)  # point 0
        with pytest.raises(SimulatedCrashError):
            disk.write_block(block, b"b" * BLOCK)  # point 1
        assert disk.clock.crashed
        assert disk.clock.crash_label == f"write:block={block}"
        assert disk.unsynced_writes == 0  # volatile state discarded

    def test_crash_mid_sync_persists_a_strict_subset(self):
        disk = _disk(crash_at=3, reorder_sync=False, torn_page_writes=False)
        blocks = [disk.allocate_block() for _ in range(3)]
        for block in blocks:
            disk.write_block(block, bytes([block % 251]) * BLOCK)  # points 0-2
        with pytest.raises(SimulatedCrashError):
            disk.sync()  # in-order flush: point 3 is the first block
        survived = [
            block
            for block in blocks
            if disk.backend.read_block(block) != b"\x00" * BLOCK
        ]
        assert survived == []  # crashed before the first flush landed
        assert disk.sync_attempts == 1
        assert disk.sync_completions == 0

    def test_dry_run_counts_and_labels_every_point(self):
        disk = _disk()
        block = disk.allocate_block()
        disk.write_block(block, b"a" * BLOCK)
        disk.sync()
        assert disk.clock.ticks == 2
        assert disk.clock.points == [
            f"write:block={block}",
            f"sync:block={block}",
        ]

    def test_same_seed_same_point_sequence(self):
        def run(seed):
            disk = _disk(seed=seed)
            blocks = [disk.allocate_block() for _ in range(4)]
            for block in blocks:
                disk.write_block(block, b"z" * BLOCK)
            disk.sync()
            return disk.clock.points

        assert run(3) == run(3)
        # reordering makes different seeds flush in different orders
        assert run(3) != run(4) or run(3) == run(4)  # both legal; just deterministic


class TestTornWrites:
    def test_torn_block_keeps_a_sector_prefix(self):
        # one block pending, crash on its sync flush: the backend image
        # must be old suffix + new prefix at a sector boundary
        for seed in range(6):
            # points: write=0, first sync flush=1, write=2, second sync flush=3
            disk = FaultyDisk(
                MemoryBlockDevice(block_size=2048),
                FaultConfig(seed=seed, crash_at=3, reorder_sync=False),
            )
            block = disk.allocate_block()
            disk.write_block(block, b"O" * 2048)
            disk.sync()
            disk.write_block(block, b"N" * 2048)
            with pytest.raises(SimulatedCrashError):
                disk.sync()
            image = disk.backend.read_block(block)
            kept = len(image) - len(image.lstrip(b"N"))
            assert kept % 512 == 0  # sector-aligned tear
            assert image == b"N" * kept + b"O" * (2048 - kept)
            assert disk.torn_blocks == [block] or kept == 0

    def test_torn_writes_disabled_leaves_the_old_image(self):
        disk = _disk(crash_at=3, torn_page_writes=False, reorder_sync=False)
        block = disk.allocate_block()
        disk.write_block(block, b"O" * BLOCK)
        disk.sync()
        disk.write_block(block, b"N" * BLOCK)
        with pytest.raises(SimulatedCrashError):
            disk.sync()
        assert disk.backend.read_block(block) == b"O" * BLOCK
        assert disk.torn_blocks == []


class TestWALFaults:
    def test_torn_append_is_rejected_by_crc_framing(self):
        harness = build_fault_harness(
            FaultConfig(seed=1, crash_at=1), MemoryBlockDevice(block_size=BLOCK)
        )
        wal = WriteAheadLog()
        wal.fault_adapter = harness.wal_adapter
        wal.append(RecordType.LOAD_DOCUMENT, b"payload-zero")  # frame 0
        with pytest.raises(SimulatedCrashError):
            wal.append(RecordType.LOAD_DOCUMENT, b"payload-one")  # frame 1 torn
        assert harness.wal_adapter.frames_completed == 1
        survivors = WriteAheadLog.from_bytes(wal.to_bytes())
        records = list(survivors.records())
        assert [record.payload for record in records] == [b"payload-zero"]

    def test_adapter_counts_only_complete_frames(self):
        harness = build_fault_harness(
            FaultConfig(), MemoryBlockDevice(block_size=BLOCK)
        )
        wal = WriteAheadLog()
        wal.fault_adapter = harness.wal_adapter
        for index in range(3):
            wal.append(RecordType.LOAD_DOCUMENT, b"p%d" % index)
        assert harness.wal_adapter.frames_completed == 3
        assert harness.clock.points == [f"wal:frame={i}" for i in range(3)]


class TestHarnessPlumbing:
    def test_build_wires_one_clock_through_everything(self):
        harness = build_fault_harness(
            FaultConfig(seed=9), MemoryBlockDevice(block_size=BLOCK)
        )
        assert harness.disk.clock is harness.clock
        assert harness.wal_adapter.clock is harness.clock
        assert harness.device.backend is harness.disk
        assert isinstance(harness.wal_adapter, WALFaultAdapter)

    def test_find_fault_layer_unwraps_the_chain(self):
        harness = build_fault_harness(
            FaultConfig(), MemoryBlockDevice(block_size=BLOCK)
        )
        assert find_fault_layer(harness.device) is harness.disk
        assert find_fault_layer(harness.disk) is harness.disk
        assert find_fault_layer(MemoryBlockDevice(block_size=BLOCK)) is None
        assert find_fault_layer(None) is None

    def test_fault_classes_parsing(self):
        config = FaultConfig.from_classes("torn-page,reorder")
        assert config.torn_page_writes
        assert not config.torn_wal_appends
        assert config.reorder_sync
        assert FaultConfig.from_classes("none") == FaultConfig(
            torn_page_writes=False, torn_wal_appends=False, reorder_sync=False
        )
        all_on = FaultConfig.from_classes("all")
        assert all_on.torn_page_writes and all_on.torn_wal_appends
        with pytest.raises(StorageError):
            FaultConfig.from_classes("torn-floppy")


class TestFaultClassRegistry:
    """FAULT_CLASSES is the single source of truth: the parser, the CLI
    help text and the CI matrix must all stay derived from it."""

    def test_registry_partitions_into_crash_and_media(self):
        from repro.storage.faults import CRASH_CLASSES, FAULT_CLASSES, MEDIA_CLASSES

        assert set(CRASH_CLASSES) == {"torn-page", "torn-wal", "reorder"}
        assert set(MEDIA_CLASSES) == {"bitrot", "lost_write", "misdirect"}
        assert len(FAULT_CLASSES) == len(CRASH_CLASSES) + len(MEDIA_CLASSES)
        assert all(c.kind in ("crash", "media") for c in FAULT_CLASSES)
        assert all(c.description for c in FAULT_CLASSES)

    def test_every_registered_class_round_trips_through_the_parser(self):
        from repro.storage.faults import FAULT_CLASSES

        flag_for = {
            "torn-page": "torn_page_writes",
            "torn-wal": "torn_wal_appends",
            "reorder": "reorder_sync",
            "bitrot": "bitrot",
            "lost_write": "lost_writes",
            "misdirect": "misdirected_writes",
        }
        assert set(flag_for) == {c.name for c in FAULT_CLASSES}
        for fault_class in FAULT_CLASSES:
            config = FaultConfig.from_classes(fault_class.name)
            for name, flag in flag_for.items():
                assert getattr(config, flag) == (name == fault_class.name), (
                    f"{fault_class.name} should enable exactly {flag}"
                )

    def test_all_means_every_crash_class_and_no_media_class(self):
        config = FaultConfig.from_classes("all")
        assert config.torn_page_writes and config.torn_wal_appends
        assert config.reorder_sync
        assert not config.media_faults_enabled

    def test_media_classes_compose_with_crash_classes(self):
        config = FaultConfig.from_classes("torn-page,bitrot,misdirect")
        assert config.torn_page_writes and not config.torn_wal_appends
        assert config.bitrot and config.misdirected_writes
        assert not config.lost_writes
        assert config.media_faults_enabled

    def test_unknown_class_is_rejected_with_the_known_names(self):
        with pytest.raises(StorageError) as excinfo:
            FaultConfig.from_classes("bit-rot")
        assert "bitrot" in str(excinfo.value)

    def test_help_text_names_every_class(self):
        from repro.storage.faults import FAULT_CLASSES, fault_classes_help

        help_text = fault_classes_help()
        for fault_class in FAULT_CLASSES:
            assert fault_class.name in help_text

    def test_ci_matrix_entries_parse_against_the_registry(self):
        """Every --fault-classes value the CI workflow runs must be
        accepted by the parser, so the matrix cannot drift from the
        registry (and vice versa: renaming a class breaks this test
        before it breaks CI)."""
        import os
        import re

        workflow = os.path.join(
            os.path.dirname(__file__), "..", "..", ".github", "workflows", "ci.yml"
        )
        with open(workflow) as handle:
            text = handle.read()
        match = re.search(r"fault-classes:\s*\[([^\]]+)\]", text)
        assert match, "ci.yml lost its torture fault-classes matrix"
        entries = [
            entry.strip().strip("'\"")
            for entry in match.group(1).split(",\n")
            for entry in entry.split(", ")
            if entry.strip()
        ]
        assert entries, "empty fault-classes matrix"
        for entry in entries:
            FaultConfig.from_classes(entry)  # must not raise
        # the media classes are exercised by at least one matrix entry
        media_covered = any(
            FaultConfig.from_classes(entry).media_faults_enabled
            for entry in entries
        )
        assert media_covered, "no CI matrix entry enables the media classes"
