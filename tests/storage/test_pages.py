"""Unit tests for the slotted page."""

import pytest

from repro.errors import PageFullError, RecordTooLargeError, SlotNotFoundError
from repro.storage.pages import PAGE_HEADER_SIZE, RECORD_OVERHEAD, SlottedPage, page_capacity


class TestBasics:
    def test_empty_page(self):
        page = SlottedPage(256)
        assert len(page) == 0
        assert page.free_space == 256 - PAGE_HEADER_SIZE - RECORD_OVERHEAD

    def test_append_and_read(self):
        page = SlottedPage(256)
        slot = page.append(b"alpha")
        assert slot == 0
        assert page.record(0) == b"alpha"

    def test_slot_order_is_insertion_order(self):
        page = SlottedPage(256, [b"a", b"b", b"c"])
        assert page.records() == [b"a", b"b", b"c"]

    def test_insert_at_position_shifts_right(self):
        page = SlottedPage(256, [b"a", b"c"])
        page.insert(1, b"b")
        assert page.records() == [b"a", b"b", b"c"]

    def test_insert_at_front(self):
        page = SlottedPage(256, [b"b"])
        page.insert(0, b"a")
        assert page.records() == [b"a", b"b"]

    def test_insert_position_out_of_range(self):
        page = SlottedPage(256, [b"a"])
        with pytest.raises(SlotNotFoundError):
            page.insert(5, b"x")

    def test_delete_shifts_left(self):
        page = SlottedPage(256, [b"a", b"b", b"c"])
        removed = page.delete(1)
        assert removed == b"b"
        assert page.records() == [b"a", b"c"]

    def test_delete_reclaims_space(self):
        page = SlottedPage(256)
        page.append(b"x" * 50)
        free_before = page.free_space
        page.delete(0)
        assert page.free_space == free_before + 50 + RECORD_OVERHEAD

    def test_read_bad_slot_raises(self):
        page = SlottedPage(256, [b"a"])
        with pytest.raises(SlotNotFoundError):
            page.record(1)
        with pytest.raises(SlotNotFoundError):
            page.record(-1)

    def test_replace_in_place(self):
        page = SlottedPage(256, [b"a", b"b"])
        page.replace(0, b"bigger-record")
        assert page.records() == [b"bigger-record", b"b"]

    def test_replace_that_does_not_fit_raises(self):
        page = SlottedPage(64)
        page.append(b"a")
        with pytest.raises(PageFullError):
            page.replace(0, b"x" * 100)

    def test_empty_record_allowed(self):
        page = SlottedPage(64)
        page.append(b"")
        assert page.record(0) == b""


class TestCapacity:
    def test_page_full_raises(self):
        page = SlottedPage(64)
        page.append(b"x" * page.free_space)
        with pytest.raises(PageFullError):
            page.append(b"y")

    def test_record_too_large_is_permanent_error(self):
        page = SlottedPage(64)
        with pytest.raises(RecordTooLargeError):
            page.append(b"x" * 64)

    def test_fits_predicate_matches_append(self):
        page = SlottedPage(64)
        record = b"x" * page.free_space
        assert page.fits(record)
        page.append(record)
        assert not page.fits(b"y")

    def test_page_capacity_helper(self):
        assert page_capacity(4096) == 4096 - PAGE_HEADER_SIZE - RECORD_OVERHEAD

    def test_extend_is_atomic(self):
        page = SlottedPage(64)
        big = [b"x" * 20, b"y" * 20, b"z" * 40]
        with pytest.raises(PageFullError):
            page.extend(big)
        assert len(page) == 0  # nothing was inserted

    def test_many_small_records_fill_page(self):
        page = SlottedPage(256)
        count = 0
        while page.fits(b"ab"):
            page.append(b"ab")
            count += 1
        assert count == (256 - PAGE_HEADER_SIZE) // (2 + RECORD_OVERHEAD)


class TestSplit:
    def test_split_moves_tail(self):
        page = SlottedPage(256, [b"a", b"b", b"c", b"d"])
        tail = page.split(2)
        assert page.records() == [b"a", b"b"]
        assert tail.records() == [b"c", b"d"]

    def test_split_at_zero_moves_everything(self):
        page = SlottedPage(256, [b"a", b"b"])
        tail = page.split(0)
        assert page.records() == []
        assert tail.records() == [b"a", b"b"]

    def test_split_at_end_moves_nothing(self):
        page = SlottedPage(256, [b"a"])
        tail = page.split(1)
        assert page.records() == [b"a"]
        assert tail.records() == []

    def test_split_frees_space_in_source(self):
        page = SlottedPage(256, [b"x" * 50, b"y" * 50])
        free_before = page.free_space
        page.split(1)
        assert page.free_space == free_before + 50 + RECORD_OVERHEAD

    def test_split_bad_position(self):
        page = SlottedPage(256, [b"a"])
        with pytest.raises(SlotNotFoundError):
            page.split(5)


class TestSerialization:
    def test_roundtrip(self):
        page = SlottedPage(128, [b"first", b"", b"third-record"])
        data = page.to_bytes()
        assert len(data) == 128
        back = SlottedPage.from_bytes(data)
        assert back.records() == [b"first", b"", b"third-record"]
        assert back.free_space == page.free_space

    def test_empty_page_roundtrip(self):
        page = SlottedPage(64)
        back = SlottedPage.from_bytes(page.to_bytes())
        assert len(back) == 0

    def test_binary_safe_records(self):
        payload = bytes(range(256))[:100]
        page = SlottedPage(256, [payload])
        back = SlottedPage.from_bytes(page.to_bytes())
        assert back.record(0) == payload

    def test_full_page_roundtrip(self):
        page = SlottedPage(128)
        while page.fits(b"1234567890"):
            page.append(b"1234567890")
        back = SlottedPage.from_bytes(page.to_bytes())
        assert back.records() == page.records()


class TestChecksumCodec:
    """The checksum frame: detection is the codec's whole job."""

    def _framed(self, block_size=256):
        from repro.storage.pages import PageCodec

        return PageCodec(block_size, checksums=True)

    def test_roundtrip(self):
        codec = self._framed()
        page = codec.new_page()
        page.append(b"hello")
        page.append(b"world")
        image = codec.encode(page, block_no=7)
        back = codec.decode(image, block_no=7)
        assert back.records() == [b"hello", b"world"]

    def test_frame_steals_overhead_from_the_page(self):
        from repro.storage.pages import CHECKSUM_OVERHEAD, PageCodec

        framed = PageCodec(256, checksums=True)
        raw = PageCodec(256, checksums=False)
        assert framed.page_size == 256 - CHECKSUM_OVERHEAD
        assert raw.page_size == 256

    def test_bitrot_is_detected(self):
        from repro.errors import ChecksumError

        codec = self._framed()
        page = codec.new_page()
        page.append(b"payload")
        image = bytearray(codec.encode(page, block_no=3))
        image[-1] ^= 0x01  # one flipped bit, in the slack no less
        with pytest.raises(ChecksumError) as excinfo:
            codec.decode(bytes(image), block_no=3)
        assert excinfo.value.block_no == 3
        assert excinfo.value.expected_crc != excinfo.value.actual_crc

    def test_misdirected_write_is_detected(self):
        """The CRC covers the block number: a valid image landing on the
        wrong block fails verification even though its bytes are intact."""
        from repro.errors import ChecksumError

        codec = self._framed()
        page = codec.new_page()
        page.append(b"payload")
        image = codec.encode(page, block_no=3)
        codec.decode(image, block_no=3)  # sanity: the image itself is fine
        with pytest.raises(ChecksumError):
            codec.decode(image, block_no=4)

    def test_corrupt_magic_is_an_error_not_a_fallback(self):
        """A damaged frame header must never demote the image to the
        legacy raw decode path (the catalog, not the bytes, decides)."""
        from repro.errors import ChecksumError

        codec = self._framed()
        image = bytearray(codec.encode(codec.new_page(), block_no=0))
        image[0] ^= 0xFF
        with pytest.raises(ChecksumError):
            codec.decode(bytes(image), block_no=0)

    def test_truncated_image_is_an_error(self):
        from repro.errors import ChecksumError

        codec = self._framed()
        with pytest.raises(ChecksumError):
            codec.decode(b"\x01", block_no=0)

    def test_legacy_codec_is_a_pass_through(self):
        from repro.storage.pages import PageCodec

        codec = PageCodec(256, checksums=False)
        page = codec.new_page()
        page.append(b"rec")
        assert codec.encode(page, block_no=9) == page.to_bytes()
        assert codec.decode(page.to_bytes(), block_no=9).records() == [b"rec"]

    def test_inspect_does_not_raise(self):
        codec = self._framed()
        page = codec.new_page()
        page.append(b"x")
        good = codec.encode(page, block_no=1)
        ok, stored, computed = codec.inspect(good, block_no=1)
        assert ok and stored == computed
        bad = bytearray(good)
        bad[-1] ^= 0x80
        ok, stored, computed = codec.inspect(bytes(bad), block_no=1)
        assert not ok and stored != computed

    def test_inspect_is_vacuous_on_legacy_images(self):
        from repro.storage.pages import PageCodec

        codec = PageCodec(256, checksums=False)
        assert codec.inspect(b"anything at all", block_no=0) == (True, None, None)

    def test_block_too_small_for_frame_rejected(self):
        from repro.errors import StorageError
        from repro.storage.pages import PageCodec

        with pytest.raises(StorageError):
            PageCodec(8, checksums=True)
