"""Unit tests for the write-ahead log and payload codecs."""

import struct

import pytest

from repro.errors import WALError
from repro.storage.recovery import decode_op_payload, encode_op_payload
from repro.storage.wal import RecordType, WriteAheadLog


class TestAppendAndScan:
    def test_lsns_are_sequential(self):
        wal = WriteAheadLog()
        assert wal.append(RecordType.LOAD_DOCUMENT, b"a") == 0
        assert wal.append(RecordType.DELETE_NODE, b"b") == 1
        assert wal.next_lsn == 2

    def test_records_scan_in_order(self):
        wal = WriteAheadLog()
        wal.append(RecordType.LOAD_DOCUMENT, b"doc")
        wal.append(RecordType.INSERT_AFTER, b"frag")
        records = list(wal.records())
        assert [r.record_type for r in records] == [
            RecordType.LOAD_DOCUMENT,
            RecordType.INSERT_AFTER,
        ]
        assert [r.payload for r in records] == [b"doc", b"frag"]

    def test_empty_log(self):
        wal = WriteAheadLog()
        assert list(wal.records()) == []
        assert wal.records_after_last_checkpoint() == []

    def test_type_name(self):
        wal = WriteAheadLog()
        wal.append(RecordType.DELETE_NODE, b"")
        record = next(iter(wal.records()))
        assert record.type_name == "delete_node"


class TestCheckpoint:
    def test_replay_set_empty_right_after_checkpoint(self):
        wal = WriteAheadLog()
        wal.append(RecordType.LOAD_DOCUMENT, b"doc")
        wal.checkpoint()
        assert wal.records_after_last_checkpoint() == []

    def test_replay_set_contains_post_checkpoint_records(self):
        wal = WriteAheadLog()
        wal.append(RecordType.LOAD_DOCUMENT, b"doc")
        wal.checkpoint()
        wal.append(RecordType.DELETE_NODE, b"x")
        wal.append(RecordType.INSERT_BEFORE, b"y")
        pending = wal.records_after_last_checkpoint()
        assert [r.payload for r in pending] == [b"x", b"y"]

    def test_multiple_checkpoints_use_the_last(self):
        wal = WriteAheadLog()
        wal.append(RecordType.LOAD_DOCUMENT, b"doc")
        wal.checkpoint()
        wal.append(RecordType.DELETE_NODE, b"a")
        wal.checkpoint()
        wal.append(RecordType.DELETE_NODE, b"b")
        pending = wal.records_after_last_checkpoint()
        assert [r.payload for r in pending] == [b"b"]

    def test_truncate_empties_log(self):
        wal = WriteAheadLog()
        wal.append(RecordType.LOAD_DOCUMENT, b"doc")
        wal.truncate()
        assert list(wal.records()) == []


class TestDurabilityAndCorruption:
    def test_file_backed_log_survives_reopen(self, tmp_path):
        path = str(tmp_path / "store.wal")
        wal = WriteAheadLog(path)
        wal.append(RecordType.LOAD_DOCUMENT, b"persisted")
        wal.close()
        wal2 = WriteAheadLog(path)
        records = list(wal2.records())
        assert records[0].payload == b"persisted"
        assert wal2.next_lsn == 1  # continues the LSN sequence
        wal2.close()

    def test_torn_tail_record_is_discarded(self, tmp_path):
        path = str(tmp_path / "store.wal")
        wal = WriteAheadLog(path)
        wal.append(RecordType.LOAD_DOCUMENT, b"good")
        wal.append(RecordType.DELETE_NODE, b"will-be-torn")
        wal.close()
        # chop the last 3 bytes off, simulating a crash mid-write
        with open(path, "r+b") as f:
            f.seek(0, 2)
            f.truncate(f.tell() - 3)
        wal2 = WriteAheadLog(path)
        records = list(wal2.records())
        assert [r.payload for r in records] == [b"good"]
        wal2.close()

    def test_corrupt_crc_stops_scan(self, tmp_path):
        path = str(tmp_path / "store.wal")
        wal = WriteAheadLog(path)
        wal.append(RecordType.LOAD_DOCUMENT, b"good")
        wal.append(RecordType.DELETE_NODE, b"corrupted")
        wal.close()
        with open(path, "r+b") as f:
            data = bytearray(f.read())
            data[-1] ^= 0xFF  # flip a payload bit in the last record
            f.seek(0)
            f.write(data)
        wal2 = WriteAheadLog(path)
        assert [r.payload for r in wal2.records()] == [b"good"]
        wal2.close()


class TestPayloadCodec:
    def test_roundtrip(self):
        payload = encode_op_payload(b"\x01\x02", "<a>x</a>")
        id_bytes, xml = decode_op_payload(payload)
        assert id_bytes == b"\x01\x02"
        assert xml == "<a>x</a>"

    def test_empty_id(self):
        id_bytes, xml = decode_op_payload(encode_op_payload(b"", "<doc/>"))
        assert id_bytes == b""
        assert xml == "<doc/>"

    def test_unicode_xml(self):
        _, xml = decode_op_payload(encode_op_payload(b"i", "<a>héllo ✓</a>"))
        assert xml == "<a>héllo ✓</a>"

    def test_truncated_payload_raises(self):
        with pytest.raises(WALError):
            decode_op_payload(b"\x01")

    def test_truncated_id_raises(self):
        with pytest.raises(WALError):
            decode_op_payload(struct.pack("<I", 10) + b"abc")


class TestSerializationRoundtrip:
    def _populated(self):
        wal = WriteAheadLog()
        wal.append(RecordType.LOAD_DOCUMENT, b"alpha")
        wal.append(RecordType.INSERT_AFTER, b"beta")
        wal.checkpoint()
        wal.append(RecordType.DELETE_NODE, b"gamma")
        return wal

    def test_to_bytes_from_bytes_preserves_everything(self):
        wal = self._populated()
        clone = WriteAheadLog.from_bytes(wal.to_bytes())
        assert [
            (r.lsn, r.record_type, r.payload) for r in clone.records()
        ] == [(r.lsn, r.record_type, r.payload) for r in wal.records()]
        assert clone.to_bytes() == wal.to_bytes()

    def test_from_bytes_resumes_lsn_allocation(self):
        wal = self._populated()
        clone = WriteAheadLog.from_bytes(wal.to_bytes())
        original_last = list(wal.records())[-1].lsn
        clone.append(RecordType.LOAD_DOCUMENT, b"delta")
        assert list(clone.records())[-1].lsn == original_last + 1

    def test_to_bytes_does_not_disturb_the_log(self):
        wal = self._populated()
        before = [r.lsn for r in wal.records()]
        wal.to_bytes()
        wal.append(RecordType.LOAD_DOCUMENT, b"after")
        assert [r.lsn for r in wal.records()][:-1] == before

    def test_from_bytes_drops_a_torn_tail(self):
        data = self._populated().to_bytes()
        clone = WriteAheadLog.from_bytes(data[:-3])  # tear the last frame
        payloads = [r.payload for r in clone.records()]
        assert payloads == [b"alpha", b"beta", b""]  # gamma's frame is torn

    def test_empty_roundtrip(self):
        clone = WriteAheadLog.from_bytes(WriteAheadLog().to_bytes())
        assert list(clone.records()) == []
