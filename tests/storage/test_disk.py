"""Unit tests for block devices, instrumentation and the cost model."""

import pytest

from repro.errors import BlockNotFoundError, DiskFaultError, StorageError
from repro.storage.disk import (
    DiskCostModel,
    DiskStats,
    FaultInjector,
    FileBlockDevice,
    InstrumentedDevice,
    MemoryBlockDevice,
)


class TestMemoryBlockDevice:
    def test_allocate_returns_zeroed_block(self):
        dev = MemoryBlockDevice(block_size=128)
        block = dev.allocate_block()
        assert dev.read_block(block) == b"\x00" * 128

    def test_write_then_read_roundtrip(self):
        dev = MemoryBlockDevice(block_size=128)
        block = dev.allocate_block()
        dev.write_block(block, b"hello")
        assert dev.read_block(block).startswith(b"hello")
        assert len(dev.read_block(block)) == 128

    def test_write_pads_to_block_size(self):
        dev = MemoryBlockDevice(block_size=64)
        block = dev.allocate_block()
        dev.write_block(block, b"ab")
        assert dev.read_block(block) == b"ab" + b"\x00" * 62

    def test_oversized_write_rejected(self):
        dev = MemoryBlockDevice(block_size=64)
        block = dev.allocate_block()
        with pytest.raises(StorageError):
            dev.write_block(block, b"x" * 65)

    def test_read_unallocated_block_raises(self):
        dev = MemoryBlockDevice()
        with pytest.raises(BlockNotFoundError):
            dev.read_block(0)

    def test_write_unallocated_block_raises(self):
        dev = MemoryBlockDevice()
        with pytest.raises(BlockNotFoundError):
            dev.write_block(7, b"data")

    def test_free_then_reuse_block_number(self):
        dev = MemoryBlockDevice()
        a = dev.allocate_block()
        dev.free_block(a)
        b = dev.allocate_block()
        assert b == a

    def test_free_unknown_block_raises(self):
        dev = MemoryBlockDevice()
        with pytest.raises(BlockNotFoundError):
            dev.free_block(3)

    def test_num_blocks_counts_live_blocks(self):
        dev = MemoryBlockDevice()
        blocks = [dev.allocate_block() for _ in range(4)]
        dev.free_block(blocks[1])
        assert dev.num_blocks == 3

    def test_block_numbers_sorted(self):
        dev = MemoryBlockDevice()
        for _ in range(5):
            dev.allocate_block()
        assert list(dev.block_numbers()) == [0, 1, 2, 3, 4]

    def test_too_small_block_size_rejected(self):
        with pytest.raises(StorageError):
            MemoryBlockDevice(block_size=8)


class TestFileBlockDevice:
    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "data.db")
        dev = FileBlockDevice(path, block_size=128)
        block = dev.allocate_block()
        dev.write_block(block, b"persist me")
        dev.sync()
        dev.close()
        dev2 = FileBlockDevice(path, block_size=128)
        assert dev2.read_block(block).startswith(b"persist me")
        dev2.close()

    def test_allocation_grows_file(self, tmp_path):
        path = str(tmp_path / "data.db")
        dev = FileBlockDevice(path, block_size=128)
        for _ in range(3):
            dev.allocate_block()
        dev.sync()
        assert (tmp_path / "data.db").stat().st_size == 3 * 128
        dev.close()

    def test_freed_block_is_reused(self, tmp_path):
        dev = FileBlockDevice(str(tmp_path / "d.db"), block_size=128)
        a = dev.allocate_block()
        dev.free_block(a)
        assert dev.allocate_block() == a
        dev.close()

    def test_read_out_of_range_raises(self, tmp_path):
        dev = FileBlockDevice(str(tmp_path / "d.db"), block_size=128)
        with pytest.raises(BlockNotFoundError):
            dev.read_block(0)
        dev.close()

    def test_corrupt_file_size_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)  # not a multiple of 128
        with pytest.raises(StorageError):
            FileBlockDevice(str(path), block_size=128)


class TestDiskCostModel:
    def test_random_access_costs_a_seek(self):
        model = DiskCostModel(seek_seconds=0.01, transfer_seconds_per_block=0.001)
        assert model.cost(sequential=False, is_write=False) == pytest.approx(0.011)

    def test_sequential_access_skips_the_seek(self):
        model = DiskCostModel(seek_seconds=0.01, transfer_seconds_per_block=0.001)
        assert model.cost(sequential=True, is_write=False) == pytest.approx(0.001)

    def test_write_penalty_scales_transfer_only(self):
        model = DiskCostModel(
            seek_seconds=0.01, transfer_seconds_per_block=0.001, write_penalty=2.0
        )
        assert model.cost(sequential=True, is_write=True) == pytest.approx(0.002)
        assert model.cost(sequential=False, is_write=True) == pytest.approx(0.012)


class TestInstrumentedDevice:
    def test_counts_reads_and_writes(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        a = dev.allocate_block()
        dev.write_block(a, b"x")
        dev.read_block(a)
        dev.read_block(a)
        assert dev.stats.writes == 1
        assert dev.stats.reads == 2
        assert dev.stats.allocations == 1

    def test_sequential_detection(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        blocks = [dev.allocate_block() for _ in range(3)]
        for b in blocks:
            dev.read_block(b)  # 0,1,2: last two are sequential
        assert dev.stats.reads == 3
        assert dev.stats.sequential_reads == 2
        assert dev.stats.random_reads == 1

    def test_simulated_clock_advances(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        a = dev.allocate_block()
        before = dev.stats.simulated_seconds
        dev.read_block(a)
        assert dev.stats.simulated_seconds > before

    def test_random_read_costs_more_than_sequential(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        blocks = [dev.allocate_block() for _ in range(4)]
        dev.read_block(blocks[0])
        t0 = dev.stats.simulated_seconds
        dev.read_block(blocks[1])  # sequential
        seq_cost = dev.stats.simulated_seconds - t0
        t1 = dev.stats.simulated_seconds
        dev.read_block(blocks[3])  # random
        rand_cost = dev.stats.simulated_seconds - t1
        assert rand_cost > seq_cost

    def test_stats_snapshot_and_delta(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        a = dev.allocate_block()
        dev.read_block(a)
        snap = dev.stats.snapshot()
        dev.read_block(a)
        delta = dev.stats.delta(snap)
        assert delta.reads == 1
        assert snap.reads == 1

    def test_stats_reset(self):
        stats = DiskStats(reads=5, writes=2, simulated_seconds=1.0)
        stats.reset()
        assert stats.reads == 0 and stats.simulated_seconds == 0.0

    def test_sync_counter_tracks_durability_barriers(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        assert dev.stats.syncs == 0
        dev.sync()
        dev.sync()
        assert dev.stats.syncs == 2
        snap = dev.stats.snapshot()
        dev.sync()
        assert dev.stats.delta(snap).syncs == 1
        dev.stats.reset()
        assert dev.stats.syncs == 0

    def test_fault_injection_fires(self):
        boom = FaultInjector(lambda op, block, stats: op == "write" and stats.writes >= 1)
        dev = InstrumentedDevice(MemoryBlockDevice(), fault_injector=boom)
        a = dev.allocate_block()
        dev.write_block(a, b"ok")
        with pytest.raises(DiskFaultError):
            dev.write_block(a, b"boom")
        assert boom.fired == 1

    def test_passthrough_block_numbers_and_free(self):
        dev = InstrumentedDevice(MemoryBlockDevice())
        a = dev.allocate_block()
        b = dev.allocate_block()
        dev.free_block(a)
        assert list(dev.block_numbers()) == [b]
        assert dev.stats.frees == 1
