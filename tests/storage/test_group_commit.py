"""Group-commit WAL batching (repro.storage.wal deferred appends +
repro.server.group_commit) under deterministic crash injection.

The durability contract: a commit batch shares one sync barrier, and a
crash anywhere in the append stream loses *whole transactions* from the
tail — never a partial transaction (the TXN_COMMIT frame CRC discards a
torn tail).  Sync count is bounded by the number of groups, not the
number of transactions.
"""

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.errors import SimulatedCrashError
from repro.server.group_commit import GroupCommitQueue, PerCommitQueue
from repro.server.sessions import SessionOp, XMLServer
from repro.storage.disk import MemoryBlockDevice
from repro.storage.faults import FaultConfig, build_fault_harness
from repro.storage.txnlog import decode_commit
from repro.storage.wal import RecordType, WriteAheadLog

BASE = "<lib><s1>a</s1><s2>b</s2><s3>c</s3><s4>d</s4></lib>"
# element ids: 1=lib, 2=s1, 4=s2, 6=s3, 8=s4
SUBTREES = (2, 4, 6, 8)


def writer_program(index):
    """Two inserts per transaction — atomicity needs >1 op to matter."""
    target = SUBTREES[index % len(SUBTREES)]
    return [
        SessionOp("insert_into_last", target, f"<w{index}a>x</w{index}a>"),
        SessionOp("insert_into_last", target, f"<w{index}b>y</w{index}b>"),
    ]


def run_server(store, writers=4, script=None):
    server = XMLServer(store)
    sessions = [server.submit(writer_program(i)) for i in range(writers)]
    report = server.run(script=script or list(range(writers * 16)))
    return server, sessions, report


class TestBarrierSharing:
    def test_deferred_appends_share_one_barrier(self):
        wal = WriteAheadLog()
        barriers_before = wal.sync_barriers
        for _ in range(5):
            wal.append(RecordType.TXN_COMMIT, b"payload", sync=False)
        assert wal.pending_frames == 5
        assert wal.sync_barriers == barriers_before  # nothing paid yet
        assert wal.sync() == 5
        assert wal.sync_barriers == barriers_before + 1
        assert wal.group_commits == 1
        assert wal.group_commit_batches == [5]

    def test_sync_with_nothing_pending_is_free(self):
        wal = WriteAheadLog()
        assert wal.sync() == 0
        assert wal.sync_barriers == 0
        assert wal.group_commits == 0

    def test_server_batches_concurrent_commits(self):
        store = XMLStore.open(StoreConfig(server_group_commit_max_batch=8))
        store.load_document(BASE)
        barriers_after_load = store.wal.sync_barriers
        server, sessions, report = run_server(store, writers=4)
        assert all(s.outcome == "committed" for s in sessions)
        assert all(s.durable for s in sessions)
        commit_barriers = store.wal.sync_barriers - barriers_after_load
        # 4 commits, strictly fewer barriers than transactions
        assert commit_barriers < 4
        assert sum(report.group_commit_batches) == 4

    def test_sync_count_bounded_by_group_count(self):
        store = XMLStore.open(StoreConfig(server_group_commit_max_batch=2))
        store.load_document(BASE)
        barriers_after_load = store.wal.sync_barriers
        run_server(store, writers=4)
        commit_barriers = store.wal.sync_barriers - barriers_after_load
        assert commit_barriers <= store.wal.group_commits
        assert store.wal.group_commits <= 4 // 2 + 1

    def test_per_commit_queue_is_the_unbatched_baseline(self):
        store = XMLStore.open(StoreConfig(server_group_commit=False))
        store.load_document(BASE)
        barriers_after_load = store.wal.sync_barriers
        server, sessions, _ = run_server(store, writers=4)
        assert isinstance(server.group_commit, PerCommitQueue)
        assert all(s.outcome == "committed" for s in sessions)
        # one barrier per committed transaction, no grouping
        assert store.wal.sync_barriers - barriers_after_load == 4
        assert store.wal.group_commits == 0


class TestQueueSemantics:
    def test_enqueue_with_nothing_pending_is_immediately_durable(self):
        wal = WriteAheadLog()
        queue = GroupCommitQueue(wal, max_batch=4)

        class Stub:
            session_id = 1
            durable = False

        session = Stub()
        assert queue.enqueue(session) is False
        assert session.durable is True

    def test_flush_marks_all_waiters_durable(self):
        wal = WriteAheadLog()
        queue = GroupCommitQueue(wal, max_batch=4)

        class Stub:
            def __init__(self, n):
                self.session_id = n
                self.durable = False

        waiters = []
        for n in range(3):
            wal.append(RecordType.TXN_COMMIT, b"p", sync=False)
            stub = Stub(n)
            assert queue.enqueue(stub) is True
            waiters.append(stub)
        assert not queue.should_flush  # 3 < max_batch
        queue.flush(reason="test")
        assert all(w.durable for w in waiters)
        assert queue.waiting == []
        assert wal.group_commit_batches == [3]


class TestCrashDurability:
    def _run_to_crash(self, crash_at):
        """One seeded serving run over a faulty disk, crashed at WAL
        frame ``crash_at``; returns (wal bytes, frames completed)."""
        config = StoreConfig(page_size=512, server_group_commit_max_batch=2)
        harness = build_fault_harness(
            FaultConfig(seed=9, crash_at=crash_at, torn_wal_appends=True),
            MemoryBlockDevice(block_size=512),
            cost_model=config.cost_model,
        )
        wal = WriteAheadLog()
        wal.fault_adapter = harness.wal_adapter
        store = XMLStore.open(config, device=harness.device, wal=wal)
        crashed = False
        try:
            store.load_document(BASE)
            run_server(store, writers=4)
        except SimulatedCrashError:
            crashed = True
        harness.disk.crash()
        return wal.to_bytes(), harness.wal_adapter.frames_completed, crashed

    def _control_states(self):
        """Document content after each durable frame prefix of the same
        (deterministic) run, crash-free."""
        config = StoreConfig(page_size=512, server_group_commit_max_batch=2)
        store = XMLStore.open(config)
        store.load_document(BASE)
        run_server(store, writers=4)
        records = list(store.wal.records())
        states = []
        for prefix in range(len(records) + 1):
            replayed = WriteAheadLog()
            for record in records[:prefix]:
                replayed.append(record.record_type, record.payload)
            states.append(XMLStore.recover(replayed).read())
        return records, states

    def test_crash_loses_whole_transactions_never_partial_frames(self):
        records, states = self._control_states()
        commit_frames = [
            record for record in records
            if record.record_type == RecordType.TXN_COMMIT
        ]
        assert len(commit_frames) == 4
        # each commit frame holds a whole transaction (2 ops)
        for record in commit_frames:
            assert len(decode_commit(record.payload).ops) == 2
        for crash_at in range(len(records) + 1):
            wal_bytes, durable_frames, crashed = self._run_to_crash(crash_at)
            recovered = XMLStore.recover(WriteAheadLog.from_bytes(wal_bytes))
            observed = recovered.read()
            # the durable image is exactly a frame-prefix state: whole
            # transactions up to the crash, the torn tail discarded
            assert observed == states[durable_frames], (
                f"crash_at={crash_at}: recovered content is not the "
                f"{durable_frames}-frame prefix state"
            )
            # atomicity: a writer's two inserts appear together or not
            # at all
            for index in range(4):
                assert (f"<w{index}a>" in observed) == (f"<w{index}b>" in observed)

    def test_crash_free_faulty_run_matches_plain_run(self):
        wal_bytes, durable_frames, crashed = self._run_to_crash(crash_at=None)
        assert not crashed
        records, states = self._control_states()
        assert durable_frames == len(records)
        recovered = XMLStore.recover(WriteAheadLog.from_bytes(wal_bytes))
        assert recovered.read() == states[-1]
