"""Unit tests for the chained block file (document-order backbone)."""

import pytest

from repro.errors import BlockNotFoundError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice
from repro.storage.heap import ChainedFile, Position


def make_chain(block_size=128, capacity=8):
    device = InstrumentedDevice(MemoryBlockDevice(block_size=block_size))
    pool = BufferPool(device, capacity=capacity)
    return ChainedFile(pool), pool, device


def all_records(chain):
    return [record for _, record in chain.records()]


class TestChainStructure:
    def test_empty_chain(self):
        chain, _, _ = make_chain()
        assert chain.head is None and chain.tail is None
        assert list(chain.blocks()) == []
        assert all_records(chain) == []

    def test_append_block_creates_head_and_tail(self):
        chain, _, _ = make_chain()
        b = chain.append_block()
        assert chain.head == b == chain.tail
        chain.check_integrity()

    def test_insert_block_after(self):
        chain, _, _ = make_chain()
        a = chain.append_block()
        b = chain.insert_block_after(a)
        c = chain.insert_block_after(a)
        assert list(chain.blocks()) == [a, c, b]
        chain.check_integrity()

    def test_insert_block_before_head(self):
        chain, _, _ = make_chain()
        a = chain.append_block()
        b = chain.insert_block_before(a)
        assert list(chain.blocks()) == [b, a]
        assert chain.head == b
        chain.check_integrity()

    def test_insert_block_before_middle(self):
        chain, _, _ = make_chain()
        a = chain.append_block()
        c = chain.insert_block_after(a)
        b = chain.insert_block_before(c)
        assert list(chain.blocks()) == [a, b, c]
        chain.check_integrity()

    def test_remove_middle_block(self):
        chain, _, _ = make_chain()
        a = chain.append_block()
        b = chain.append_block()
        c = chain.append_block()
        chain.remove_block(b)
        assert list(chain.blocks()) == [a, c]
        chain.check_integrity()

    def test_remove_head_and_tail(self):
        chain, _, _ = make_chain()
        a = chain.append_block()
        b = chain.append_block()
        chain.remove_block(a)
        assert chain.head == b
        chain.remove_block(b)
        assert chain.head is None and chain.tail is None

    def test_unknown_block_raises(self):
        chain, _, _ = make_chain()
        with pytest.raises(BlockNotFoundError):
            chain.next_block(99)
        with pytest.raises(BlockNotFoundError):
            chain.fetch(99)


class TestRecords:
    def test_append_records_in_order(self):
        chain, _, _ = make_chain()
        chain.append_records([b"a", b"b", b"c"])
        assert all_records(chain) == [b"a", b"b", b"c"]

    def test_append_spills_across_blocks(self):
        chain, _, _ = make_chain(block_size=64)
        records = [b"x" * 20 for _ in range(10)]
        chain.append_records(records)
        assert chain.num_blocks > 1
        assert all_records(chain) == records
        chain.check_integrity()

    def test_read_record_by_position(self):
        chain, _, _ = make_chain()
        positions = chain.append_records([b"a", b"b"])
        assert chain.read_record(positions[1]) == b"b"

    def test_insert_records_mid_block(self):
        chain, _, _ = make_chain()
        chain.append_records([b"a", b"d"])
        chain.insert_records(Position(chain.head, 1), [b"b", b"c"])
        assert all_records(chain) == [b"a", b"b", b"c", b"d"]

    def test_insert_records_at_front(self):
        chain, _, _ = make_chain()
        chain.append_records([b"b"])
        chain.insert_records(Position(chain.head, 0), [b"a"])
        assert all_records(chain) == [b"a", b"b"]

    def test_mid_block_insert_splits_full_block(self):
        chain, _, _ = make_chain(block_size=64)
        chain.append_records([b"a" * 18, b"c" * 18])
        head = chain.head
        chain.insert_records(Position(head, 1), [b"b" * 30])
        assert all_records(chain) == [b"a" * 18, b"b" * 30, b"c" * 18]
        chain.check_integrity()

    def test_large_run_insert_preserves_order(self):
        chain, _, _ = make_chain(block_size=64)
        chain.append_records([b"HEAD", b"TAIL"])
        run = [bytes([65 + i]) * 12 for i in range(12)]
        chain.insert_records(Position(chain.head, 1), run)
        assert all_records(chain) == [b"HEAD"] + run + [b"TAIL"]
        chain.check_integrity()

    def test_insert_bad_slot_raises(self):
        chain, _, _ = make_chain()
        chain.append_records([b"a"])
        with pytest.raises(StorageError):
            chain.insert_records(Position(chain.head, 5), [b"x"])

    def test_records_from_start_position(self):
        chain, _, _ = make_chain(block_size=64)
        positions = chain.append_records([b"x" * 20 for _ in range(8)])
        tail = list(chain.records(start=positions[5]))
        assert [r for _, r in tail] == [b"x" * 20] * 3
        assert tail[0][0] == positions[5]

    def test_delete_record(self):
        chain, _, _ = make_chain()
        chain.append_records([b"a", b"b", b"c"])
        removed = chain.delete_record(Position(chain.head, 1))
        assert removed == b"b"
        assert all_records(chain) == [b"a", b"c"]

    def test_replace_record_in_place(self):
        chain, _, _ = make_chain()
        chain.append_records([b"a", b"b"])
        chain.replace_record(Position(chain.head, 0), b"A")
        assert all_records(chain) == [b"A", b"b"]

    def test_replace_record_that_overflows_block(self):
        chain, _, _ = make_chain(block_size=64)
        chain.append_records([b"a" * 20, b"b" * 20])
        chain.replace_record(Position(chain.head, 0), b"Z" * 40)
        assert all_records(chain) == [b"Z" * 40, b"b" * 20]
        chain.check_integrity()


class TestSplitBlock:
    def test_split_block_moves_tail_records(self):
        chain, _, _ = make_chain()
        chain.append_records([b"a", b"b", b"c", b"d"])
        head = chain.head
        new_block = chain.split_block(head, 2)
        assert list(chain.blocks()) == [head, new_block]
        assert chain.block_record_count(head) == 2
        assert chain.block_record_count(new_block) == 2
        assert all_records(chain) == [b"a", b"b", b"c", b"d"]
        chain.check_integrity()

    def test_split_preserves_order_with_following_blocks(self):
        chain, _, _ = make_chain(block_size=64)
        records = [bytes([97 + i]) * 15 for i in range(10)]
        chain.append_records(records)
        first = chain.head
        chain.split_block(first, 1)
        assert all_records(chain) == records
        chain.check_integrity()


class TestCatalog:
    def test_catalog_roundtrip(self):
        chain, pool, _ = make_chain(block_size=64)
        chain.append_records([b"x" * 20 for _ in range(10)])
        data = chain.to_catalog()
        restored = ChainedFile.from_catalog(pool, data)
        assert list(restored.blocks()) == list(chain.blocks())
        assert all_records(restored) == all_records(chain)
        restored.check_integrity()

    def test_empty_catalog_roundtrip(self):
        chain, pool, _ = make_chain()
        restored = ChainedFile.from_catalog(pool, chain.to_catalog())
        assert restored.head is None and restored.tail is None


class TestDurability:
    def test_records_survive_flush_and_fresh_pool(self):
        device = InstrumentedDevice(MemoryBlockDevice(block_size=128))
        pool = BufferPool(device, capacity=4)
        chain = ChainedFile(pool)
        chain.append_records([b"persisted", b"records"])
        catalog = chain.to_catalog()
        pool.flush_all()
        fresh_pool = BufferPool(device, capacity=4)
        restored = ChainedFile.from_catalog(fresh_pool, catalog)
        assert all_records(restored) == [b"persisted", b"records"]
