"""Unit tests for the free-space map."""

from repro.storage.freespace import FreeSpaceMap


class TestFreeSpaceMap:
    def test_record_and_query(self):
        fsm = FreeSpaceMap()
        fsm.record(3, 120)
        assert fsm.free_bytes(3) == 120

    def test_unknown_block_is_none(self):
        fsm = FreeSpaceMap()
        assert fsm.free_bytes(9) is None
        assert fsm.has_room(9, 10) is None

    def test_has_room(self):
        fsm = FreeSpaceMap()
        fsm.record(1, 50)
        assert fsm.has_room(1, 50) is True
        assert fsm.has_room(1, 51) is False

    def test_negative_free_clamped_to_zero(self):
        fsm = FreeSpaceMap()
        fsm.record(1, -10)
        assert fsm.free_bytes(1) == 0

    def test_forget(self):
        fsm = FreeSpaceMap()
        fsm.record(1, 10)
        fsm.forget(1)
        assert fsm.free_bytes(1) is None
        fsm.forget(1)  # idempotent

    def test_blocks_with_room(self):
        fsm = FreeSpaceMap()
        fsm.record(1, 10)
        fsm.record(2, 100)
        fsm.record(3, 55)
        hits = dict(fsm.blocks_with_room(55))
        assert hits == {2: 100, 3: 55}

    def test_len(self):
        fsm = FreeSpaceMap()
        fsm.record(1, 1)
        fsm.record(2, 2)
        assert len(fsm) == 2

    def test_catalog_roundtrip(self):
        fsm = FreeSpaceMap()
        fsm.record(5, 99)
        fsm.record(7, 0)
        restored = FreeSpaceMap.from_catalog(fsm.to_catalog())
        assert restored.free_bytes(5) == 99
        assert restored.free_bytes(7) == 0
        assert len(restored) == 2

    def test_empty_catalog_roundtrip(self):
        restored = FreeSpaceMap.from_catalog(FreeSpaceMap().to_catalog())
        assert len(restored) == 0
