"""Online scrubber (repro.storage.scrub): out-of-band verification of
every owned block against the raw device image."""

import pytest

from repro.core.config import StoreConfig
from repro.core.store import XMLStore
from repro.storage.scrub import DATA_CHAIN, Scrubber, scrub_store


def make_store(checksums=True, orders=6):
    store = XMLStore.open(
        StoreConfig(
            page_size=512, buffer_pool_capacity=8, checksums_enabled=checksums
        )
    )
    root = store.load_document("<r/>")
    for index in range(orders):
        store.insert_into_last(root, f"<e n='{index}'>payload-{index}</e>")
    store.checkpoint()
    return store


def corrupt_block(store, block_no):
    image = bytearray(store.device.read_block(block_no))
    image[-1] ^= 0x20
    store.device.write_block(block_no, bytes(image))


class TestCleanScrub:
    def test_clean_store_scrubs_ok(self):
        store = make_store()
        report = scrub_store(store)
        assert report.ok and report.complete and not report.legacy
        assert report.blocks_total > 0
        assert report.blocks_checked + report.blocks_skipped == report.blocks_total
        assert report.bad_blocks() == []

    def test_every_owned_block_is_visited(self):
        store = make_store()
        scrubber = Scrubber(store)
        owned = {block for block, _ in scrubber._blocks}
        assert set(store.layout.chain.blocks()) <= owned
        scrubber.step()
        assert scrubber.report.complete

    def test_render_is_humane(self):
        report = scrub_store(make_store())
        text = report.render()
        assert "scrub: OK" in text
        assert "verified" in text


class TestCorruptionDetection:
    def test_rotted_chain_block_is_reported_and_quarantined(self):
        store = make_store()
        victim = next(iter(store.layout.chain.blocks()))
        corrupt_block(store, victim)
        report = scrub_store(store)
        assert not report.ok
        assert report.bad_blocks() == [victim]
        [issue] = report.issues
        assert issue.owner == DATA_CHAIN
        assert issue.kind == "checksum"
        assert issue.expected_crc != issue.actual_crc
        assert store.pool.is_quarantined(victim)

    def test_duplicate_detection_is_collapsed(self):
        store = make_store()
        victim = next(iter(store.layout.chain.blocks()))
        corrupt_block(store, victim)
        scrubber = Scrubber(store)
        scrubber.step()
        assert len(scrubber.report.issues) == len(scrubber.report.bad_blocks())

    def test_scrub_emits_events(self):
        store = XMLStore.open(
            StoreConfig(
                page_size=512,
                buffer_pool_capacity=8,
                checksums_enabled=True,
                events_enabled=True,
            )
        )
        root = store.load_document("<r/>")
        for index in range(4):
            store.insert_into_last(root, f"<e n='{index}'/>")
        store.checkpoint()
        victim = next(iter(store.layout.chain.blocks()))
        corrupt_block(store, victim)
        scrub_store(store)
        kinds = {e.kind for e in store.event_log.events()}
        assert "scrub_bad_block" in kinds
        assert "scrub_complete" in kinds


class TestBudgetedScrub:
    def test_step_respects_the_budget(self):
        store = make_store()
        scrubber = Scrubber(store)
        total = scrubber.report.blocks_total
        assert total > 1
        steps = 0
        while not scrubber.step(budget=1):
            steps += 1
            assert steps <= total
        visited = scrubber.report.blocks_checked + scrubber.report.blocks_skipped
        assert visited == total
        assert scrubber.report.complete

    def test_incremental_report_flags_incompleteness(self):
        store = make_store()
        scrubber = Scrubber(store)
        done = scrubber.step(budget=1)
        assert not done and not scrubber.report.complete
        assert "incomplete" in scrubber.report.render()

    def test_scrub_store_chunked_equals_one_pass(self):
        store = make_store()
        chunked = scrub_store(store, blocks_per_call=2)
        full = scrub_store(make_store())
        assert chunked.ok == full.ok
        assert chunked.blocks_total == full.blocks_total


class TestSkips:
    def test_dirty_blocks_are_skipped_not_verified(self):
        """A dirty page's device image is stale by design: verifying it
        would report rot that the next flush overwrites anyway."""
        store = make_store()
        root = 1
        store.insert_into_last(root, "<late/>")  # dirties without checkpoint
        assert store.pool.dirty_blocks()
        report = scrub_store(store)
        assert report.ok
        assert report.blocks_skipped > 0

    def test_rot_under_a_dirty_page_self_heals(self):
        store = make_store()
        victim = next(iter(store.layout.chain.blocks()))
        with store.pool.fetch(victim) as guard:
            guard.mark_dirty()
        corrupt_block(store, victim)
        assert scrub_store(store).ok  # skipped: the flush will rewrite it
        store.checkpoint()
        assert scrub_store(store).ok  # and now it verifies for real


class TestLegacyStores:
    def test_legacy_scrub_is_vacuous_and_says_so(self):
        store = make_store(checksums=False)
        victim = next(iter(store.layout.chain.blocks()))
        corrupt_block(store, victim)
        report = scrub_store(store)
        assert report.legacy
        assert report.ok  # raw pages carry no checksum: nothing to verify
        assert "vacuous" in report.render()

    def test_report_to_dict_is_json_ready(self):
        import json

        store = make_store()
        victim = next(iter(store.layout.chain.blocks()))
        corrupt_block(store, victim)
        payload = json.loads(json.dumps(scrub_store(store).to_dict()))
        assert payload["ok"] is False
        assert payload["legacy"] is False
        assert payload["issues"][0]["block_no"] == victim
