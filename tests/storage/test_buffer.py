"""Unit tests for the buffer pool."""

import pytest

from repro.errors import BufferPoolExhaustedError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.disk import InstrumentedDevice, MemoryBlockDevice


def make_pool(capacity=4, block_size=256):
    device = InstrumentedDevice(MemoryBlockDevice(block_size=block_size))
    return BufferPool(device, capacity=capacity), device


class TestFetchAndCache:
    def test_new_page_is_empty_and_cached(self):
        pool, _ = make_pool()
        with pool.new_page() as guard:
            assert len(guard.page) == 0
        assert pool.num_cached == 1

    def test_fetch_hits_cache_second_time(self):
        pool, device = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
        pool.flush_all()
        reads_before = device.stats.reads
        with pool.fetch(block):
            pass
        with pool.fetch(block):
            pass
        assert device.stats.reads == reads_before  # no device reads at all
        assert pool.stats.hits >= 2

    def test_miss_reads_from_device(self):
        pool, device = make_pool(capacity=1)
        with pool.new_page() as g1:
            b1 = g1.block_no
            g1.page.append(b"one")
            g1.mark_dirty()
        with pool.new_page() as g2:
            b2 = g2.block_no  # evicts b1
        reads_before = device.stats.reads
        with pool.fetch(b1) as guard:
            assert guard.page.records() == [b"one"]
        assert device.stats.reads == reads_before + 1

    def test_hit_rate(self):
        pool, _ = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
        with pool.fetch(block):
            pass
        assert 0 < pool.stats.hit_rate <= 1


class TestEvictionAndDirty:
    def test_dirty_page_written_back_on_eviction(self):
        pool, device = make_pool(capacity=1)
        with pool.new_page() as g1:
            b1 = g1.block_no
            g1.page.append(b"dirty-data")
            g1.mark_dirty()
        with pool.new_page():
            pass  # forces eviction of b1
        # read through a fresh pool to prove it reached the device
        pool2 = BufferPool(device, capacity=1)
        with pool2.fetch(b1) as guard:
            assert guard.page.records() == [b"dirty-data"]

    def test_clean_page_eviction_writes_nothing(self):
        pool, device = make_pool(capacity=1)
        with pool.new_page() as g1:
            pass
        pool.flush_all()
        writes_before = device.stats.writes
        with pool.new_page():
            pass  # evicts the clean page
        assert device.stats.writes == writes_before

    def test_pinned_pages_are_not_evicted(self):
        pool, _ = make_pool(capacity=2)
        g1 = pool.new_page()
        g2 = pool.new_page()
        with pytest.raises(BufferPoolExhaustedError):
            pool.new_page()
        g1.release()
        g2.release()

    def test_lru_order(self):
        pool, _ = make_pool(capacity=2)
        with pool.new_page() as g1:
            b1 = g1.block_no
        with pool.new_page() as g2:
            b2 = g2.block_no
        with pool.fetch(b1):  # touch b1 so b2 becomes LRU
            pass
        with pool.new_page():  # should evict b2
            pass
        assert b1 in set(pool.cached_blocks())
        assert b2 not in set(pool.cached_blocks())


class TestFlush:
    def test_flush_all_persists_and_cleans(self):
        pool, device = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
            guard.page.append(b"payload")
            guard.mark_dirty()
        pool.flush_all()
        fresh = BufferPool(device, capacity=2)
        with fresh.fetch(block) as guard:
            assert guard.page.records() == [b"payload"]

    def test_double_flush_writes_once(self):
        pool, device = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
            guard.mark_dirty()
        pool.flush(block)
        writes = device.stats.writes
        pool.flush(block)
        assert device.stats.writes == writes

    def test_drop_all_simulates_crash(self):
        pool, device = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
            guard.page.append(b"lost")
            guard.mark_dirty()
        pool.drop_all()
        with pool.fetch(block) as guard:
            assert guard.page.records() == []  # never reached the device

    def test_drop_all_refuses_pinned(self):
        pool, _ = make_pool()
        guard = pool.new_page()
        with pytest.raises(StorageError):
            pool.drop_all()
        guard.release()


class TestFreePage:
    def test_free_page_is_deferred_until_flush(self):
        pool, device = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
        pool.free_page(block)
        assert block not in set(pool.cached_blocks())
        assert device.stats.frees == 0  # deferred (checkpoint-consistent)
        pool.flush_all()
        assert device.stats.frees == 1

    def test_drop_all_abandons_pending_frees(self):
        pool, device = make_pool()
        with pool.new_page() as guard:
            block = guard.block_no
        pool.free_page(block)
        pool.drop_all()  # crash: the free never reaches the device
        pool.flush_all()
        assert device.stats.frees == 0
        # the block's content is still readable (checkpoint state intact)
        device.read_block(block)

    def test_free_pinned_page_refused(self):
        pool, _ = make_pool()
        guard = pool.new_page()
        with pytest.raises(StorageError):
            pool.free_page(guard.block_no)
        guard.release()

    def test_guard_release_after_free_is_harmless(self):
        pool, _ = make_pool()
        guard = pool.new_page()
        block = guard.block_no
        # bypass the pin check by releasing first in realistic flows; here we
        # verify double-release semantics instead
        guard.release()
        pool.free_page(block)
        guard.release()  # idempotent


class TestValidation:
    def test_zero_capacity_rejected(self):
        _, device = make_pool()
        with pytest.raises(StorageError):
            BufferPool(device, capacity=0)

    def test_stats_reset(self):
        pool, _ = make_pool()
        with pool.new_page() as g:
            block = g.block_no
        with pool.fetch(block):
            pass
        pool.stats.reset()
        assert pool.stats.hits == 0 and pool.stats.misses == 0


class TestChecksumQuarantine:
    """Verification on fetch, bounded re-reads, fail-fast quarantine."""

    def make_checked_pool(self, capacity=4, block_size=256, **pool_kwargs):
        from repro.storage.pages import PageCodec

        device = InstrumentedDevice(MemoryBlockDevice(block_size=block_size))
        codec = PageCodec(block_size, checksums=True)
        pool = BufferPool(device, capacity=capacity, codec=codec, **pool_kwargs)
        return pool, device

    def _persist_one(self, pool):
        with pool.new_page() as guard:
            guard.page.append(b"payload")
            guard.mark_dirty()
            block = guard.block_no
        pool.flush_all()
        pool.drop_all()  # force the next fetch to hit the device
        return block

    def _corrupt(self, device, block):
        image = bytearray(device.read_block(block))
        image[-1] ^= 0x40
        device.write_block(block, bytes(image))

    def test_clean_store_roundtrips_through_the_frame(self):
        pool, _ = self.make_checked_pool()
        block = self._persist_one(pool)
        with pool.fetch(block) as guard:
            assert guard.page.records() == [b"payload"]
        assert pool.stats.checksum_errors == 0

    def test_corrupt_block_raises_and_quarantines(self):
        from repro.errors import ChecksumError

        pool, device = self.make_checked_pool()
        block = self._persist_one(pool)
        self._corrupt(device, block)
        with pytest.raises(ChecksumError) as excinfo:
            pool.fetch(block)
        assert excinfo.value.block_no == block
        assert pool.is_quarantined(block)
        assert pool.quarantined_blocks() == [block]
        assert pool.stats.checksum_errors == 1

    def test_retries_are_bounded(self):
        from repro.errors import ChecksumError

        pool, device = self.make_checked_pool(read_retries=2)
        block = self._persist_one(pool)
        self._corrupt(device, block)
        reads_before = device.stats.reads
        with pytest.raises(ChecksumError):
            pool.fetch(block)
        assert device.stats.reads == reads_before + 3  # 1 try + 2 retries

    def test_quarantined_block_fails_fast_without_device_reads(self):
        from repro.errors import ChecksumError

        pool, device = self.make_checked_pool()
        block = self._persist_one(pool)
        self._corrupt(device, block)
        with pytest.raises(ChecksumError):
            pool.fetch(block)
        reads_after_first = device.stats.reads
        with pytest.raises(ChecksumError):
            pool.fetch(block)
        assert device.stats.reads == reads_after_first  # no retry storm
        assert pool.stats.checksum_errors == 1  # counted once, not per fetch

    def test_clear_quarantine_after_heal_readmits_the_block(self):
        from repro.errors import ChecksumError
        from repro.storage.pages import PageCodec, SlottedPage

        pool, device = self.make_checked_pool()
        block = self._persist_one(pool)
        good_image = device.read_block(block)
        self._corrupt(device, block)
        with pytest.raises(ChecksumError):
            pool.fetch(block)
        device.write_block(block, good_image)  # the repair path rewrites it
        with pytest.raises(ChecksumError):
            pool.fetch(block)  # still quarantined: healing is explicit
        pool.clear_quarantine(block)
        with pool.fetch(block) as guard:
            assert guard.page.records() == [b"payload"]

    def test_quarantine_emits_a_structured_event(self):
        from repro.errors import ChecksumError
        from repro.obs.events import EventLog

        pool, device = self.make_checked_pool()
        pool.event_log = EventLog()
        block = self._persist_one(pool)
        self._corrupt(device, block)
        with pytest.raises(ChecksumError):
            pool.fetch(block)
        kinds = [(e.source, e.kind) for e in pool.event_log.events()]
        assert ("fault", "checksum_error") in kinds
        [event] = [e for e in pool.event_log.events() if e.kind == "checksum_error"]
        assert event.severity == "error"
        assert event.fields["block"] == block

    def test_checksum_errors_surface_on_the_metrics_registry(self):
        from repro.errors import ChecksumError
        from repro.obs.metrics import MetricsRegistry

        pool, device = self.make_checked_pool()
        block = self._persist_one(pool)
        self._corrupt(device, block)
        with pytest.raises(ChecksumError):
            pool.fetch(block)
        registry = MetricsRegistry()
        pool.stats.register_metrics(registry)
        snapshot = registry.snapshot()
        [value] = [
            v for k, v in snapshot.items()
            if "repro_storage_checksum_errors_total" in k
        ]
        assert value == 1
