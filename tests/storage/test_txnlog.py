"""Transaction-commit frames (repro.storage.txnlog) and their replay
contract: encode/decode roundtrips, corruption rejection, and id-cursor
pinning that keeps recovery byte-compatible with interleaved commits.
"""

import pytest

from repro.concurrency.transactions import TransactionManager
from repro.core.store import XMLStore
from repro.errors import WALError
from repro.storage.recovery import encode_op_payload
from repro.storage.txnlog import CommitOp, TxnCommit, decode_commit, encode_commit
from repro.storage.wal import RecordType, WriteAheadLog


def sample_ops():
    return [
        CommitOp(
            record_type=RecordType.INSERT_INTO_LAST,
            payload=encode_op_payload(b"\x01", "<x>one</x>"),
            id_cursor_before=5,
            id_cursor_after=7,
        ),
        CommitOp(
            record_type=RecordType.REPLACE_CONTENT,
            payload=encode_op_payload(b"\x02", "FLAT"),
            id_cursor_before=9,
            id_cursor_after=10,
        ),
    ]


class TestRoundtrip:
    def test_encode_decode_preserves_everything(self):
        encoded = encode_commit(41, sample_ops())
        decoded = decode_commit(encoded)
        assert decoded == TxnCommit(txn_id=41, ops=tuple(sample_ops()))

    def test_empty_transaction_roundtrips(self):
        decoded = decode_commit(encode_commit(7, []))
        assert decoded.txn_id == 7
        assert decoded.ops == ()

    def test_default_cursors_mean_no_pinning(self):
        op = CommitOp(record_type=RecordType.DELETE_NODE, payload=b"")
        decoded = decode_commit(encode_commit(1, [op]))
        assert decoded.ops[0].id_cursor_before == -1
        assert decoded.ops[0].id_cursor_after == -1

    def test_empty_payload_op_roundtrips(self):
        op = CommitOp(record_type=RecordType.DELETE_NODE, payload=b"")
        decoded = decode_commit(encode_commit(1, [op]))
        assert decoded.ops[0].payload == b""


class TestCorruptionRejection:
    def test_truncated_header(self):
        with pytest.raises(WALError, match="truncated transaction commit"):
            decode_commit(b"\x00\x01\x02")

    def test_truncated_op_header(self):
        encoded = encode_commit(1, sample_ops())
        with pytest.raises(WALError, match="truncated operation header"):
            decode_commit(encoded[: len(encoded) - len(sample_ops()[1].payload) - 4])

    def test_truncated_op_payload(self):
        encoded = encode_commit(1, sample_ops())
        with pytest.raises(WALError, match="truncated operation payload"):
            decode_commit(encoded[:-1])

    def test_trailing_bytes(self):
        with pytest.raises(WALError, match="trailing bytes"):
            decode_commit(encode_commit(1, sample_ops()) + b"\x00")


class TestReplayIdPinning:
    BASE = "<lib><s1>a</s1><s2>b</s2></lib>"
    # ids: 1=lib, 2=s1, 3=text, 4=s2, 5=text

    def _recovered(self, store):
        return XMLStore.recover(WriteAheadLog.from_bytes(store.wal.to_bytes()))

    def test_out_of_order_commits_replay_identical_ids(self):
        # two transactions interleave their id allocations but commit in
        # the opposite order; replay must pin each op's recorded cursor
        # (built frame-by-frame: live interleaved writers share physical
        # ranges after splits, so the lock manager would serialize them)
        store = XMLStore.open()
        store.load_document(self.BASE)

        def run_op(node_id, xml_text):
            before = store.id_scheme.high_water_mark
            first_id = store.insert_into_last(node_id, xml_text, log=False)
            return first_id, CommitOp(
                RecordType.INSERT_INTO_LAST,
                encode_op_payload(store.id_scheme.encode(node_id), xml_text),
                before,
                store.id_scheme.high_water_mark,
            )

        first, op_1a = run_op(2, "<p>1a</p>")  # txn 1
        second, op_2a = run_op(4, "<q>2a</q>")  # txn 2, in between
        third, op_1b = run_op(2, "<p>1b</p>")  # txn 1 again
        # txn 2 commits first: the log order inverts the allocation order
        store.wal.append(RecordType.TXN_COMMIT, encode_commit(2, [op_2a]))
        store.wal.append(RecordType.TXN_COMMIT, encode_commit(1, [op_1a, op_1b]))
        recovered = self._recovered(store)
        assert recovered.read() == store.read()
        for node_id in (first, second, third):
            assert recovered.read(node_id) == store.read(node_id)

    def test_aborted_transaction_keeps_replay_byte_compatible(self):
        # the aborted txn consumed ids; its logged do+undo pair is a
        # content no-op but reproduces that consumption on replay
        store = XMLStore.open()
        store.load_document(self.BASE)
        manager = TransactionManager(store, redo_buffering=True)
        doomed = manager.begin()
        doomed.insert_into_last(2, "<dead>x</dead>")
        doomed.abort()
        survivor = manager.begin()
        kept = survivor.insert_into_last(4, "<kept>y</kept>")
        survivor.commit()
        recovered = self._recovered(store)
        assert recovered.read() == store.read()
        assert recovered.read(kept) == "<kept>y</kept>"

    def test_active_transactions_log_nothing_until_commit(self):
        store = XMLStore.open()
        store.load_document(self.BASE)
        manager = TransactionManager(store, redo_buffering=True)
        baseline = len(list(store.wal.records()))
        txn = manager.begin()
        txn.insert_into_last(2, "<p>pending</p>")
        assert len(list(store.wal.records())) == baseline
        txn.commit()
        records = list(store.wal.records())
        assert len(records) == baseline + 1
        assert records[-1].record_type == RecordType.TXN_COMMIT

    def test_replay_restores_the_allocator_high_water_mark(self):
        # a post-recovery insert must not re-allocate an id a replayed
        # transaction consumed
        store = XMLStore.open()
        store.load_document(self.BASE)
        manager = TransactionManager(store, redo_buffering=True)
        txn = manager.begin()
        txn.insert_into_last(2, "<p>taken</p>")
        txn.commit()
        recovered = self._recovered(store)
        fresh = recovered.insert_into_last(4, "<q>later</q>")
        assert fresh == store.id_scheme.high_water_mark
