#!/usr/bin/env python3
"""Benchmark trajectory sentry: append a run, flag sustained regressions.

``bench_compare`` gates the current run against the one committed
baseline; this tool keeps the longer view.  It folds the per-phase
simulated costs of a fresh ``BENCH_table5.json`` into one record,
appends it to the append-only trajectory
(``bench_results/BENCH_trajectory.jsonl``), and then asks
:mod:`repro.obs.trend` whether the newest record's cost in any
``approach/phase`` cell exceeds the rolling median of the preceding
window by more than the threshold.  Medians make the reference robust
to a single outlier run; simulated seconds make it comparable across
machines.

The detector stays silent until the trajectory holds ``--min-history``
prior records — a young trajectory cannot distinguish a regression
from a baseline, and the tool says so instead of green-lighting
vacuously.

Exit status: 0 when no phase is flagged (or history is still too
short), 1 on a flagged regression (each offending cell is listed), 2 on
malformed input.

Usage::

    python tools/bench_trend.py bench_results/BENCH_table5.json \
        [--trajectory PATH] [--label NAME] [--threshold X] \
        [--window N] [--min-history N] [--no-append] [--json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "A cell is flagged when its simulated cost exceeds the "
            "rolling median of the prior window by more than the "
            "threshold factor.  The trajectory file is append-only; "
            "use --no-append to re-check the existing history without "
            "recording a new run."
        ),
    )
    parser.add_argument("current", help="freshly generated BENCH_table5.json")
    parser.add_argument(
        "--trajectory",
        default=None,
        help=(
            "trajectory JSONL file (default: BENCH_trajectory.jsonl "
            "next to the current file)"
        ),
    )
    parser.add_argument(
        "--label",
        default=None,
        help="record label (default: run-<N>, N = records + 1)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "flag a phase when latest/median exceeds this factor "
            "(default: repro.obs.trend.DEFAULT_THRESHOLD)"
        ),
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help="rolling-median window of prior records (default: 8)",
    )
    parser.add_argument(
        "--min-history",
        type=int,
        default=None,
        help="prior records required before flagging (default: 3)",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="only check the latest existing record; do not append",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the stamped summary payload instead of prose",
    )
    arguments = parser.parse_args(argv)

    from repro.errors import ObservabilityError
    from repro.obs.trend import (
        DEFAULT_MIN_HISTORY,
        DEFAULT_THRESHOLD,
        DEFAULT_WINDOW,
        TRAJECTORY_FILE,
        append_record,
        detect_regressions,
        load_trajectory,
        next_label,
        trajectory_record,
        trend_summary,
    )

    threshold = (
        arguments.threshold
        if arguments.threshold is not None
        else DEFAULT_THRESHOLD
    )
    window = arguments.window if arguments.window is not None else DEFAULT_WINDOW
    min_history = (
        arguments.min_history
        if arguments.min_history is not None
        else DEFAULT_MIN_HISTORY
    )
    if threshold <= 1.0:
        parser.error("--threshold must be greater than 1")
    if window < 1 or min_history < 1:
        parser.error("--window and --min-history must be >= 1")
    trajectory_path = arguments.trajectory or os.path.join(
        os.path.dirname(arguments.current) or ".", TRAJECTORY_FILE
    )
    try:
        records = load_trajectory(trajectory_path)
        if not arguments.no_append:
            try:
                with open(arguments.current) as handle:
                    payload = json.load(handle)
            except (OSError, ValueError) as error:
                raise ObservabilityError(
                    f"cannot read {arguments.current}: {error}"
                ) from error
            if not isinstance(payload, list):
                raise ObservabilityError(
                    f"{arguments.current}: expected a list of approach rows"
                )
            label = arguments.label or next_label(records)
            record = trajectory_record(payload, label)
            append_record(trajectory_path, record)
            records.append(record)
        regressions = detect_regressions(
            records,
            threshold=threshold,
            min_history=min_history,
            window=window,
        )
    except ObservabilityError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if arguments.json:
        print(
            json.dumps(
                trend_summary(records, regressions), indent=2, sort_keys=True
            )
        )
    elif regressions:
        print(f"bench trajectory: {len(regressions)} phase(s) regressed")
        for regression in regressions:
            print(f"  {regression.render()}")
    elif len(records) - 1 < min_history:
        print(
            f"bench trajectory: {len(records)} record(s) in "
            f"{trajectory_path}; need {min_history} prior runs before the "
            "regression check is meaningful"
        )
    else:
        print(
            f"bench trajectory stable: latest of {len(records)} records "
            f"within {threshold:g}x of the rolling median"
        )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
