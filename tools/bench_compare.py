#!/usr/bin/env python3
"""Benchmark regression gate: compare two BENCH_table5.json files.

Absolute simulated kb/s moves with the scale preset and with legitimate
cost-model tuning, so the gate compares the *shape* instead: for every
phase, each approach's throughput as a ratio of the coarse-range
reference row.  Those ratios are what the paper's Table 5 is about
(e.g. "coarse+partial inserts are ~2x coarse", "coarse random reads are
the slowest"); if a change moves one by more than the tolerance, the
indexing trade-off itself changed and the gate fails.

Exit status: 0 when every ratio is within tolerance, 1 on drift (each
drifted cell is listed), 2 on malformed input.

Usage::

    python tools/bench_compare.py baseline.json current.json [--tolerance F]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Reference row the per-phase ratios are computed against.
REFERENCE_APPROACH = "Range Index (few, coarse, large entries)"

PHASES = ("insert", "seq_scan", "random_reads")

#: Default allowed relative drift of a throughput ratio.  0.25 rides out
#: dict-ordering and allocator noise between runs of the same code while
#: still catching the >2x shifts that a changed access path causes.
DEFAULT_TOLERANCE = 0.25


class CompareError(Exception):
    """Malformed or incomparable benchmark files."""


def load_rows(path: str) -> Dict[str, Dict[str, float]]:
    """Parse one BENCH_table5.json into {approach: {phase: kb_per_second}}."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise CompareError(f"cannot read {path}: {error}") from error
    if not isinstance(payload, list):
        raise CompareError(f"{path}: expected a list of approach rows")
    rows: Dict[str, Dict[str, float]] = {}
    for entry in payload:
        try:
            rows[entry["approach"]] = {
                phase: float(entry[phase]["kb_per_second"]) for phase in PHASES
            }
        except (KeyError, TypeError) as error:
            raise CompareError(f"{path}: malformed row ({error})") from error
    if REFERENCE_APPROACH not in rows:
        raise CompareError(f"{path}: missing reference row {REFERENCE_APPROACH!r}")
    return rows


def ratios(rows: Dict[str, Dict[str, float]]) -> Dict[Tuple[str, str], float]:
    """{(approach, phase): kb/s relative to the reference row's phase}."""
    reference = rows[REFERENCE_APPROACH]
    out: Dict[Tuple[str, str], float] = {}
    for approach, phases in rows.items():
        if approach == REFERENCE_APPROACH:
            continue
        for phase in PHASES:
            if reference[phase] <= 0:
                raise CompareError(
                    f"reference throughput for {phase} is not positive"
                )
            out[(approach, phase)] = phases[phase] / reference[phase]
    return out


def compare(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Drift messages for every ratio outside tolerance (empty = pass)."""
    base_ratios = ratios(baseline)
    current_ratios = ratios(current)
    drifts: List[str] = []
    for key in sorted(base_ratios):
        if key not in current_ratios:
            drifts.append(f"{key[0]} / {key[1]}: missing from current results")
            continue
        expected = base_ratios[key]
        observed = current_ratios[key]
        relative = abs(observed - expected) / expected
        if relative > tolerance:
            drifts.append(
                f"{key[0]} / {key[1]}: ratio-to-coarse {observed:.3f} "
                f"vs baseline {expected:.3f} ({relative:+.0%} drift, "
                f"tolerance {tolerance:.0%})"
            )
    for key in sorted(current_ratios):
        if key not in base_ratios:
            drifts.append(f"{key[0]} / {key[1]}: not present in baseline")
    return drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "The tolerance is the allowed relative drift of each "
            "approach's per-phase throughput ratio against the coarse-"
            f"range reference row (default {DEFAULT_TOLERANCE:.0%}).  "
            "Ratios, not absolute kb/s, are compared, so rescaling the "
            "workload or retuning the cost model uniformly does not trip "
            "the gate — changing which access path wins does."
        ),
    )
    parser.add_argument("baseline", help="committed BENCH_table5.json baseline")
    parser.add_argument("current", help="freshly generated BENCH_table5.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "allowed relative drift of each throughput ratio, as a "
            "fraction (default %(default)s: a ratio may move by 25%% "
            "before the gate fails)"
        ),
    )
    arguments = parser.parse_args(argv)
    if arguments.tolerance <= 0:
        parser.error("--tolerance must be positive")
    try:
        baseline = load_rows(arguments.baseline)
        current = load_rows(arguments.current)
        drifts = compare(baseline, current, arguments.tolerance)
    except CompareError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if drifts:
        print(f"benchmark regression: {len(drifts)} ratio(s) drifted")
        for message in drifts:
            print(f"  {message}")
        return 1
    print(
        f"benchmark shape stable: {len(ratios(baseline))} ratios within "
        f"{arguments.tolerance:.0%} of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
