#!/usr/bin/env python3
"""Benchmark regression gate: compare two BENCH_table5.json files.

Absolute simulated kb/s moves with the scale preset and with legitimate
cost-model tuning, so the gate compares the *shape* instead: for every
phase, each approach's throughput as a ratio of the coarse-range
reference row.  Those ratios are what the paper's Table 5 is about
(e.g. "coarse+partial inserts are ~2x coarse", "coarse random reads are
the slowest"); if a change moves one by more than the tolerance, the
indexing trade-off itself changed and the gate fails.

``--calibration`` adds a second, independent gate on the *current* file
alone: the cost-model calibration check (:mod:`repro.obs.calibration`),
which fails when any Table-5 cell's wall/simulated ratio deviates from
the run's median by more than ``--calibration-limit`` in either
direction — i.e. when new code does real work the simulated cost model
never charges (or vice versa).

Exit status: 0 when every gate passes, 1 on drift or calibration
violation (each offending cell is listed), 2 on malformed input.

Usage::

    python tools/bench_compare.py baseline.json current.json \
        [--tolerance F] [--calibration] [--calibration-limit X]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

#: Reference row the per-phase ratios are computed against.
REFERENCE_APPROACH = "Range Index (few, coarse, large entries)"

PHASES = ("insert", "seq_scan", "random_reads")

#: Default allowed relative drift of a throughput ratio.  0.25 rides out
#: dict-ordering and allocator noise between runs of the same code while
#: still catching the >2x shifts that a changed access path causes.
DEFAULT_TOLERANCE = 0.25


class CompareError(Exception):
    """Malformed or incomparable benchmark files."""


def _check_row_schema(entry: Dict, path: str) -> None:
    """Assert one approach row's ``schema_version`` stamp.

    Benchmark artifacts (and the history snapshots layered on top of
    them) evolve; the stamp is what lets them do so safely.  A row from
    a newer writer — or one with no stamp at all — is refused instead of
    being silently misread (see :mod:`repro.obs.schema`).
    """
    from repro.errors import ObservabilityError
    from repro.obs.schema import check_schema_version

    try:
        check_schema_version(
            entry, f"{path} row {entry.get('approach', '?')!r}"
        )
    except ObservabilityError as error:
        raise CompareError(str(error)) from error


def load_rows(path: str) -> Dict[str, Dict[str, float]]:
    """Parse one BENCH_table5.json into {approach: {phase: kb_per_second}}."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise CompareError(f"cannot read {path}: {error}") from error
    if not isinstance(payload, list):
        raise CompareError(f"{path}: expected a list of approach rows")
    rows: Dict[str, Dict[str, float]] = {}
    for entry in payload:
        _check_row_schema(entry, path)
        try:
            rows[entry["approach"]] = {
                phase: float(entry[phase]["kb_per_second"]) for phase in PHASES
            }
        except (KeyError, TypeError) as error:
            raise CompareError(f"{path}: malformed row ({error})") from error
    if REFERENCE_APPROACH not in rows:
        raise CompareError(f"{path}: missing reference row {REFERENCE_APPROACH!r}")
    return rows


def ratios(rows: Dict[str, Dict[str, float]]) -> Dict[Tuple[str, str], float]:
    """{(approach, phase): kb/s relative to the reference row's phase}."""
    reference = rows[REFERENCE_APPROACH]
    out: Dict[Tuple[str, str], float] = {}
    for approach, phases in rows.items():
        if approach == REFERENCE_APPROACH:
            continue
        for phase in PHASES:
            if reference[phase] <= 0:
                raise CompareError(
                    f"reference throughput for {phase} is not positive"
                )
            out[(approach, phase)] = phases[phase] / reference[phase]
    return out


def compare(
    baseline: Dict[str, Dict[str, float]],
    current: Dict[str, Dict[str, float]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Drift messages for every ratio outside tolerance (empty = pass)."""
    base_ratios = ratios(baseline)
    current_ratios = ratios(current)
    drifts: List[str] = []
    for key in sorted(base_ratios):
        if key not in current_ratios:
            drifts.append(f"{key[0]} / {key[1]}: missing from current results")
            continue
        expected = base_ratios[key]
        observed = current_ratios[key]
        relative = abs(observed - expected) / expected
        if relative > tolerance:
            drifts.append(
                f"{key[0]} / {key[1]}: ratio-to-coarse {observed:.3f} "
                f"vs baseline {expected:.3f} ({relative:+.0%} drift, "
                f"tolerance {tolerance:.0%})"
            )
    for key in sorted(current_ratios):
        if key not in base_ratios:
            drifts.append(f"{key[0]} / {key[1]}: not present in baseline")
    return drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog=(
            "The tolerance is the allowed relative drift of each "
            "approach's per-phase throughput ratio against the coarse-"
            f"range reference row (default {DEFAULT_TOLERANCE:.0%}).  "
            "Ratios, not absolute kb/s, are compared, so rescaling the "
            "workload or retuning the cost model uniformly does not trip "
            "the gate — changing which access path wins does."
        ),
    )
    parser.add_argument("baseline", help="committed BENCH_table5.json baseline")
    parser.add_argument("current", help="freshly generated BENCH_table5.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "allowed relative drift of each throughput ratio, as a "
            "fraction (default %(default)s: a ratio may move by 25%% "
            "before the gate fails)"
        ),
    )
    parser.add_argument(
        "--calibration",
        action="store_true",
        help=(
            "also run the cost-model calibration gate on the current "
            "file (per-cell wall/simulated ratio vs. the run median)"
        ),
    )
    parser.add_argument(
        "--calibration-limit",
        type=float,
        default=None,
        metavar="X",
        help=(
            "calibration spread limit: a cell fails when its wall/sim "
            "ratio is more than X times (or less than 1/X of) the run "
            "median (default: repro.obs.calibration.DEFAULT_SPREAD_LIMIT)"
        ),
    )
    arguments = parser.parse_args(argv)
    if arguments.tolerance <= 0:
        parser.error("--tolerance must be positive")
    try:
        baseline = load_rows(arguments.baseline)
        current = load_rows(arguments.current)
        drifts = compare(baseline, current, arguments.tolerance)
    except CompareError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    failed = False
    if drifts:
        print(f"benchmark regression: {len(drifts)} ratio(s) drifted")
        for message in drifts:
            print(f"  {message}")
        failed = True
    else:
        print(
            f"benchmark shape stable: {len(ratios(baseline))} ratios within "
            f"{arguments.tolerance:.0%} of baseline"
        )
    if arguments.calibration:
        from repro.errors import ObservabilityError
        from repro.obs.calibration import (
            DEFAULT_SPREAD_LIMIT,
            calibration_cells,
            check_calibration,
        )

        limit = (
            arguments.calibration_limit
            if arguments.calibration_limit is not None
            else DEFAULT_SPREAD_LIMIT
        )
        try:
            with open(arguments.current) as handle:
                payload = json.load(handle)
            cells = calibration_cells(payload)
            violations = check_calibration(cells, limit)
        except (OSError, ValueError, ObservabilityError) as error:
            print(f"error: calibration: {error}", file=sys.stderr)
            return 2
        if violations:
            print(
                f"cost-model calibration: {len(violations)} cell(s) "
                "out of range"
            )
            for message in violations:
                print(f"  {message}")
            failed = True
        else:
            print(
                f"cost model calibrated: {len(cells)} cells within "
                f"{limit:g}x of the median wall/sim ratio"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
