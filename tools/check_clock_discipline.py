#!/usr/bin/env python
"""Lint: no module under src/repro/ may read the wall clock directly.

Every wall-clock access must go through :mod:`repro.obs.clock`, so the
simulated disk clock and the telemetry clock cannot be accidentally
mixed.  Run from the repository root::

    PYTHONPATH=src python tools/check_clock_discipline.py

Exits non-zero (listing the violations) if any module imports ``time``
or calls ``time.time`` outside the allowlisted modules
(``repro.obs.clock.ALLOWED_CLOCK_MODULES``): the clock module itself and
the wall-clock stack sampler (``obs/sampler.py``), whose entire job is
wall-clock work.  Adding a module to the allowlist is a reviewed code
change, not something this lint will ever do silently.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.obs.clock import check_clock_discipline  # noqa: E402


def main() -> int:
    src_root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    violations = check_clock_discipline(os.path.abspath(src_root))
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} clock-discipline violation(s)", file=sys.stderr)
        return 1
    print("clock discipline ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
